//! Quickstart: open a PrismDB instance, write and read a few objects, and
//! inspect where reads were served from and how much each tier costs.
//!
//! Run with `cargo run --example quickstart`.

use prismdb::db::{Options, PrismDb};
use prismdb::types::{Key, KvStore, PrismError, Value};

fn main() -> Result<(), PrismError> {
    // A small database: 20k expected keys, 4 partitions, the paper's 1:5
    // NVM:QLC capacity ratio and default MSC compaction settings.
    let options = Options::builder(20_000).partitions(4).build()?;
    let mut db = PrismDb::open(options)?;

    // Load 20k one-kilobyte objects. Everything lands on NVM first; once NVM
    // crosses its high watermark, cold ranges are compacted down to flash.
    for id in 0..20_000u64 {
        db.put(Key::from_id(id), Value::filled(1024, (id % 251) as u8))?;
    }

    // Read a hot key a few times: the first read may come from NVM or flash,
    // later reads are served from the DRAM cache.
    for _ in 0..3 {
        let hit = db.get(&Key::from_id(42))?;
        println!(
            "key 42: {} bytes from {:?} in {}",
            hit.value.as_ref().map(Value::len).unwrap_or(0),
            hit.source,
            hit.latency
        );
    }

    // Scans merge the NVM and flash views in key order.
    let scan = db.scan(&Key::from_id(100), 5)?;
    println!(
        "scan from key 100: {:?}",
        scan.entries.iter().map(|(k, _)| k.id()).collect::<Vec<_>>()
    );

    let stats = db.stats();
    println!(
        "objects: {} on NVM, {} on flash | flash write amplification {:.2}",
        db.nvm_object_count(),
        db.flash_object_count(),
        stats.flash_write_amplification()
    );
    println!(
        "reads: {} dram, {} nvm, {} flash | compactions: {} jobs, {} demoted, {} promoted",
        stats.reads_from_dram,
        stats.reads_from_nvm,
        stats.reads_from_flash,
        stats.compaction.jobs,
        stats.compaction.demoted_objects,
        stats.compaction.promoted_objects
    );
    println!(
        "blended storage cost: ${:.2}/GB | simulated time: {}",
        db.cost_per_gb(),
        db.elapsed()
    );

    // Crash recovery: drop all DRAM state and rebuild the index from the
    // NVM slabs and the flash manifest.
    let recovery = db.crash_and_recover();
    let after = db.get(&Key::from_id(42))?;
    println!(
        "recovered in {recovery}; key 42 still readable: {}",
        after.value.is_some()
    );
    Ok(())
}
