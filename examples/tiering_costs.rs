//! Explore the cost-performance trade-off of tiered storage: sweep the NVM
//! fraction of the deployment and report throughput, blended $/GB and the
//! projected QLC lifetime — a miniature of the paper's Figure 9 and
//! Figure 12.
//!
//! Run with `cargo run --release --example tiering_costs`.

use prismdb::bench::{engines, RunConfig, Runner};
use prismdb::storage::{lifetime_years, DeviceProfile};
use prismdb::workloads::Workload;

fn main() {
    let keys = 10_000;
    let runner = Runner::new(RunConfig::scaled(keys));
    let workload = Workload::ycsb_a(keys);

    println!(
        "nvm %   cost ($/GB)  throughput (Kops/s)  fast-read ratio  qlc lifetime (yrs, 600GB)"
    );
    println!(
        "------  -----------  -------------------  ---------------  -------------------------"
    );
    for fraction in [0.05, 0.10, 0.20, 0.33, 0.50] {
        let mut db = engines::prismdb_with_nvm_fraction(keys, fraction);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &workload, cost);

        // Project the endurance of a 600 GB QLC drive under this workload's
        // measured flash-write behaviour, scaled to a 100 Kops/s service.
        let measured_flash_per_op = result.stats.flash_io.bytes_written as f64
            / (runner.config().measure_ops as f64).max(1.0);
        let flash_bytes_per_sec = measured_flash_per_op * 100_000.0;
        let lifetime = lifetime_years(&DeviceProfile::qlc_flash(600 << 30), flash_bytes_per_sec);

        println!(
            "{:>5.0}%  {:>11.2}  {:>19.1}  {:>15.2}  {:>25.1}",
            fraction * 100.0,
            result.cost_per_gb,
            result.throughput_kops,
            result.fast_read_ratio(),
            lifetime
        );
    }
}
