//! Compare PrismDB's compaction range-selection policies — random,
//! precise-MSC and approx-MSC — on a write-heavy Zipfian workload, a
//! miniature of the paper's Figure 6.
//!
//! Run with `cargo run --release --example compaction_policies`.

use prismdb::bench::{engines, RunConfig, Runner};
use prismdb::compaction::CompactionPolicy;
use prismdb::workloads::Workload;

fn main() {
    let keys = 10_000;
    let runner = Runner::new(RunConfig::scaled(keys));
    let workload = Workload::ycsb_a(keys).with_zipf(0.99);

    println!(
        "policy       tput (Kops/s)  flash WA  demoted  promoted  avg compaction (ms)  stalls (ms)"
    );
    println!(
        "-----------  -------------  --------  -------  --------  -------------------  -----------"
    );
    for (label, policy) in [
        ("random", CompactionPolicy::Random),
        ("precise-msc", CompactionPolicy::PreciseMsc),
        ("approx-msc", CompactionPolicy::ApproxMsc),
    ] {
        let mut db = engines::prismdb_with_policy(keys, policy);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &workload, cost);
        let compaction = result.stats.compaction;
        let avg_ms = if compaction.jobs == 0 {
            0.0
        } else {
            compaction.total_time.as_nanos() as f64 / compaction.jobs as f64 / 1e6
        };
        println!(
            "{:<11}  {:>13.1}  {:>8.2}  {:>7}  {:>8}  {:>19.2}  {:>11.2}",
            label,
            result.throughput_kops,
            result.stats.flash_write_amplification(),
            compaction.demoted_objects,
            compaction.promoted_objects,
            avg_ms,
            compaction.stall_time.as_nanos() as f64 / 1e6
        );
    }
}
