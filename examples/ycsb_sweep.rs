//! Run the YCSB point-query workloads against PrismDB and the multi-tier
//! LSM baseline, printing a miniature version of the paper's Figure 10a.
//!
//! Run with `cargo run --release --example ycsb_sweep`.

use prismdb::bench::{engines, RunConfig, Runner};
use prismdb::workloads::Workload;

fn main() {
    let keys = 10_000;
    let runner = Runner::new(RunConfig::scaled(keys));

    println!("workload  rocksdb-het (Kops/s)  prismdb (Kops/s)  speedup");
    println!("--------  --------------------  ----------------  -------");
    for letter in ['a', 'b', 'c', 'd', 'f'] {
        let workload = Workload::ycsb(letter, keys);

        let mut rocks = engines::rocksdb_het(keys);
        let rocks_cost = rocks.cost_per_gb();
        let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);

        let mut prism = engines::prismdb(keys);
        let prism_cost = prism.cost_per_gb();
        let prism_result = runner.run(&mut prism, &workload, prism_cost);

        println!(
            "{:<8}  {:>20.1}  {:>16.1}  {:>6.2}x",
            workload.name,
            rocks_result.throughput_kops,
            prism_result.throughput_kops,
            prism_result.throughput_kops / rocks_result.throughput_kops.max(1e-9)
        );
    }
}
