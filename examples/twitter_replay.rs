//! Replay synthetic versions of the three Twitter production cache traces
//! the paper evaluates (write-heavy cluster 39, mixed cluster 19 with tiny
//! objects, read-heavy cluster 51) against PrismDB and the multi-tier LSM —
//! a miniature of the paper's Table 5.
//!
//! Run with `cargo run --release --example twitter_replay`.

use prismdb::bench::{engines, RunConfig, Runner};
use prismdb::types::OpKind;
use prismdb::workloads::Workload;

fn main() {
    let keys = 10_000;
    let runner = Runner::new(RunConfig::scaled(keys));
    let traces = vec![
        Workload::twitter_cluster39(keys),
        Workload::twitter_cluster19(keys),
        Workload::twitter_cluster51(keys),
    ];

    println!("trace               engine       tput (Kops/s)  avg put (us)  p99 (us)  fast reads");
    println!("------------------  -----------  -------------  ------------  --------  ----------");
    for workload in traces {
        let mut rocks = engines::rocksdb_het(keys);
        let rocks_cost = rocks.cost_per_gb();
        let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);
        let mut prism = engines::prismdb(keys);
        let prism_cost = prism.cost_per_gb();
        let prism_result = runner.run(&mut prism, &workload, prism_cost);

        for result in [rocks_result, prism_result] {
            println!(
                "{:<18}  {:<11}  {:>13.1}  {:>12.1}  {:>8.1}  {:>9.2}",
                workload.name,
                result.engine,
                result.throughput_kops,
                result.kind(OpKind::Update).mean_us,
                result.p99_us,
                result.fast_read_ratio()
            );
        }
    }
}
