//! Regression tests for the scan/writer concurrency contract.
//!
//! The engine used to execute scans while holding *every* touched
//! partition's read lock for the scan's whole duration, so one long scan
//! serialised the entire write path. Scans now read through a pinned
//! snapshot sequence and take one short per-partition read lock at a
//! time; these tests pin that contract:
//!
//! * a write storm racing a continuous stream of full-keyspace scans
//!   must finish in wall-clock time comparable to the same storm with no
//!   scans at all (lock-hold scans made it a multiple), and
//! * the *simulated* write-stall accounting must not grow when scans run
//!   concurrently — scans are read-only and add no write stalls.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prismdb::db::{Options, Partitioning, PrismDb};
use prismdb::types::{ConcurrentKvStore, Key, Value};

const KEY_SPACE: u64 = 2_000;
const WRITERS: usize = 3;
const WRITES_PER_WRITER: u64 = 2_000;

fn storm_db() -> PrismDb {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = 4;
    options.partitioning = Partitioning::Range;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // Small NVM: the storm continuously trips demotion compactions, so
    // the measured interval includes real compaction work, not just
    // slab inserts.
    options.nvm_capacity_bytes = 128 * 1024;
    options.nvm_profile.capacity_bytes = 128 * 1024;
    PrismDb::open(options).expect("valid options")
}

/// Run the standard write storm; returns the wall-clock duration of the
/// writers (only — scanner threads are excluded from the measurement).
fn run_storm(db: &Arc<PrismDb>, scanners: usize) -> Duration {
    let stop = AtomicBool::new(false);
    let scans_done = AtomicU64::new(0);
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        for _ in 0..scanners {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let scan = db
                        .scan(&Key::min(), KEY_SPACE as usize)
                        .expect("scan must not fail mid-storm");
                    assert!(scan.entries.len() <= KEY_SPACE as usize);
                    scans_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let start = Instant::now();
        let mut writer_handles = Vec::new();
        for writer in 0..WRITERS {
            let db = Arc::clone(db);
            writer_handles.push(scope.spawn(move || {
                for i in 0..WRITES_PER_WRITER {
                    // Interleaved strides so every writer touches every
                    // partition throughout.
                    let id = (writer as u64 + i * WRITERS as u64) % KEY_SPACE;
                    db.put(Key::from_id(id), Value::filled(500, writer as u8))
                        .expect("storm put");
                }
            }));
        }
        for handle in writer_handles {
            handle.join().expect("writer panicked");
        }
        elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
    });
    if scanners > 0 {
        assert!(
            scans_done.load(Ordering::Relaxed) > 0,
            "the scanners never completed a scan — the storm was not contested"
        );
    }
    elapsed
}

/// A long scan concurrent with a write storm must not serialise the
/// writers. Wall-clock bound: generous (the scanner threads do steal CPU)
/// but far below the multiple that duration-long lock holds used to cost.
#[test]
fn continuous_scans_do_not_serialize_a_write_storm() {
    let baseline_db = Arc::new(storm_db());
    let contested_db = Arc::new(storm_db());

    // Warm both engines identically so neither measures cold-start work.
    for db in [&baseline_db, &contested_db] {
        for id in 0..KEY_SPACE {
            db.put(Key::from_id(id), Value::filled(500, 1)).unwrap();
        }
    }

    let baseline = run_storm(&baseline_db, 0);
    let contested = run_storm(&contested_db, 2);

    let limit = baseline * 8 + Duration::from_millis(1_000);
    assert!(
        contested <= limit,
        "write storm under continuous scans took {contested:?} vs {baseline:?} \
         uncontested (limit {limit:?}) — scans are serialising writers again"
    );

    // Both engines saw the identical write sequence per writer; their
    // final visible state must agree key for key.
    for id in 0..KEY_SPACE {
        let a = baseline_db.get(&Key::from_id(id)).unwrap().value;
        let b = contested_db.get(&Key::from_id(id)).unwrap().value;
        assert_eq!(
            a.map(|v| v.len()),
            b.map(|v| v.len()),
            "storm key {id} diverged between the contested and baseline engines"
        );
    }
}

/// Scans are read-only: the engine's simulated write-stall accounting
/// must not increase because scans ran concurrently with the storm.
#[test]
fn concurrent_scans_add_no_simulated_write_stalls() {
    let baseline_db = Arc::new(storm_db());
    let contested_db = Arc::new(storm_db());

    run_storm(&baseline_db, 0);
    run_storm(&contested_db, 2);

    let baseline = ConcurrentKvStore::stats(&*baseline_db)
        .compaction
        .stall_time;
    let contested = ConcurrentKvStore::stats(&*contested_db)
        .compaction
        .stall_time;
    // Identical write sequences drive identical inline compactions; the
    // only tolerated wiggle is bookkeeping noise, never a stall bill for
    // the scans.
    assert!(
        contested <= baseline + baseline / 4,
        "concurrent scans inflated simulated write stalls: \
         {contested:?} with scans vs {baseline:?} without"
    );
    // The contested engine must also have pinned (and released) snapshot
    // state for its scans: nothing may leak.
    assert_eq!(contested_db.active_snapshots(), 0);
    assert_eq!(baseline_db.active_snapshots(), 0);
}
