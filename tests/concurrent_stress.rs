//! Concurrent stress testing of `Arc<PrismDb>`.
//!
//! N OS threads hammer one shared engine with overlapping key ranges and a
//! mixed workload (put/get/delete/scan/RMW) while other threads run
//! cross-partition scans. Afterwards the tests check linearizability-lite
//! invariants — the surviving value of every key must be the final write
//! of *some* thread that touched it — plus engine invariants (object
//! counts vs a full scan, NVM utilisation, scan ordering), and that a
//! crash + recovery after the concurrent workload reproduces exactly the
//! pre-crash visible state. The tests finishing at all is itself the
//! no-deadlock check for concurrent cross-partition scans.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prismdb::db::{Options, Partitioning, PrismDb};
use prismdb::types::{ConcurrentKvStore, Key, Value, WriteBatch};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 4_000;
const KEY_SPACE: u64 = 1_200;

/// A value is tagged with the writing thread and a per-thread sequence
/// number so the final state can be matched against per-thread write logs:
/// length encodes the thread, fill byte the sequence.
fn tagged_value(thread: usize, seq: usize) -> Value {
    Value::filled(64 + thread, (seq % 251) as u8)
}

/// What one thread last did to one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastWrite {
    Put { len: usize, fill: u8 },
    Delete,
}

fn stress_db() -> Arc<PrismDb> {
    stress_db_with_workers(0)
}

fn stress_db_with_workers(workers: usize) -> Arc<PrismDb> {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = 4;
    // Range partitioning so scans genuinely cross partition lock
    // boundaries while writers hold individual partition locks.
    options.partitioning = Partitioning::Range;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // NVM far smaller than the dataset: compactions run under concurrency.
    options.nvm_capacity_bytes = 192 * 1024;
    options.nvm_profile.capacity_bytes = 192 * 1024;
    options.compaction_workers = workers;
    Arc::new(PrismDb::open(options).expect("valid options"))
}

/// Run the mixed workload from `THREADS` threads over overlapping keys;
/// returns each thread's log of final writes per key.
fn run_stress(db: &Arc<PrismDb>) -> Vec<HashMap<u64, LastWrite>> {
    let mut logs: Vec<HashMap<u64, LastWrite>> = Vec::with_capacity(THREADS);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(THREADS);
        for t in 0..THREADS {
            let db = Arc::clone(db);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0DE + t as u64);
                let mut last: HashMap<u64, LastWrite> = HashMap::new();
                for seq in 0..OPS_PER_THREAD {
                    let id = rng.gen_range(0u64..KEY_SPACE);
                    let key = Key::from_id(id);
                    match rng.gen_range(0u32..100) {
                        // Writes dominate so every key sees many writers.
                        0..=44 => {
                            let value = tagged_value(t, seq);
                            let (len, fill) = (value.len(), value.as_bytes()[0]);
                            db.put(key, value).expect("put");
                            last.insert(id, LastWrite::Put { len, fill });
                        }
                        45..=59 => {
                            db.delete(&key).expect("delete");
                            last.insert(id, LastWrite::Delete);
                        }
                        60..=74 => {
                            // Reads must always see a well-formed tagged
                            // value (or nothing) — never a torn one.
                            if let Some(value) = db.get(&key).expect("get").value {
                                let thread = value.len().checked_sub(64).expect("tag");
                                assert!(thread < THREADS, "untagged value length");
                                assert!(
                                    value.as_bytes().iter().all(|b| *b == value.as_bytes()[0]),
                                    "torn value observed"
                                );
                            }
                        }
                        75..=89 => {
                            // Cross-partition scans concurrent with writes:
                            // results must stay strictly ordered.
                            let start = rng.gen_range(0u64..KEY_SPACE);
                            let scanned = db.scan(&Key::from_id(start), 64).expect("scan").entries;
                            assert!(
                                scanned.windows(2).all(|w| w[0].0 < w[1].0),
                                "scan returned unordered or duplicate keys"
                            );
                            assert!(scanned.iter().all(|(k, _)| k.id() >= start));
                        }
                        _ => {
                            // Read-modify-write.
                            let _ = db.get(&key).expect("rmw read");
                            let value = tagged_value(t, seq);
                            let (len, fill) = (value.len(), value.as_bytes()[0]);
                            db.put(key, value).expect("rmw write");
                            last.insert(id, LastWrite::Put { len, fill });
                        }
                    }
                }
                last
            }));
        }
        for handle in handles {
            logs.push(handle.join().expect("stress thread panicked"));
        }
    });
    logs
}

/// The surviving state of `key` must equal the final write of one of the
/// threads that wrote it (or, if no thread wrote it, be absent).
fn assert_explained_by_logs(
    observed: &Option<(usize, u8)>,
    id: u64,
    logs: &[HashMap<u64, LastWrite>],
    context: &str,
) {
    let candidates: Vec<LastWrite> = logs
        .iter()
        .filter_map(|log| log.get(&id).copied())
        .collect();
    match observed {
        None => {
            let explained = candidates.is_empty() || candidates.contains(&LastWrite::Delete);
            assert!(
                explained,
                "{context}: key {id} is absent but no thread's last op was a delete \
                 (candidates {candidates:?})"
            );
        }
        Some((len, fill)) => {
            let explained = candidates.iter().any(|c| {
                *c == LastWrite::Put {
                    len: *len,
                    fill: *fill,
                }
            });
            assert!(
                explained,
                "{context}: key {id} holds (len {len}, fill {fill}) which no thread's \
                 final write produced (candidates {candidates:?})"
            );
        }
    }
}

fn visible_state(db: &Arc<PrismDb>) -> Vec<Option<(usize, u8)>> {
    (0..KEY_SPACE)
        .map(|id| {
            db.get(&Key::from_id(id))
                .expect("get")
                .value
                .map(|v| (v.len(), v.as_bytes()[0]))
        })
        .collect()
}

#[test]
fn overlapping_writers_leave_explainable_state_and_sane_invariants() {
    let db = stress_db();
    let logs = run_stress(&db);

    // Every key's survivor must be some thread's final write.
    let state = visible_state(&db);
    let mut live = 0usize;
    for (id, observed) in state.iter().enumerate() {
        if observed.is_some() {
            live += 1;
        }
        assert_explained_by_logs(observed, id as u64, &logs, "after stress");
    }
    assert!(live > 0, "the write-heavy mix must leave live keys");

    // A full scan agrees with point reads: same live key count, strictly
    // ordered, and every scanned value is also log-explainable.
    let scanned = db
        .scan(&Key::min(), KEY_SPACE as usize + 10)
        .expect("scan")
        .entries;
    assert_eq!(
        scanned.len(),
        live,
        "scan and point reads disagree on live keys"
    );
    assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
    for (key, value) in &scanned {
        assert_explained_by_logs(
            &Some((value.len(), value.as_bytes()[0])),
            key.id(),
            &logs,
            "scan after stress",
        );
    }

    // Engine invariants: the object count across tiers covers at least
    // every live key (flash may additionally hold not-yet-compacted stale
    // versions), and NVM never overfills.
    let objects = db.nvm_object_count() + db.flash_object_count();
    assert!(
        objects >= live,
        "{objects} objects across tiers cannot cover {live} live keys"
    );
    assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    assert!(db.nvm_utilization() >= 0.0);
}

#[test]
fn crash_recovery_after_concurrent_workload_restores_visible_state() {
    let db = stress_db();
    let logs = run_stress(&db);

    let before = visible_state(&db);
    let recovery_time = db.crash_and_recover();
    assert!(recovery_time > prismdb::types::Nanos::ZERO);
    let after = visible_state(&db);

    for (id, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        assert_eq!(
            b, a,
            "key {id} changed across crash_and_recover (before {b:?}, after {a:?})"
        );
        assert_explained_by_logs(a, id as u64, &logs, "after recovery");
    }

    // Recovery rebuilds per-key NVM state exactly: one slot per live NVM
    // object, so a second crash/recovery is idempotent.
    let first = db.nvm_object_count();
    db.crash_and_recover();
    assert_eq!(first, db.nvm_object_count());
    let again = visible_state(&db);
    assert_eq!(after, again, "second recovery changed visible state");
}

#[test]
fn background_compaction_workers_survive_concurrent_stress() {
    // Same mixed workload, but demotions/promotions now run on two
    // background worker threads racing the four client threads: last-
    // writer-wins, torn-value, scan-ordering and utilisation invariants
    // must all hold, and recovery (which aborts any in-flight job via the
    // epoch check) must reproduce the visible state exactly.
    let db = stress_db_with_workers(2);
    let logs = run_stress(&db);

    let state = visible_state(&db);
    let mut live = 0usize;
    for (id, observed) in state.iter().enumerate() {
        if observed.is_some() {
            live += 1;
        }
        assert_explained_by_logs(observed, id as u64, &logs, "after background stress");
    }
    assert!(live > 0, "the write-heavy mix must leave live keys");
    let scanned = db
        .scan(&Key::min(), KEY_SPACE as usize + 10)
        .expect("scan")
        .entries;
    assert_eq!(scanned.len(), live, "scan and point reads disagree");
    assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(db.nvm_utilization() <= 1.0 + 1e-9);

    // The workers must actually have taken compaction work off the
    // foreground path during the stress run.
    use prismdb::types::ConcurrentKvStore as _;
    let stats = db.stats();
    assert!(stats.compaction.jobs > 0, "stress must compact");
    assert!(
        stats.compaction.overlap_time > prismdb::types::Nanos::ZERO,
        "background workers must have overlapped compaction work"
    );

    // Crash with the queue likely non-empty, then verify state.
    let before = visible_state(&db);
    db.crash_and_recover();
    let after = visible_state(&db);
    for (id, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        assert_eq!(b, a, "key {id} changed across crash_and_recover");
        assert_explained_by_logs(a, id as u64, &logs, "after background recovery");
    }
}

/// Two adjacent key ids per partition that routes any traffic, used as
/// torn-batch sentinels: every batch that touches a partition writes both
/// members of its pair with the same tag, inside that partition's
/// sub-batch. Since a sub-batch installs under one continuous write-lock
/// hold, any reader snapshot must see the pair equal — seeing them differ
/// (or only one present) means a torn batch.
fn sentinel_pairs(db: &PrismDb) -> Vec<(usize, u64)> {
    let mut pairs: Vec<(usize, u64)> = Vec::new();
    for id in 0..KEY_SPACE - 1 {
        let shard = db.shard_of(&Key::from_id(id));
        if pairs.iter().any(|(p, _)| *p == shard) {
            continue;
        }
        if db.shard_of(&Key::from_id(id + 1)) == shard {
            pairs.push((shard, id));
        }
    }
    pairs
}

#[test]
fn concurrent_multi_partition_batches_are_atomic_per_partition() {
    const BATCHES_PER_THREAD: usize = 250;
    let db = stress_db_with_workers(2);
    let pairs = sentinel_pairs(&db);
    assert!(
        pairs.len() >= 2,
        "the key space must span several partitions"
    );
    let sentinel_ids: Vec<u64> = pairs.iter().flat_map(|(_, a)| [*a, *a + 1]).collect();

    let mut logs: Vec<HashMap<u64, LastWrite>> = Vec::with_capacity(THREADS);
    std::thread::scope(|scope| {
        // Writers: overlapping multi-partition batches. Each batch draws
        // 6..12 random entries (sentinel ids excluded), then appends both
        // sentinels of every partition the batch touches, tagged with the
        // batch's (thread, seq) value.
        let mut handles = Vec::with_capacity(THREADS);
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let pairs = pairs.clone();
            let sentinel_ids = sentinel_ids.clone();
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBA7C + t as u64);
                let mut last: HashMap<u64, LastWrite> = HashMap::new();
                for seq in 0..BATCHES_PER_THREAD {
                    let mut batch = WriteBatch::new();
                    let mut touched: Vec<usize> = Vec::new();
                    let entries = rng.gen_range(6usize..12);
                    for _ in 0..entries {
                        let id = rng.gen_range(0u64..KEY_SPACE);
                        if sentinel_ids.contains(&id) {
                            continue;
                        }
                        let key = Key::from_id(id);
                        let shard = db.shard_of(&key);
                        if !touched.contains(&shard) {
                            touched.push(shard);
                        }
                        if rng.gen_range(0u32..100) < 75 {
                            let value = tagged_value(t, seq);
                            last.insert(
                                id,
                                LastWrite::Put {
                                    len: value.len(),
                                    fill: value.as_bytes()[0],
                                },
                            );
                            batch.put(key, value);
                        } else {
                            last.insert(id, LastWrite::Delete);
                            batch.delete(key);
                        }
                    }
                    let tag = tagged_value(t, seq);
                    for (shard, a) in &pairs {
                        if touched.contains(shard) {
                            for id in [*a, *a + 1] {
                                last.insert(
                                    id,
                                    LastWrite::Put {
                                        len: tag.len(),
                                        fill: tag.as_bytes()[0],
                                    },
                                );
                                batch.put(Key::from_id(id), tag.clone());
                            }
                        }
                    }
                    db.apply_batch(batch).expect("apply_batch");
                }
                last
            }));
        }
        // Readers: snapshot sentinel pairs while batches race. A scan of
        // 2 keys starting at the pair's first id stays within one
        // partition read-lock hold, so it is atomic with respect to that
        // partition's sub-batch installs.
        for r in 0..2usize {
            let db = Arc::clone(&db);
            let pairs = pairs.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5EED + r as u64);
                for _ in 0..400 {
                    let (_, a) = pairs[rng.gen_range(0usize..pairs.len())];
                    let entries = db.scan(&Key::from_id(a), 2).expect("scan").entries;
                    let first = entries.iter().find(|(k, _)| k.id() == a);
                    let second = entries.iter().find(|(k, _)| k.id() == a + 1);
                    match (first, second) {
                        (None, None) => {} // no batch has touched the partition yet
                        (Some((_, va)), Some((_, vb))) => {
                            assert_eq!(
                                (va.len(), va.as_bytes()[0]),
                                (vb.len(), vb.as_bytes()[0]),
                                "torn batch: sentinel pair at {a} observed with \
                                 different tags"
                            );
                        }
                        _ => panic!(
                            "torn batch: only one sentinel of the pair at {a} is \
                             visible"
                        ),
                    }
                }
            });
        }
        for handle in handles {
            logs.push(handle.join().expect("batch writer panicked"));
        }
    });

    // Last-writer-wins per key: every survivor must be some thread's
    // final write, exactly as in the per-op stress tests.
    let state = visible_state(&db);
    let mut live = 0usize;
    for (id, observed) in state.iter().enumerate() {
        if observed.is_some() {
            live += 1;
        }
        assert_explained_by_logs(observed, id as u64, &logs, "after batch stress");
    }
    assert!(live > 0, "the write-heavy mix must leave live keys");

    // The usual engine invariants, plus batch counters proving the
    // batched path ran and merged duplicates.
    let scanned = db
        .scan(&Key::min(), KEY_SPACE as usize + 10)
        .expect("scan")
        .entries;
    assert_eq!(scanned.len(), live, "scan and point reads disagree");
    assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
    let objects = db.nvm_object_count() + db.flash_object_count();
    assert!(objects >= live, "tier objects cannot cover live keys");
    assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    let stats = db.stats();
    assert!(stats.batch_groups > 0, "batches must have installed groups");
    assert!(stats.batch_entries > stats.batch_groups);
    assert!(stats.compaction.jobs > 0, "the stress must compact");

    // Crash with the queue likely non-empty: recovery must reproduce the
    // visible state exactly (whole sub-batches, never a prefix).
    let before = visible_state(&db);
    db.crash_and_recover();
    let after = visible_state(&db);
    for (id, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        assert_eq!(b, a, "key {id} changed across crash_and_recover");
        assert_explained_by_logs(a, id as u64, &logs, "after batch recovery");
    }
}

/// 256 logical clients multiplexed on 2 submitter OS threads, serviced
/// by a 2-executor async front-end over an engine with 2 background
/// compaction workers: write coalescing, executor scheduling, demotions
/// and the foreground all race. Afterwards the usual invariants hold —
/// every surviving value is some logical client's final write (a logical
/// client keeps one op in flight, so its writes are ordered; the
/// globally-last write to a key is necessarily its client's last),
/// reads are never torn, scans stay ordered, and crash recovery
/// reproduces the visible state.
#[test]
fn async_frontend_multiplexes_256_logical_clients_under_stress() {
    use prismdb::frontend::{Frontend, FrontendOptions, WriteTicket};

    const SUBMITTERS: usize = 2;
    const CLIENTS_PER_SUBMITTER: usize = 128;
    const OPS_PER_CLIENT: usize = 60;

    let db = stress_db_with_workers(2);
    let frontend = Frontend::start(
        Arc::clone(&db),
        FrontendOptions {
            executors: 2,
            queue_capacity: 256,
            ..FrontendOptions::default()
        },
    )
    .expect("valid frontend options");
    let frontend = &frontend;

    // One log per *logical* client (the last-writer argument needs the
    // per-client write order, not the per-OS-thread one).
    let mut logs: Vec<HashMap<u64, LastWrite>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(SUBMITTERS);
        for s in 0..SUBMITTERS {
            handles.push(scope.spawn(move || {
                struct Client {
                    rng: StdRng,
                    issued: usize,
                    in_flight: Option<WriteTicket>,
                    log: HashMap<u64, LastWrite>,
                    tag: usize,
                }
                let mut clients: Vec<Client> = (0..CLIENTS_PER_SUBMITTER)
                    .map(|c| Client {
                        rng: StdRng::seed_from_u64(0xA57C + (s * CLIENTS_PER_SUBMITTER + c) as u64),
                        issued: 0,
                        in_flight: None,
                        log: HashMap::new(),
                        tag: s * CLIENTS_PER_SUBMITTER + c,
                    })
                    .collect();
                let mut open = clients.len();
                while open > 0 {
                    let mut progressed = false;
                    for client in clients.iter_mut() {
                        if let Some(ticket) = client.in_flight.as_mut() {
                            match ticket.poll() {
                                Some(result) => {
                                    result.expect("async write must ack");
                                    client.in_flight = None;
                                    progressed = true;
                                    if client.issued == OPS_PER_CLIENT {
                                        open -= 1;
                                        continue;
                                    }
                                }
                                None => continue,
                            }
                        } else if client.issued == OPS_PER_CLIENT {
                            continue;
                        }
                        // Issue the client's next op. Writes dominate and
                        // go through the queue; reads/scans are checked
                        // inline for tearing and ordering.
                        let id = client.rng.gen_range(0u64..KEY_SPACE);
                        let key = Key::from_id(id);
                        match client.rng.gen_range(0u32..100) {
                            0..=54 => {
                                // Unique per logical client: length encodes
                                // the client id, fill the sequence number.
                                let value =
                                    Value::filled(64 + client.tag, (client.issued % 251) as u8);
                                client.log.insert(
                                    id,
                                    LastWrite::Put {
                                        len: value.len(),
                                        fill: value.as_bytes()[0],
                                    },
                                );
                                client.in_flight =
                                    Some(frontend.submit_put(key, value).expect("submit"));
                            }
                            55..=69 => {
                                client.log.insert(id, LastWrite::Delete);
                                client.in_flight =
                                    Some(frontend.submit_delete(&key).expect("submit"));
                            }
                            70..=84 => {
                                let got = frontend
                                    .submit_get(&key)
                                    .expect("submit")
                                    .wait()
                                    .expect("read");
                                if let Some(value) = got.value {
                                    assert!(
                                        value.as_bytes().iter().all(|b| *b == value.as_bytes()[0]),
                                        "torn value observed through the frontend"
                                    );
                                }
                            }
                            _ => {
                                let start = client.rng.gen_range(0u64..KEY_SPACE);
                                let scanned = frontend
                                    .submit_scan(&Key::from_id(start), 32)
                                    .expect("submit")
                                    .wait()
                                    .expect("scan")
                                    .entries;
                                assert!(
                                    scanned.windows(2).all(|w| w[0].0 < w[1].0),
                                    "frontend scan returned unordered keys"
                                );
                            }
                        }
                        client.issued += 1;
                        progressed = true;
                        if client.in_flight.is_none() && client.issued == OPS_PER_CLIENT {
                            open -= 1;
                        }
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
                clients.into_iter().map(|c| c.log).collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            logs.extend(handle.join().expect("submitter thread panicked"));
        }
    });

    // Every submission acked, queues empty, and pressure really produced
    // coalesced group commits.
    let frontend_stats = frontend.stats();
    assert_eq!(frontend_stats.submitted, frontend_stats.completed);
    assert_eq!(frontend_stats.queue_depth, 0);
    assert!(frontend_stats.coalesced_groups > 0);
    assert!(
        frontend_stats.mean_coalesce_width() > 1.0,
        "256 clients on 2 executors must coalesce writes (width {})",
        frontend_stats.mean_coalesce_width()
    );

    // Last-writer-wins per key, scan/point-read agreement, engine
    // invariants, and compaction overlap — as in the raw stress tests.
    let state = visible_state(&db);
    let mut live = 0usize;
    for (id, observed) in state.iter().enumerate() {
        if observed.is_some() {
            live += 1;
        }
        assert_explained_by_logs(observed, id as u64, &logs, "after async stress");
    }
    assert!(live > 0, "the write-heavy mix must leave live keys");
    let scanned = db
        .scan(&Key::min(), KEY_SPACE as usize + 10)
        .expect("scan")
        .entries;
    assert_eq!(scanned.len(), live, "scan and point reads disagree");
    assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    use prismdb::types::ConcurrentKvStore as _;
    let stats = db.stats();
    assert!(stats.compaction.jobs > 0, "the stress must compact");
    assert!(
        stats.batch_groups > 0,
        "coalesced groups must have installed"
    );

    // Crash with the compaction queue likely non-empty: recovery must
    // reproduce the visible state exactly.
    let before = visible_state(&db);
    db.crash_and_recover();
    let after = visible_state(&db);
    for (id, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        assert_eq!(b, a, "key {id} changed across crash_and_recover");
        assert_explained_by_logs(a, id as u64, &logs, "after async recovery");
    }
}

#[test]
fn sharedkv_lets_the_single_threaded_runner_drive_a_shared_engine() {
    use prismdb::bench::{RunConfig, Runner};
    use prismdb::types::SharedKv;
    use prismdb::workloads::Workload;

    // The classic `&mut self` runner drives a shared engine through a
    // `SharedKv` handle while another handle (on another thread) reads
    // concurrently — the bridge existing single-threaded drivers use.
    let db = stress_db();
    let mut handle = SharedKv::new(Arc::clone(&db));
    let reader = SharedKv::new(Arc::clone(&db));
    let result = std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut reader = reader;
            for id in 0..KEY_SPACE {
                use prismdb::types::KvStore;
                let _ = reader.get(&Key::from_id(id)).expect("concurrent get");
            }
        });
        let runner = Runner::new(RunConfig::quick(KEY_SPACE));
        runner.run(&mut handle, &Workload::ycsb_b(KEY_SPACE), db.cost_per_gb())
    });
    assert!(result.throughput_kops > 0.0);
    assert_eq!(result.engine, "prismdb");
    // The writes went to the shared engine, not a copy.
    assert!(db.nvm_object_count() + db.flash_object_count() > 0);
    assert!(db.scan(&Key::min(), 10).expect("scan").entries.len() == 10);
}
