//! Facade smoke test: open a [`prismdb::db::PrismDb`] through the facade
//! crate's re-exports alone, drive it via the [`prismdb::types::KvStore`]
//! trait, and check that the per-tier statistics observe the traffic.

use prismdb::db::{Options, PrismDb};
use prismdb::types::{Key, KvStore, Value};

#[test]
fn facade_opens_writes_reads_and_reports_tier_stats() {
    let keys = 2_000u64;
    let options = Options::builder(keys)
        .partitions(2)
        .build()
        .expect("builder accepts the default small configuration");
    let mut db = PrismDb::open(options).expect("engine opens");
    assert_eq!(db.engine_name(), "prismdb");

    // Write every key, then update a hot subset so DRAM/NVM see repeat
    // traffic, and overflow NVM enough to force some demotions to flash.
    for id in 0..keys {
        db.put(Key::from_id(id), Value::filled(1024, id as u8))
            .expect("put succeeds");
    }
    for round in 0..3u8 {
        for id in 0..64 {
            db.put(Key::from_id(id), Value::filled(1024, round))
                .expect("update succeeds");
        }
    }

    // Reads through the KvStore trait: hot keys resolve with their latest
    // value, a never-written key is a clean miss.
    for id in 0..64 {
        let lookup = db.get(&Key::from_id(id)).expect("get succeeds");
        let value = lookup.value.expect("hot key is present");
        assert_eq!(value.len(), 1024);
        assert_eq!(value.as_bytes()[0], 2, "latest update wins");
    }
    let miss = db.get(&Key::from_id(keys + 1)).expect("get succeeds");
    assert!(miss.value.is_none(), "unwritten key must miss");

    // Tier statistics are populated: both tiers absorbed writes, reads were
    // attributed to a tier, and the object counts cover the whole key space.
    let stats = db.stats();
    assert_eq!(stats.user_bytes_written, (keys + 3 * 64) * 1024);
    assert!(stats.nvm_io.bytes_written > 0, "NVM absorbed the puts");
    assert!(
        stats.flash_io.bytes_written > 0,
        "demotions reached the flash tier"
    );
    assert_eq!(stats.reads_found(), 64);
    assert_eq!(stats.reads_not_found, 1);
    assert!(
        stats.reads_from_dram + stats.reads_from_nvm + stats.reads_from_flash >= 64,
        "every found read is attributed to a tier"
    );
    // Updated keys can briefly have a live NVM version plus a stale flash
    // version, so the union covers the key space with possible overlap.
    assert!(db.nvm_object_count() > 0, "hot keys live on NVM");
    assert!(
        db.flash_object_count() > 0,
        "cold keys were demoted to flash"
    );
    assert!(db.nvm_object_count() + db.flash_object_count() >= keys as usize);
    assert!(db.cost_per_gb() > 0.0);
}

/// The async submission front-end works end to end through the facade's
/// re-exports alone: submit writes and reads over a shared engine, wait
/// the tickets, and observe the coalescing statistics.
#[test]
fn facade_drives_the_async_frontend() {
    use prismdb::frontend::{Frontend, FrontendOptions};
    use prismdb::types::Nanos;
    use std::sync::Arc;

    let engine = Arc::new(
        PrismDb::open(
            Options::builder(1_000)
                .partitions(2)
                .build()
                .expect("valid"),
        )
        .expect("engine opens"),
    );
    let frontend =
        Frontend::start(Arc::clone(&engine), FrontendOptions::default()).expect("frontend starts");
    assert_eq!(frontend.executor_count(), 2);
    let tickets: Vec<_> = (0..100u64)
        .map(|id| {
            frontend
                .submit_put(Key::from_id(id), Value::filled(128, id as u8))
                .expect("submit")
        })
        .collect();
    for ticket in tickets {
        assert!(ticket.wait().expect("write acked") >= Nanos::ZERO);
    }
    let lookup = frontend
        .submit_get(&Key::from_id(42))
        .expect("submit")
        .wait()
        .expect("read");
    assert_eq!(lookup.value.expect("key present").as_bytes()[0], 42);
    let stats = frontend.stats();
    assert_eq!(stats.submitted, 101);
    assert_eq!(stats.completed, 101);
    assert_eq!(stats.coalesced_entries, 100);
}
