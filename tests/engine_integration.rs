//! Cross-crate integration tests: the full PrismDB stack driven through the
//! facade crate with real workload generators.

use prismdb::db::{Options, PrismDb};
use prismdb::types::{Key, KvStore, Op, ReadSource, Value};
use prismdb::workloads::Workload;

fn small_db(keys: u64) -> PrismDb {
    let options = Options::builder(keys).partitions(4).build().unwrap();
    PrismDb::open(options).unwrap()
}

fn apply(db: &mut PrismDb, op: &Op) {
    match op {
        Op::Read(key) => {
            db.get(key).unwrap();
        }
        Op::Update(key, value) | Op::Insert(key, value) => {
            db.put(key.clone(), value.clone()).unwrap();
        }
        Op::ReadModifyWrite(key, value) => {
            db.get(key).unwrap();
            db.put(key.clone(), value.clone()).unwrap();
        }
        Op::Scan(key, n) => {
            db.scan(key, *n).unwrap();
        }
        Op::Delete(key) => {
            db.delete(key).unwrap();
        }
    }
}

#[test]
fn ycsb_a_workload_runs_end_to_end_with_tiering() {
    let keys = 6_000;
    let mut db = small_db(keys);
    let workload = Workload::ycsb_a(keys);
    let mut stream = workload.stream(7);
    for op in stream.load_ops() {
        apply(&mut db, &op);
    }
    for _ in 0..10_000 {
        let op = stream.next().unwrap();
        apply(&mut db, &op);
    }
    let stats = db.stats();
    // The dataset does not fit on NVM, so compactions must have demoted data
    // to flash, and the Zipfian hot set must keep most reads off flash.
    assert!(db.flash_object_count() > 0, "no data was demoted to flash");
    assert!(db.nvm_object_count() > 0, "NVM should retain the hot set");
    assert!(stats.compaction.jobs > 0);
    assert!(
        stats.fast_read_ratio() > 0.5,
        "most zipfian reads should be served from DRAM/NVM, got {}",
        stats.fast_read_ratio()
    );
    assert!(db.elapsed().as_nanos() > 0);
}

#[test]
fn scan_heavy_workload_returns_ordered_results() {
    let keys = 3_000;
    let mut db = small_db(keys);
    let workload = Workload::ycsb_e(keys);
    let mut stream = workload.stream(3);
    for op in stream.load_ops() {
        apply(&mut db, &op);
    }
    for _ in 0..500 {
        let op = stream.next().unwrap();
        apply(&mut db, &op);
    }
    let result = db.scan(&Key::from_id(100), 200).unwrap();
    assert!(result.entries.len() >= 200);
    let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "scan results must be ordered");
}

#[test]
fn crash_recovery_preserves_every_surviving_key() {
    let keys = 4_000;
    let mut db = small_db(keys);
    for id in 0..keys {
        db.put(Key::from_id(id), Value::filled(700, (id % 251) as u8))
            .unwrap();
    }
    for id in (0..keys).step_by(10) {
        db.delete(&Key::from_id(id)).unwrap();
    }
    let recovery_time = db.crash_and_recover();
    assert!(recovery_time.as_nanos() > 0);
    for id in 0..keys {
        let got = db.get(&Key::from_id(id)).unwrap();
        if id % 10 == 0 {
            assert!(got.value.is_none(), "deleted key {id} reappeared");
        } else {
            let value = got.value.unwrap_or_else(|| panic!("key {id} lost"));
            assert_eq!(value.len(), 700);
            assert_eq!(value.as_bytes()[0], (id % 251) as u8);
        }
    }
}

#[test]
fn hot_objects_end_up_on_fast_tiers_under_skew() {
    let keys = 6_000;
    let mut db = small_db(keys);
    let workload = Workload::ycsb_b(keys).with_zipf(1.2);
    let mut stream = workload.stream(11);
    for op in stream.load_ops() {
        apply(&mut db, &op);
    }
    for _ in 0..15_000 {
        let op = stream.next().unwrap();
        apply(&mut db, &op);
    }
    // The hottest keys under Zipf 1.2 are a tiny set; they must be served
    // from DRAM or NVM by now.
    let mut fast = 0;
    let probe = 50u64;
    for rank in 0..probe {
        // The scrambled-zipfian hot keys are spread over the key space, so
        // instead probe the keys the engine itself reports as recently read
        // by re-reading a sample and checking the source.
        let key = Key::from_id(rank * (keys / probe));
        let got = db.get(&key).unwrap();
        if got.value.is_some() && matches!(got.source, ReadSource::Dram | ReadSource::Nvm) {
            fast += 1;
        }
    }
    // At minimum the engine-wide fast-read ratio must be high.
    assert!(db.stats().fast_read_ratio() > 0.6);
    assert!(fast <= probe as usize); // sanity: probe executed
}
