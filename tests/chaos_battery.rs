//! Chaos smoke battery: the release-mode CI gate behind the
//! `chaos-smoke` job.
//!
//! Four phases, all assertion-gated on every run:
//!
//! 1. **Detection gate** — a deterministic targeted-flip sweep on NVM:
//!    every single injected bit flip must be caught by a slab checksum
//!    on the next read, a 100% detection rate (not a statistical one).
//! 2. **Scrub convergence** — flash write flips land corrupt records in
//!    SST files under demotion churn; the scrubber must converge to a
//!    clean completed pass, and the wall-clock time to get there is the
//!    battery's scrub-repair latency measurement.
//! 3. **Degraded re-arm** — a hair-trigger partition is corrupted into
//!    read-only mode and the time for scrubbing to return it to
//!    `Healthy` is measured.
//! 4. **Fault storm** — a seeded random op mix under low-rate
//!    probabilistic faults (I/O errors, bit flips, torn writes, latency
//!    spikes) with a mid-run crash/recovery; the counters prove every
//!    fault class actually fired and was observed.
//!
//! With `PRISM_CHAOS_BENCH=1` the battery also writes `BENCH_chaos.json`
//! (fault counts, the detection rate, scrub/re-arm latencies) for CI
//! trend tracking; the correctness claims — the engine never *serves*
//! damaged bytes — are enforced by the differential suite's fault
//! column, which this battery complements rather than repeats.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prismdb::db::{
    FaultMode, FaultOp, FaultPlan, FaultTier, Options, PartitionHealth, PrismDb, TargetedFault,
    TierFaultRates,
};
use prismdb::types::{ConcurrentKvStore, Key, Nanos, PrismError, Value};

/// Targeted flips armed in the NVM detection-gate phase.
const NVM_FLIPS: u64 = 64;
/// Targeted flips armed in the flash scrub-convergence phase.
const FLASH_FLIPS: u64 = 3;
/// Keys written in the flash phase (sized so inline demotions must run).
const FLASH_KEYS: u64 = 200;
/// Operations driven in the fault-storm phase.
const STORM_OPS: u64 = 6_000;
/// Key space of the fault-storm phase.
const STORM_KEY_SPACE: u64 = 2_048;

fn arm(plan: &FaultPlan, tier: FaultTier) {
    plan.arm(TargetedFault {
        tier,
        partition: None,
        op: FaultOp::Write,
        mode: FaultMode::BitFlip,
    });
}

/// Phase 1: every injected NVM bit flip is detected on the next read.
/// Returns (injected, detected-by-read).
fn detection_gate() -> (u64, u64) {
    let plan = Arc::new(FaultPlan::new(0xC0A5));
    let mut options = Options::scaled_default(NVM_FLIPS * 8);
    options.num_partitions = 2;
    options.fault_plan = Some(Arc::clone(&plan));
    // Well above the flip count: this phase measures detection, not
    // degradation, so both partitions must keep serving throughout.
    options.corruption_quarantine_threshold = NVM_FLIPS + 1;
    let db = PrismDb::open(options).expect("valid options");

    for id in 0..NVM_FLIPS {
        arm(&plan, FaultTier::Nvm);
        db.put(Key::from_id(id), Value::filled(300, id as u8))
            .expect("a bit flip is silent at write time");
    }
    assert_eq!(plan.snapshot().bit_flips, NVM_FLIPS, "every flip fired");

    let mut caught = 0u64;
    for id in 0..NVM_FLIPS {
        match db.get(&Key::from_id(id)) {
            Err(PrismError::Corruption(_)) => caught += 1,
            Ok(_) => panic!("key {id} served a bit-flipped slot as clean"),
            Err(err) => panic!("key {id} surfaced {err} instead of Corruption"),
        }
    }
    assert_eq!(caught, NVM_FLIPS, "detection rate must be 100%");
    assert!(plan.snapshot().detected >= NVM_FLIPS);
    (NVM_FLIPS, caught)
}

/// Phase 2: flash corruption under churn; scrub until a completed clean
/// pass and time it. Returns (elapsed µs, passes, repaired, quarantined).
fn scrub_convergence() -> (u128, u64, u64, u64) {
    let plan = Arc::new(FaultPlan::new(0xC0A6));
    let mut options = Options::scaled_default(FLASH_KEYS);
    options.num_partitions = 1;
    // NVM far smaller than the dataset: inline demotions must run, so
    // the armed flips land inside SST builds.
    options.nvm_capacity_bytes = 32 * 1024;
    options.nvm_profile.capacity_bytes = 32 * 1024;
    options.sst_target_bytes = 8 * 1024;
    options.compaction.bucket_size_keys = 64;
    options.fault_plan = Some(Arc::clone(&plan));
    options.corruption_quarantine_threshold = 100;
    let db = PrismDb::open(options).expect("valid options");

    for id in 0..FLASH_KEYS {
        db.put(Key::from_id(id), Value::filled(600, id as u8))
            .expect("clean warm-up writes");
    }
    for _ in 0..FLASH_FLIPS {
        arm(&plan, FaultTier::Flash);
    }
    for id in 0..FLASH_KEYS {
        db.put(Key::from_id(id), Value::filled(600, (id + 1) as u8))
            .expect("writes stay silent under flash write flips");
    }
    assert_eq!(plan.snapshot().bit_flips, FLASH_FLIPS, "every flip fired");

    let start = Instant::now();
    let mut passes = 0u64;
    let mut repaired = 0u64;
    let mut quarantined = 0u64;
    loop {
        let report = db.scrub();
        passes += 1;
        repaired += report.repaired;
        quarantined += report.quarantined;
        assert!(report.completed, "engine scrub drives complete passes");
        if report.corrupt_found == 0 {
            break;
        }
        assert!(passes < 32, "scrubbing never converged to a clean pass");
    }
    let elapsed = start.elapsed().as_micros();

    // No probe anywhere returns damaged bytes afterwards.
    for id in 0..FLASH_KEYS {
        match db.get(&Key::from_id(id)) {
            Ok(lookup) => {
                let value = lookup.value.expect("no deletes in this phase");
                assert_eq!(value, Value::filled(600, (id + 1) as u8), "key {id}");
            }
            Err(PrismError::Corruption(_)) => {}
            Err(err) => panic!("key {id} surfaced {err}"),
        }
    }
    (elapsed, passes, repaired, quarantined)
}

/// Phase 3: corrupt a hair-trigger partition into degraded mode, then
/// time the scrub passes that re-arm it. Returns elapsed µs.
fn degraded_rearm() -> u128 {
    let plan = Arc::new(FaultPlan::new(0xC0A7));
    let mut options = Options::scaled_default(256);
    options.num_partitions = 1;
    options.fault_plan = Some(Arc::clone(&plan));
    options.corruption_quarantine_threshold = 2;
    let db = PrismDb::open(options).expect("valid options");

    for id in 0..2u64 {
        arm(&plan, FaultTier::Nvm);
        db.put(Key::from_id(id), Value::filled(200, id as u8))
            .expect("silent damage");
        assert!(matches!(
            db.get(&Key::from_id(id)),
            Err(PrismError::Corruption(_))
        ));
    }
    assert_eq!(db.partition_health(0), PartitionHealth::Degraded);
    assert!(matches!(
        db.put(Key::from_id(9), Value::filled(10, 9)),
        Err(PrismError::Degraded { partition: 0 })
    ));

    let start = Instant::now();
    let mut rounds = 0;
    while db.partition_health(0) != PartitionHealth::Healthy {
        db.scrub();
        rounds += 1;
        assert!(rounds < 32, "scrubbing never re-armed the partition");
    }
    let elapsed = start.elapsed().as_micros();
    db.put(Key::from_id(9), Value::filled(10, 9))
        .expect("a re-armed partition accepts writes again");
    elapsed
}

/// Outcome counters of the fault-storm phase.
struct StormOutcome {
    io_errors: u64,
    bit_flips: u64,
    torn_writes: u64,
    latency_spikes: u64,
    checksum_failures: u64,
    quarantined: u64,
    scrub_repairs: u64,
    degraded_entered: u64,
    degraded_recovered: u64,
}

/// Phase 4: seeded random ops under probabilistic faults with a mid-run
/// crash. Errors are tolerated (the differential fault column proves
/// they are *honest*); this phase proves every fault class fires and
/// the counters move.
fn fault_storm() -> StormOutcome {
    let seed = 0xC0A8u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = Arc::new(FaultPlan::new(seed).with_rates(TierFaultRates {
        io_error: 0.0015,
        bit_flip: 0.004,
        torn_write: 0.0015,
        latency_spike: 0.005,
        spike: Nanos::from_micros(400),
    }));
    let mut options = Options::scaled_default(STORM_KEY_SPACE);
    options.num_partitions = 3;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    options.nvm_capacity_bytes = 256 * 1024;
    options.nvm_profile.capacity_bytes = 256 * 1024;
    options.fault_plan = Some(Arc::clone(&plan));
    options.corruption_quarantine_threshold = 3;
    options.scrub_io_budget_bytes = 64 * 1024;
    let db = PrismDb::open(options).expect("valid options");

    for op in 0..STORM_OPS {
        let id = rng.gen_range(0..STORM_KEY_SPACE);
        let key = Key::from_id(id);
        match rng.gen_range(0u32..10) {
            0..=5 => {
                let value = Value::filled(rng.gen_range(64usize..800), id as u8);
                match db.put(key, value) {
                    Ok(_) | Err(PrismError::Degraded { .. }) | Err(PrismError::Io(_)) => {}
                    Err(other) => panic!("storm write failed with {other}"),
                }
            }
            6..=8 => match db.get(&key) {
                Ok(_) | Err(PrismError::Corruption(_)) | Err(PrismError::Io(_)) => {}
                Err(other) => panic!("storm read failed with {other}"),
            },
            _ => {
                let _ = db.scan(&key, 32);
            }
        }
        if op == STORM_OPS / 2 {
            db.crash_and_recover();
        }
        if op % 500 == 499 {
            db.scrub();
        }
    }
    // Converge: scrubbing must drain all surviving corruption.
    let mut rounds = 0;
    loop {
        let report = db.scrub();
        if report.corrupt_found == 0 {
            break;
        }
        rounds += 1;
        assert!(rounds < 32, "storm scrubbing never converged");
    }

    let snap = plan.snapshot();
    let stats = ConcurrentKvStore::stats(&db);
    assert!(snap.io_errors > 0, "the storm never injected an I/O error");
    assert!(
        snap.bit_flips + snap.torn_writes > 0,
        "the storm never injected corruption"
    );
    assert!(
        stats.integrity.checksum_failures > 0,
        "injected corruption was never caught by a checksum"
    );
    StormOutcome {
        io_errors: snap.io_errors,
        bit_flips: snap.bit_flips,
        torn_writes: snap.torn_writes,
        latency_spikes: snap.latency_spikes,
        checksum_failures: stats.integrity.checksum_failures,
        quarantined: stats.integrity.quarantined_objects,
        scrub_repairs: stats.integrity.scrub_repairs,
        degraded_entered: stats.integrity.degraded_entered,
        degraded_recovered: stats.integrity.degraded_recovered,
    }
}

/// One test drives all four phases in order so `BENCH_chaos.json` is
/// written exactly once, with every number coming from the same run.
#[test]
fn chaos_battery() {
    let (injected, detected) = detection_gate();
    let (scrub_us, scrub_passes, repaired, quarantined) = scrub_convergence();
    let rearm_us = degraded_rearm();
    let storm = fault_storm();

    if std::env::var("PRISM_CHAOS_BENCH").as_deref() == Ok("1") {
        let body = format!(
            "{{\n  \"benchmark\": \"chaos_battery\",\n  \
             \"nvm_flips_injected\": {injected},\n  \
             \"nvm_flips_detected\": {detected},\n  \
             \"nvm_detection_rate\": {:.3},\n  \
             \"flash_flips_injected\": {FLASH_FLIPS},\n  \
             \"scrub_time_to_clean_us\": {scrub_us},\n  \
             \"scrub_passes_to_clean\": {scrub_passes},\n  \
             \"scrub_repaired\": {repaired},\n  \
             \"scrub_quarantined\": {quarantined},\n  \
             \"degraded_rearm_us\": {rearm_us},\n  \
             \"storm_ops\": {STORM_OPS},\n  \
             \"storm_io_errors\": {},\n  \
             \"storm_bit_flips\": {},\n  \
             \"storm_torn_writes\": {},\n  \
             \"storm_latency_spikes\": {},\n  \
             \"storm_checksum_failures\": {},\n  \
             \"storm_quarantined\": {},\n  \
             \"storm_scrub_repairs\": {},\n  \
             \"storm_degraded_entered\": {},\n  \
             \"storm_degraded_recovered\": {}\n}}\n",
            detected as f64 / injected as f64,
            storm.io_errors,
            storm.bit_flips,
            storm.torn_writes,
            storm.latency_spikes,
            storm.checksum_failures,
            storm.quarantined,
            storm.scrub_repairs,
            storm.degraded_entered,
            storm.degraded_recovered,
        );
        std::fs::write("BENCH_chaos.json", body).expect("write bench json");
    }
}
