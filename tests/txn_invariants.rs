//! Transactional invariant battery: concurrent bank transfers.
//!
//! A fixed pool of accounts (hash-scattered across 4 partitions) starts
//! with a known global balance. Transfer threads move money between
//! random account pairs through optimistic multi-key transactions
//! ([`run_transaction`]): read both balances through the snapshot, debit
//! one, credit the other, commit — retrying on conflict. Meanwhile a
//! checker thread pins snapshots and asserts, at every snapshot, that
//!
//! * the global balance is exactly the initial total (no money is ever
//!   created or destroyed, even mid-transfer — commits are atomic), and
//! * no account balance is negative or above the total (no torn debit
//!   without its credit, no double-credit).
//!
//! The engine runs 2 background compaction workers with NVM far smaller
//! than the dataset, so demotions and promotions churn versions under
//! the live snapshots the whole time. Between rounds the engine is
//! crash-recovered (with writers quiesced — recovery's commit-log
//! rollback is defined against crashed writers, not racing ones) and the
//! invariant is re-checked from durable state only.
//!
//! With `PRISM_TXN_BENCH=1` the battery also writes
//! `BENCH_txn_battery.json` with throughput-ish counters for CI trend
//! tracking.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prismdb::db::{Options, Partitioning, PrismDb};
use prismdb::types::{run_transaction, ConcurrentKvStore, Key, PrismError, Value};

/// Number of accounts. Small enough that concurrent transfers collide
/// (exercising conflict detection), large enough to span partitions.
const ACCOUNTS: u64 = 32;
/// Starting balance per account.
const INITIAL_BALANCE: u64 = 1_000;
/// The conserved quantity.
const TOTAL: u64 = ACCOUNTS * INITIAL_BALANCE;
/// Key-id universe the accounts are spread over.
const KEY_SPACE: u64 = 2_000;
/// Account values carry the balance in their first 8 bytes and pad to
/// this size so the working set overflows the tiny NVM and compactions
/// run throughout.
const VALUE_LEN: usize = 600;
/// Transfer rounds; the engine is crash-recovered between rounds.
const ROUNDS: usize = 3;
/// Concurrent transfer threads per round.
const THREADS: usize = 4;
/// Transfers attempted per thread per round.
const TRANSFERS: usize = 150;

fn account_key(account: u64) -> Key {
    Key::from_id(account * (KEY_SPACE / ACCOUNTS))
}

fn encode(balance: u64) -> Value {
    let mut bytes = vec![0xBB; VALUE_LEN];
    bytes[..8].copy_from_slice(&balance.to_le_bytes());
    Value::from_vec(bytes)
}

fn decode(value: &Value) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&value.as_bytes()[..8]);
    u64::from_le_bytes(bytes)
}

fn bank_db() -> PrismDb {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = 4;
    options.partitioning = Partitioning::Hash;
    options.compaction_workers = 2;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // NVM holds only a fraction of the account set, so transfers force
    // demotion/promotion compactions while snapshots are pinned.
    options.nvm_capacity_bytes = 12 * 1024;
    options.nvm_profile.capacity_bytes = 12 * 1024;
    PrismDb::open(options).expect("valid options")
}

/// Sum every account through one pinned snapshot, asserting per-account
/// sanity; returns the total.
fn snapshot_total(db: &PrismDb, context: &str) -> u64 {
    let snap = db.snapshot().expect("snapshot");
    let mut sum = 0u64;
    for account in 0..ACCOUNTS {
        let value = db
            .snapshot_get(snap, &account_key(account))
            .expect("snapshot read")
            .unwrap_or_else(|| panic!("{context}: account {account} missing from snapshot"));
        let balance = decode(&value);
        assert!(
            balance <= TOTAL,
            "{context}: account {account} balance {balance} exceeds the total \
             (a debit committed without its credit, or underflowed)"
        );
        sum += balance;
    }
    db.release_snapshot(snap);
    sum
}

#[test]
fn concurrent_transfers_conserve_the_global_balance() {
    let db = Arc::new(bank_db());

    // Seed the accounts and sanity-check the spread: hash routing must
    // scatter them over every partition or the battery would not be
    // exercising cross-partition commits.
    for account in 0..ACCOUNTS {
        db.put(account_key(account), encode(INITIAL_BALANCE))
            .unwrap();
    }
    let mut shards = vec![false; ConcurrentKvStore::shard_count(&*db)];
    for account in 0..ACCOUNTS {
        shards[ConcurrentKvStore::shard_of(&*db, &account_key(account))] = true;
    }
    assert!(
        shards.iter().filter(|hit| **hit).count() >= 2,
        "accounts must span partitions for the battery to mean anything"
    );
    assert_eq!(snapshot_total(&db, "seeded"), TOTAL);

    let transfers_done = AtomicU64::new(0);
    let transfers_conflicted = AtomicU64::new(0);
    let checks_done = AtomicU64::new(0);

    for round in 0..ROUNDS {
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // The checker: pin snapshots as fast as they come and assert
            // conservation at every one, racing the transfer threads and
            // the background compaction workers.
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let sum = snapshot_total(&db, "mid-round snapshot");
                    assert_eq!(
                        sum, TOTAL,
                        "snapshot saw money created/destroyed (round {round})"
                    );
                    checks_done.fetch_add(1, Ordering::Relaxed);
                }
            });
            let mut transfer_handles = Vec::new();
            for thread in 0..THREADS {
                let db = &db;
                let transfers_done = &transfers_done;
                let transfers_conflicted = &transfers_conflicted;
                transfer_handles.push(scope.spawn(move || {
                    let mut rng =
                        StdRng::seed_from_u64(0xBA_2026 + (round * THREADS + thread) as u64);
                    for _ in 0..TRANSFERS {
                        let from = rng.gen_range(0u64..ACCOUNTS);
                        let mut to = rng.gen_range(0u64..ACCOUNTS);
                        if to == from {
                            to = (to + 1) % ACCOUNTS;
                        }
                        let amount = rng.gen_range(1u64..=50);
                        let outcome = run_transaction(&**db, 16, |txn| {
                            let from_balance =
                                decode(&txn.get(&account_key(from))?.expect("account exists"));
                            let to_balance =
                                decode(&txn.get(&account_key(to))?.expect("account exists"));
                            if from_balance >= amount {
                                txn.put(account_key(from), encode(from_balance - amount));
                                txn.put(account_key(to), encode(to_balance + amount));
                            }
                            Ok(())
                        });
                        match outcome {
                            Ok(()) => {
                                transfers_done.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(PrismError::TxnConflict { .. }) => {
                                // Retries exhausted under heavy contention:
                                // dropping the transfer is fine, conservation
                                // holds either way.
                                transfers_conflicted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("transfer failed: {other:?}"),
                        }
                    }
                }));
            }
            // Join the transfer threads, then release the checker; the
            // scope's implicit join picks the checker up afterwards.
            for handle in transfer_handles {
                handle.join().expect("transfer thread panicked");
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Writers quiesced: re-verify from a fresh pin.
        assert_eq!(
            snapshot_total(&db, "round quiesced"),
            TOTAL,
            "quiesced snapshot saw money created/destroyed (round {round})"
        );

        // Crash with writers quiesced: sealed commits must survive, the
        // clock and snapshot machinery must rebuild, and the invariant
        // must hold from durable state alone.
        db.crash_and_recover();
        assert_eq!(db.torn_commit_records(), 0);
        assert_eq!(
            snapshot_total(&db, "post-recovery"),
            TOTAL,
            "recovery lost or duplicated money (round {round})"
        );
    }

    // A deterministic conflict so the conflict counter is exercised even
    // if the random schedule above never collided: pin, write the read
    // key behind the snapshot's back, then try to commit against it.
    let snap = db.snapshot().unwrap();
    let probe = account_key(0);
    let balance = decode(&db.snapshot_get(snap, &probe).unwrap().expect("account 0"));
    db.put(probe.clone(), encode(balance)).unwrap();
    let mut writes = prismdb::types::WriteBatch::new();
    writes.put(account_key(1), encode(INITIAL_BALANCE));
    let err = db
        .txn_commit(snap, std::slice::from_ref(&probe), writes)
        .unwrap_err();
    assert!(matches!(err, PrismError::TxnConflict { .. }));
    db.release_snapshot(snap);
    // Undo the probe write's effect on nothing: it rewrote the same
    // balance, so conservation still holds.
    assert_eq!(snapshot_total(&db, "final"), TOTAL);

    let stats = ConcurrentKvStore::stats(&*db);
    assert!(
        stats.txn.txn_commits > 0,
        "the battery never committed a transaction"
    );
    assert!(
        stats.txn.txn_conflicts > 0,
        "the battery never observed a conflict"
    );
    assert!(stats.txn.snapshots > 0);
    assert!(
        checks_done.load(Ordering::Relaxed) > 0,
        "the checker never ran a snapshot check"
    );
    assert!(transfers_done.load(Ordering::Relaxed) > 0);

    if std::env::var("PRISM_TXN_BENCH").as_deref() == Ok("1") {
        let body = format!(
            "{{\n  \"benchmark\": \"txn_battery\",\n  \"accounts\": {},\n  \
             \"rounds\": {},\n  \"threads\": {},\n  \"transfers_committed\": {},\n  \
             \"transfers_dropped\": {},\n  \"snapshot_checks\": {},\n  \
             \"txn_commits\": {},\n  \"txn_conflicts\": {},\n  \"snapshots\": {}\n}}\n",
            ACCOUNTS,
            ROUNDS,
            THREADS,
            transfers_done.load(Ordering::Relaxed),
            transfers_conflicted.load(Ordering::Relaxed),
            checks_done.load(Ordering::Relaxed),
            stats.txn.txn_commits,
            stats.txn.txn_conflicts,
            stats.txn.snapshots,
        );
        std::fs::write("BENCH_txn_battery.json", body).expect("write bench json");
    }
}
