//! Integration tests asserting the headline comparative results of the
//! paper hold in the reproduction: PrismDB vs the LSM baseline family on
//! equivalently-priced simulated hardware.

use prismdb::bench::{engines, RunConfig, Runner};
use prismdb::compaction::CompactionPolicy;
use prismdb::workloads::Workload;

fn runner(keys: u64) -> Runner {
    Runner::new(RunConfig {
        record_count: keys,
        warmup_ops: keys,
        measure_ops: keys * 2,
        seed: 42,
        windows: 1,
    })
}

#[test]
fn prismdb_outperforms_multitier_lsm_on_write_heavy_zipfian() {
    let keys = 6_000;
    let runner = runner(keys);
    let workload = Workload::ycsb_a(keys);

    let mut prism = engines::prismdb(keys);
    let prism_cost = prism.cost_per_gb();
    let prism_result = runner.run(&mut prism, &workload, prism_cost);

    let mut rocks = engines::rocksdb_het(keys);
    let rocks_cost = rocks.cost_per_gb();
    let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);

    assert!(
        prism_result.throughput_kops > rocks_result.throughput_kops,
        "YCSB-A: prism {:.1} Kops/s vs rocksdb-het {:.1} Kops/s",
        prism_result.throughput_kops,
        rocks_result.throughput_kops
    );
    // Equivalently-priced hardware: the blended cost must be comparable.
    assert!((prism_result.cost_per_gb - rocks_result.cost_per_gb).abs() < 0.25);
}

#[test]
fn prismdb_keeps_more_reads_off_flash_than_the_lsm() {
    let keys = 6_000;
    let runner = runner(keys);
    let workload = Workload::ycsb_b(keys);

    let mut prism = engines::prismdb(keys);
    let prism_cost = prism.cost_per_gb();
    let prism_result = runner.run(&mut prism, &workload, prism_cost);

    let mut rocks = engines::rocksdb_het(keys);
    let rocks_cost = rocks.cost_per_gb();
    let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);

    assert!(
        prism_result.fast_read_ratio() >= rocks_result.fast_read_ratio(),
        "prism fast-read ratio {:.2} vs rocksdb {:.2}",
        prism_result.fast_read_ratio(),
        rocks_result.fast_read_ratio()
    );
}

#[test]
fn msc_compaction_writes_no_more_flash_than_random_selection() {
    let keys = 6_000;
    // The policies only differentiate under sustained demotion pressure, so
    // this comparison needs a workload whose inserts keep filling NVM (with
    // update-only YCSB-A the whole measurement window sees a single
    // compaction job and the ratio is noise) and a window long enough for
    // tens of compactions per engine.
    let runner = Runner::new(RunConfig {
        record_count: keys,
        warmup_ops: keys * 2,
        measure_ops: keys * 10,
        seed: 42,
        windows: 1,
    });
    let workload = Workload::ycsb_d(keys).with_zipf(0.99);

    let mut approx = engines::prismdb_with_policy(keys, CompactionPolicy::ApproxMsc);
    let approx_cost = approx.cost_per_gb();
    let approx_result = runner.run(&mut approx, &workload, approx_cost);

    let mut random = engines::prismdb_with_policy(keys, CompactionPolicy::Random);
    let random_cost = random.cost_per_gb();
    let random_result = runner.run(&mut random, &workload, random_cost);

    let approx_wa = approx_result.stats.flash_write_amplification();
    let random_wa = random_result.stats.flash_write_amplification();
    assert!(
        approx_wa <= random_wa * 1.25,
        "approx-MSC flash WA {approx_wa:.2} should not exceed random {random_wa:.2}"
    );
}

#[test]
fn single_tier_nvm_is_fastest_and_most_expensive() {
    let keys = 4_000;
    let runner = runner(keys);
    let workload = Workload::ycsb_a(keys).with_zipf(0.8);

    let mut nvm = engines::rocksdb_nvm(keys);
    let nvm_cost = nvm.cost_per_gb();
    let nvm_result = runner.run(&mut nvm, &workload, nvm_cost);

    let mut qlc = engines::rocksdb_qlc(keys);
    let qlc_cost = qlc.cost_per_gb();
    let qlc_result = runner.run(&mut qlc, &workload, qlc_cost);

    assert!(nvm_result.throughput_kops > qlc_result.throughput_kops);
    assert!(nvm_result.cost_per_gb > 20.0 * qlc_result.cost_per_gb);
}

#[test]
fn spandb_beats_stock_rocksdb_when_fsync_is_required() {
    let keys = 4_000;
    let runner = runner(keys);
    let workload = Workload::ycsb_a(keys);

    let mut rocks = engines::rocksdb_het_fsync(keys);
    let rocks_cost = rocks.cost_per_gb();
    let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);

    let mut span = engines::spandb(keys);
    let span_cost = span.cost_per_gb();
    let span_result = runner.run(&mut span, &workload, span_cost);

    let mut prism = engines::prismdb(keys);
    let prism_cost = prism.cost_per_gb();
    let prism_result = runner.run(&mut prism, &workload, prism_cost);

    assert!(
        span_result.throughput_kops > rocks_result.throughput_kops,
        "spandb {:.1} vs rocksdb-fsync {:.1}",
        span_result.throughput_kops,
        rocks_result.throughput_kops
    );
    assert!(
        prism_result.throughput_kops > span_result.throughput_kops,
        "prism {:.1} vs spandb {:.1}",
        prism_result.throughput_kops,
        span_result.throughput_kops
    );
}
