//! Differential (model-based) testing: PrismDB (hash- and range-
//! partitioned, with inline and background compaction), the multi-tier
//! LSM baseline and the `MemStore` oracle are driven with the same seeded
//! random mixed operation stream, and their visible state (point lookups
//! and range scans) must be identical after every batch. Any divergence —
//! tombstones resurfacing, stale flash versions winning a merge,
//! cross-partition scans dropping or duplicating keys, a background
//! compaction job clobbering a foreground write it raced with — fails
//! deterministically with the seed printed in the assertion.
//!
//! The background-compaction engine is crashed *mid-run* (while its job
//! queue and workers are busy): recovery must land on exactly the
//! oracle's state, proving an interrupted plan/execute/install pipeline
//! recovers to either the old or the new state, never a half-compacted
//! one.
//!
//! A fifth column drives the *batched* write path: the identical op
//! stream with its writes chunked into [`WriteBatch`]es (flushed before
//! every read/scan so read-your-writes holds for the comparisons). Its
//! engine is crash-recovered mid-run with entries still buffered
//! client-side, and once more *while a multi-partition batch is in
//! flight* on another thread — per-partition sub-batches must be
//! all-or-nothing after recovery, so the final state must still equal
//! the oracle's exactly.
//!
//! A sixth column drives the *async submission front-end*: writes are
//! submitted onto the per-partition queues without waiting (tickets
//! accumulate client-side) and every read/scan first waits all pending
//! acks, so read-your-writes holds and executor-coalesced group commits
//! are compared against the oracle exactly. Its engine is crash-recovered
//! mid-run *while submissions are still in flight* in the queues (acked
//! ops must survive; queued ops drain through the executors and
//! reconverge), and once more with unacked tickets outstanding.
//!
//! A seventh column drives the *transaction API*: writes commit through
//! optimistic multi-key transactions (each buffered key is read inside
//! the transaction first, so commits validate real read sets). Mid-run a
//! multi-partition commit is deliberately left *torn* — intent persisted,
//! one partition group installed, never sealed — and the engine is
//! crash-recovered: the commit-log rollback must make the torn commit
//! vanish atomically while every sealed transaction survives, so the
//! column must still equal the oracle exactly.
//!
//! An eighth column drives the *network serving layer* end to end: every
//! operation is encoded onto the wire, carried over the in-process
//! duplex-pipe transport, decoded by the multiplexing server, executed
//! through the submission front-end, and the response decoded back —
//! writes pipeline (a bounded window of unacknowledged frames), reads
//! wait the window first so read-your-writes holds. Mid-run the engine
//! is crashed underneath the live server while frames are in flight, and
//! later the *whole server* is torn down mid-pipeline: the shutdown
//! drain acks everything submitted, the client resolves every in-flight
//! frame against the old connection (landed / refused / lost), the
//! engine is crash-recovered, a fresh server is started, and the client
//! reconnects and replays exactly the unlanded frames in order — so the
//! column must still equal the oracle exactly.
//!
//! A ninth column replays the same op stream under a seeded low-rate
//! *storage fault plan* (injected I/O errors, bit flips and torn writes
//! on both tiers). Exact equality is impossible — failed writes leave a
//! key in one of a small acceptable-state set — so this column runs an
//! uncertainty-aware oracle with a different contract: the engine may
//! *error* (corruption is detected and surfaced, degraded partitions
//! refuse writes) but may never *lie* — every value a read or scan
//! returns must be a state some legal execution could hold. It is
//! crash-recovered mid-run with corrupt slots live (recovery must
//! quarantine, never resurrect), and after a final heal-and-scrub phase
//! it must converge to the oracle exactly.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prismdb::db::{FaultPlan, Options, PartitionHealth, Partitioning, PrismDb, TierFaultRates};
use prismdb::frontend::{Frontend, FrontendOptions, WriteTicket};
use prismdb::lsm::{LsmConfig, LsmTree};
use prismdb::net::protocol::{Request, Status};
use prismdb::net::transport::duplex_listener;
use prismdb::net::{NetClient, NetServer, ServerOptions};
use prismdb::types::{
    run_transaction, BatchOp, ConcurrentKvStore, EngineStats, Key, KvStore, Lookup, MemStore,
    Nanos, Op, PrismError, Result, ScanResult, Value, WriteBatch,
};

/// Key-id universe. Small enough that keys are updated/deleted/re-inserted
/// many times per run, which is what shakes out version/tombstone bugs.
const KEY_SPACE: u64 = 1_500;
/// Operations per seed.
const OPS_PER_SEED: usize = 10_000;
/// Visible state is compared after every batch this size (and once at the
/// end).
const BATCH: usize = 1_000;

fn prism_engine(partitioning: Partitioning) -> PrismDb {
    prism_engine_with_workers(partitioning, 0)
}

fn prism_engine_with_workers(partitioning: Partitioning, workers: usize) -> PrismDb {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = 3;
    options.partitioning = partitioning;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // Keep NVM small relative to the dataset so demotion compactions (and
    // on read-heavy phases, promotions) run constantly mid-test.
    options.nvm_capacity_bytes = 256 * 1024;
    options.nvm_profile.capacity_bytes = 256 * 1024;
    options.compaction_workers = workers;
    PrismDb::open(options).expect("valid options")
}

fn lsm_engine() -> LsmTree {
    LsmTree::open(LsmConfig::het(KEY_SPACE, 1.0 / 6.0)).expect("valid config")
}

/// How many write entries the batched column buffers before submitting
/// one [`WriteBatch`].
const BATCH_CHUNK: usize = 16;

/// A client-side batching adapter over a shared PrismDB: writes buffer
/// into a [`WriteBatch`] submitted every [`BATCH_CHUNK`] entries, and any
/// read or scan flushes first so read-your-writes holds and every
/// comparison against the oracle is exact.
struct BatchingKv {
    db: Arc<PrismDb>,
    pending: WriteBatch,
}

impl BatchingKv {
    fn new(db: PrismDb) -> Self {
        BatchingKv {
            db: Arc::new(db),
            pending: WriteBatch::with_capacity(BATCH_CHUNK),
        }
    }

    fn flush(&mut self) -> Result<Nanos> {
        if self.pending.is_empty() {
            return Ok(Nanos::ZERO);
        }
        self.db.apply_batch(std::mem::take(&mut self.pending))
    }

    /// Crash the underlying engine. Deliberately does NOT flush: entries
    /// still buffered client-side are not yet submitted, survive the
    /// crash in the client, and reach the engine with a later flush —
    /// mirroring a client whose group commit had not been issued yet.
    fn crash_and_recover(&self) -> Nanos {
        self.db.crash_and_recover()
    }

    fn engine(&self) -> Arc<PrismDb> {
        Arc::clone(&self.db)
    }
}

impl KvStore for BatchingKv {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.pending.put(key, value);
        if self.pending.len() >= BATCH_CHUNK {
            return self.flush();
        }
        Ok(Nanos::ZERO)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.pending.delete(key.clone());
        if self.pending.len() >= BATCH_CHUNK {
            return self.flush();
        }
        Ok(Nanos::ZERO)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        self.flush()?;
        ConcurrentKvStore::get(&self.db, key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        self.flush()?;
        ConcurrentKvStore::scan(&self.db, start, count)
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(&self.db)
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(&self.db)
    }

    fn engine_name(&self) -> &str {
        "prismdb-batched"
    }
}

/// How many write entries the transactional column buffers before
/// committing one optimistic transaction. Smaller than [`BATCH_CHUNK`] so
/// commits span partitions often without every commit being huge.
const TXN_CHUNK: usize = 8;

/// The transactional column: writes buffer client-side and commit through
/// an optimistic [`Transaction`](prismdb::types::Transaction) — every
/// buffered key is first *read* inside the transaction (so the commit
/// validates a real read set) and then written, making each flush a
/// multi-key, usually multi-partition, atomic commit. Reads and scans
/// flush first so read-your-writes holds for the oracle comparisons.
struct TxnKv {
    db: Arc<PrismDb>,
    pending: WriteBatch,
}

impl TxnKv {
    fn new(db: PrismDb) -> Self {
        TxnKv {
            db: Arc::new(db),
            pending: WriteBatch::with_capacity(TXN_CHUNK),
        }
    }

    fn flush(&mut self) -> Result<Nanos> {
        if self.pending.is_empty() {
            return Ok(Nanos::ZERO);
        }
        let ops = std::mem::take(&mut self.pending).into_entries();
        run_transaction(&*self.db, 3, |txn| {
            // Read every key first: the commit then validates that none
            // of them changed after the snapshot (trivially true in this
            // single-threaded column, but it drives the whole OCC path).
            for op in &ops {
                txn.get(op.key())?;
            }
            for op in ops.iter().cloned() {
                match op {
                    BatchOp::Put(key, value) => txn.put(key, value),
                    BatchOp::Delete(key) => txn.delete(key),
                }
            }
            Ok(())
        })?;
        Ok(Nanos::ZERO)
    }

    /// Crash the underlying engine (client-buffered entries survive in
    /// the client and commit with a later flush).
    fn crash_and_recover(&self) -> Nanos {
        self.db.crash_and_recover()
    }

    fn engine(&self) -> Arc<PrismDb> {
        Arc::clone(&self.db)
    }
}

impl KvStore for TxnKv {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.pending.put(key, value);
        if self.pending.len() >= TXN_CHUNK {
            return self.flush();
        }
        Ok(Nanos::ZERO)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.pending.delete(key.clone());
        if self.pending.len() >= TXN_CHUNK {
            return self.flush();
        }
        Ok(Nanos::ZERO)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        self.flush()?;
        ConcurrentKvStore::get(&*self.db, key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        self.flush()?;
        ConcurrentKvStore::scan(&*self.db, start, count)
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(&*self.db)
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(&*self.db)
    }

    fn engine_name(&self) -> &str {
        "prismdb-txn"
    }
}

/// The async column: a client of the submission front-end that fires
/// writes without waiting (the tickets pile up client-side, so the
/// engine-side queues really hold in-flight work) and waits all pending
/// acks before any read or scan, so every comparison against the oracle
/// is exact.
struct FrontendKv {
    frontend: Frontend<PrismDb>,
    pending: Vec<WriteTicket>,
}

impl FrontendKv {
    fn new(db: PrismDb) -> Self {
        FrontendKv {
            frontend: Frontend::start(
                Arc::new(db),
                FrontendOptions {
                    executors: 2,
                    ..FrontendOptions::default()
                },
            )
            .expect("valid frontend options"),
            pending: Vec::new(),
        }
    }

    /// Wait every outstanding write ack.
    fn flush(&mut self) {
        for ticket in self.pending.drain(..) {
            ticket.wait().expect("async write must ack");
        }
    }

    /// Crash the engine underneath the (still running) front-end.
    /// Deliberately does NOT flush: submissions still queued are in
    /// flight across the crash and drain through the executors afterwards.
    fn crash_and_recover(&self) -> Nanos {
        self.frontend.engine().crash_and_recover()
    }

    fn engine(&self) -> Arc<PrismDb> {
        Arc::clone(self.frontend.engine())
    }

    fn frontend_stats(&self) -> prismdb::types::FrontendStats {
        self.frontend.stats()
    }
}

impl KvStore for FrontendKv {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.pending.push(self.frontend.submit_put(key, value)?);
        Ok(Nanos::ZERO)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.pending.push(self.frontend.submit_delete(key)?);
        Ok(Nanos::ZERO)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        self.flush();
        self.frontend.submit_get(key)?.wait()
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        self.flush();
        self.frontend.submit_scan(start, count)?.wait()
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(&**self.frontend.engine())
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(&**self.frontend.engine())
    }

    fn engine_name(&self) -> &str {
        "prismdb-async"
    }
}

/// How many unacknowledged frames the wire column pipelines before
/// waiting. Kept below the front-end's per-partition queue capacity so a
/// back-pressure refusal (which would reorder a retried write behind a
/// later same-key write) can never occur in this single-client column —
/// the client is configured to fail loudly if one does.
const NET_WINDOW: usize = 16;

/// The wire column: every operation travels the full network path —
/// encoded, framed, carried over the in-process duplex transport, decoded
/// by the server, executed through the submission front-end, and the
/// response decoded back. Writes pipeline up to [`NET_WINDOW`] frames;
/// reads and scans wait the window first so read-your-writes holds.
struct NetKv {
    db: Arc<PrismDb>,
    server: Option<NetServer<PrismDb>>,
    client: NetClient,
    /// Sent but not yet acknowledged frames, in send order, kept so a
    /// server teardown can replay exactly the ones that never landed.
    in_flight: Vec<(u64, Request)>,
    /// Wire frames received across all server incarnations.
    total_frames: u64,
    /// Server restarts performed (the mid-run teardown plus the final one).
    restarts: u64,
}

impl NetKv {
    fn server_options() -> ServerOptions {
        ServerOptions {
            frontend: FrontendOptions {
                executors: 2,
                ..FrontendOptions::default()
            },
            ..ServerOptions::default()
        }
    }

    fn new(db: PrismDb) -> Self {
        let db = Arc::new(db);
        let (listener, connector) = duplex_listener();
        let server = NetServer::start(Arc::clone(&db), Arc::new(listener), Self::server_options())
            .expect("valid server options");
        let mut client = NetClient::new(connector.connect().expect("dial"));
        // A back-pressure refusal retried out of order would let a later
        // same-key write lose to the retry; the window makes refusals
        // impossible, and this makes any bug there a loud failure.
        client.max_retries = 0;
        NetKv {
            db,
            server: Some(server),
            client,
            in_flight: Vec::new(),
            total_frames: 0,
            restarts: 0,
        }
    }

    /// Wait every pipelined frame; all must have landed.
    fn flush(&mut self) {
        for (id, request) in self.in_flight.drain(..) {
            let response = self.client.wait(id).expect("wire response");
            assert_eq!(
                response.status,
                Status::Ok,
                "pipelined {request:?} refused outside a teardown: {}",
                response.message
            );
        }
    }

    fn send(&mut self, request: Request) {
        let id = self.client.send(&request).expect("wire send");
        self.in_flight.push((id, request));
        if self.in_flight.len() >= NET_WINDOW {
            self.flush();
        }
    }

    fn engine(&self) -> Arc<PrismDb> {
        Arc::clone(&self.db)
    }

    /// Tear the whole server down mid-pipeline, crash-recover the engine,
    /// start a fresh server, reconnect, and replay exactly the in-flight
    /// frames that never landed.
    ///
    /// The shutdown drain guarantees every *submitted* request's response
    /// is already buffered in the old connection, so each in-flight frame
    /// resolves deterministically: answered `Ok` means it landed and must
    /// not be replayed; answered with a refusal, or never answered (the
    /// reader EOF'd before the frame was decoded), means it did not land
    /// and must be. Replays preserve the original send order, which
    /// preserves same-key write order.
    fn crash_and_restart(&mut self) {
        let mut server = self.server.take().expect("server running");
        server.shutdown();
        self.total_frames += server.stats().frames_received;
        assert_eq!(server.stats().protocol_errors, 0);
        assert_eq!(server.outstanding_tickets(), 0);
        let mut unlanded: Vec<Request> = Vec::new();
        for (id, request) in self.in_flight.drain(..) {
            match self.client.wait(id) {
                Ok(response) if response.status == Status::Ok => {}
                Ok(_refused) => unlanded.push(request),
                Err(PrismError::Disconnected) => unlanded.push(request),
                Err(err) => panic!("teardown resolution failed: {err}"),
            }
        }
        drop(server);
        self.db.crash_and_recover();
        let (listener, connector) = duplex_listener();
        self.server = Some(
            NetServer::start(
                Arc::clone(&self.db),
                Arc::new(listener),
                Self::server_options(),
            )
            .expect("valid server options"),
        );
        self.client = NetClient::new(connector.connect().expect("re-dial"));
        self.client.max_retries = 0;
        self.restarts += 1;
        for request in unlanded {
            self.send(request);
        }
        self.flush();
    }

    /// End-of-run accounting: the column really travelled the wire and
    /// stranded nothing.
    fn assert_clean(&mut self, seed: u64) {
        self.flush();
        let server = self.server.as_ref().expect("server running");
        let stats = server.stats();
        assert_eq!(
            stats.protocol_errors, 0,
            "the wire column hit protocol errors (seed {seed})"
        );
        assert_eq!(
            server.outstanding_tickets(),
            0,
            "the wire column stranded tickets (seed {seed})"
        );
        let frontend = server.frontend_stats();
        assert_eq!(
            frontend.submitted, frontend.completed,
            "wire submissions were stranded (seed {seed})"
        );
        assert!(
            self.total_frames + stats.frames_received > OPS_PER_SEED as u64,
            "the wire column barely used the wire (seed {seed})"
        );
        assert!(
            self.restarts >= 1,
            "the wire column never survived a server teardown (seed {seed})"
        );
    }
}

impl KvStore for NetKv {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.send(Request::Put { key, value });
        Ok(Nanos::ZERO)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.send(Request::Delete { key: key.clone() });
        Ok(Nanos::ZERO)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        self.flush();
        let value = self.client.get(key.clone())?;
        Ok(Lookup {
            value,
            latency: Nanos::ZERO,
            source: prismdb::types::ReadSource::NotFound,
        })
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        self.flush();
        let entries = self.client.scan(start.clone(), count as u32)?;
        Ok(ScanResult {
            entries,
            latency: Nanos::ZERO,
        })
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(&*self.db)
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(&*self.db)
    }

    fn engine_name(&self) -> &str {
        "prismdb-net"
    }
}

/// One random operation over the bounded key space. Weights favour writes
/// and deletes so state churns; scans exercise the cross-partition merge.
fn random_op(rng: &mut StdRng) -> Op {
    let draw = rng.gen_range(0u32..100);
    let key = Key::from_id(rng.gen_range(0u64..KEY_SPACE));
    match draw {
        0..=29 => {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            Op::Update(key, value)
        }
        30..=44 => {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            Op::Insert(key, value)
        }
        45..=59 => Op::Delete(key),
        60..=69 => {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            Op::ReadModifyWrite(key, value)
        }
        70..=79 => {
            let count = rng_scan_len(rng);
            Op::Scan(key, count)
        }
        _ => Op::Read(key),
    }
}

fn rng_len(rng: &mut StdRng) -> usize {
    rng.gen_range(1usize..=1_024)
}

fn rng_scan_len(rng: &mut StdRng) -> usize {
    rng.gen_range(1usize..=48)
}

/// Apply `op` to one engine; read-type results are returned so the caller
/// can compare them across engines.
fn apply(engine: &mut dyn KvStore, op: &Op) -> (Option<Value>, Option<Vec<(Key, Value)>>) {
    match op {
        Op::Read(key) => (engine.get(key).expect("get must not fail").value, None),
        Op::Update(key, value) | Op::Insert(key, value) => {
            engine
                .put(key.clone(), value.clone())
                .expect("put must not fail");
            (None, None)
        }
        Op::ReadModifyWrite(key, value) => {
            let read = engine.get(key).expect("rmw read must not fail").value;
            engine
                .put(key.clone(), value.clone())
                .expect("rmw write must not fail");
            (read, None)
        }
        Op::Scan(key, count) => (
            None,
            Some(
                engine
                    .scan(key, *count)
                    .expect("scan must not fail")
                    .entries,
            ),
        ),
        Op::Delete(key) => {
            engine.delete(key).expect("delete must not fail");
            (None, None)
        }
    }
}

/// Compare the full visible state of every engine against the oracle:
/// every key in the universe point-reads identically, and scans from a few
/// representative starts return identical entry lists.
fn assert_state_matches(
    engines: &mut [(&str, &mut dyn KvStore)],
    oracle: &mut MemStore,
    seed: u64,
    ops_done: usize,
) {
    for id in 0..KEY_SPACE {
        let key = Key::from_id(id);
        let expected = oracle.get(&key).expect("oracle get").value;
        for (name, engine) in engines.iter_mut() {
            let got = engine.get(&key).expect("engine get").value;
            assert_eq!(
                got, expected,
                "{name} diverged from oracle on key {id} (seed {seed}, after {ops_done} ops)"
            );
        }
    }
    for start in [0, KEY_SPACE / 3, KEY_SPACE / 2, KEY_SPACE - 40] {
        let key = Key::from_id(start);
        let expected = oracle.scan(&key, 64).expect("oracle scan").entries;
        for (name, engine) in engines.iter_mut() {
            let got = engine.scan(&key, 64).expect("engine scan").entries;
            assert_eq!(
                got, expected,
                "{name} scan from {start} diverged (seed {seed}, after {ops_done} ops)"
            );
        }
    }
}

/// Generate a burst of 64 writes for the racing mid-batch crash: applied
/// per-op to the oracle and to every non-batched engine, and returned as
/// one multi-partition [`WriteBatch`] for the batched engine.
fn crash_burst(rng: &mut StdRng, engines: &mut [(&str, &mut dyn KvStore)]) -> WriteBatch {
    let mut batch = WriteBatch::with_capacity(64);
    for _ in 0..64 {
        let key = Key::from_id(rng.gen_range(0u64..KEY_SPACE));
        if rng.gen_range(0u32..100) < 80 {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            for (_, engine) in engines.iter_mut() {
                engine.put(key.clone(), value.clone()).expect("burst put");
            }
            batch.put(key, value);
        } else {
            for (_, engine) in engines.iter_mut() {
                engine.delete(&key).expect("burst delete");
            }
            batch.delete(key);
        }
    }
    batch
}

fn run_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prism_hash = prism_engine(Partitioning::Hash);
    let mut prism_range = prism_engine(Partitioning::Range);
    // The background-compaction engine sees the *identical* op stream:
    // demotions/promotions race the foreground on real worker threads, yet
    // visible state must stay equal to the inline engines and the oracle.
    let mut prism_bg = prism_engine_with_workers(Partitioning::Hash, 2);
    // The batched column: same op stream, writes chunked into batches.
    let mut prism_batched = BatchingKv::new(prism_engine(Partitioning::Hash));
    // The async column: same op stream submitted through the front-end's
    // per-partition queues, acks awaited before every read.
    let mut prism_async = FrontendKv::new(prism_engine(Partitioning::Hash));
    // The transactional column: same op stream committed through
    // optimistic multi-key transactions.
    let mut prism_txn = TxnKv::new(prism_engine(Partitioning::Hash));
    // The wire column: same op stream through the network serving layer
    // end to end (duplex-pipe transport, real server and client).
    let mut prism_net = NetKv::new(prism_engine(Partitioning::Hash));
    let mut lsm = lsm_engine();
    let mut oracle = MemStore::default();

    for ops_done in 0..OPS_PER_SEED {
        let op = random_op(&mut rng);
        let (oracle_read, oracle_scan) = apply(&mut oracle, &op);
        let mut engines: [(&str, &mut dyn KvStore); 8] = [
            ("prismdb-hash", &mut prism_hash),
            ("prismdb-range", &mut prism_range),
            ("prismdb-bg", &mut prism_bg),
            ("prismdb-batched", &mut prism_batched),
            ("prismdb-async", &mut prism_async),
            ("prismdb-txn", &mut prism_txn),
            ("prismdb-net", &mut prism_net),
            ("rocksdb-het", &mut lsm),
        ];
        for (name, engine) in engines.iter_mut() {
            let (read, scan) = apply(*engine, &op);
            assert_eq!(
                read, oracle_read,
                "{name} read result diverged on {op:?} (seed {seed}, op {ops_done})"
            );
            assert_eq!(
                scan, oracle_scan,
                "{name} scan result diverged on {op:?} (seed {seed}, op {ops_done})"
            );
        }
        if (ops_done + 1) % BATCH == 0 {
            assert_state_matches(&mut engines, &mut oracle, seed, ops_done + 1);
        }
        if (ops_done + 1) == OPS_PER_SEED / 2 {
            // Crash the background engine mid-run: with constant pressure
            // the job queue / workers are likely mid-job, so this
            // exercises recovery with compactions in flight (stale-epoch
            // jobs must be discarded, not half-applied).
            prism_bg.crash_and_recover();
            // The fault injection proper: crash the batched engine *while
            // a 64-entry multi-partition batch is applying* on this
            // thread. The client buffer is flushed first — the preceding
            // state check's reads just emptied it anyway, and a pending
            // entry flushed *after* the burst would replay a stale value
            // over a burst key. Each partition's sub-batch applies under
            // a continuous write-lock hold that recovery serialises with,
            // so whatever interleaving the race produces, recovery lands
            // on whole sub-batches — and since `apply_batch` finishes
            // after the crash, the final state must equal the oracle's
            // (the state checks above and below prove it).
            prism_batched.flush().expect("pre-burst flush");
            // The async column takes the burst *through its queues*: the
            // submissions below are in flight (unacked) while the crash
            // races the executors on other threads.
            let mut burst_targets: [(&str, &mut dyn KvStore); 8] = [
                ("oracle", &mut oracle),
                ("prismdb-hash", &mut prism_hash),
                ("prismdb-range", &mut prism_range),
                ("prismdb-bg", &mut prism_bg),
                ("prismdb-async", &mut prism_async),
                ("prismdb-txn", &mut prism_txn),
                ("prismdb-net", &mut prism_net),
                ("rocksdb-het", &mut lsm),
            ];
            let burst = crash_burst(&mut rng, &mut burst_targets);
            let db = prism_batched.engine();
            let async_db = prism_async.engine();
            let net_db = prism_net.engine();
            std::thread::scope(|scope| {
                let crasher = Arc::clone(&db);
                scope.spawn(move || {
                    crasher.crash_and_recover();
                });
                // Crash the async engine while its executors are still
                // draining the burst submissions: acked ops must survive,
                // queued ops drain afterwards, so the column reconverges.
                let async_crasher = Arc::clone(&async_db);
                scope.spawn(move || {
                    async_crasher.crash_and_recover();
                });
                // Crash the wire column's engine underneath its *live*
                // server, with the burst's tail frames still unacked in
                // its pipeline (the window leaves up to NET_WINDOW-1 in
                // flight): the server keeps serving across the recovery
                // and the column reconverges.
                let net_crasher = Arc::clone(&net_db);
                scope.spawn(move || {
                    net_crasher.crash_and_recover();
                });
                db.apply_batch(burst).expect("mid-crash batch");
            });
        }
        if (ops_done + 1) == OPS_PER_SEED / 2 + 37 {
            // Off the state-check boundary, so the client buffer most
            // likely holds un-submitted entries: crash the batched engine
            // with writes still buffered client-side. The buffer survives
            // in the client and flushes later, so the column must
            // reconverge to the oracle. The async engine crashes with
            // unacked tickets outstanding for the same reason.
            prism_batched.crash_and_recover();
            prism_async.crash_and_recover();
            // The wire column's hardest fault: tear down the WHOLE
            // server — off the state-check boundary, so frames are most
            // likely still pipelined — crash-recover the engine, restart
            // the server, reconnect, and replay exactly the frames the
            // teardown refused or dropped.
            prism_net.crash_and_restart();
        }
        if (ops_done + 1) == OPS_PER_SEED / 2 + 101 {
            // The transactional column's fault injection: a
            // multi-partition commit is left *torn* — intent persisted,
            // only the first partition group installed, never sealed —
            // exactly the window a crash between install steps leaves
            // behind. The oracle never sees this batch, so recovery must
            // make it vanish atomically; every transaction committed
            // before it must survive. The state checks after this point
            // prove both.
            prism_txn.flush().expect("pre-torn flush");
            let db = prism_txn.engine();
            let mut torn = WriteBatch::new();
            let mut shards_seen = vec![false; ConcurrentKvStore::shard_count(&*db)];
            let mut distinct = 0;
            while distinct < 2 || torn.len() < 6 {
                let id = rng.gen_range(0u64..KEY_SPACE);
                let shard = ConcurrentKvStore::shard_of(&*db, &Key::from_id(id));
                if !shards_seen[shard] {
                    shards_seen[shard] = true;
                    distinct += 1;
                }
                torn.put(Key::from_id(id), Value::filled(rng_len(&mut rng), 0xAA));
            }
            db.apply_batch_leaving_torn(torn, 1)
                .expect("torn batch install");
            assert_eq!(
                db.torn_commit_records(),
                1,
                "the torn commit must be visible in the log (seed {seed})"
            );
            db.crash_and_recover();
            assert_eq!(
                db.torn_commit_records(),
                0,
                "recovery must resolve the torn commit (seed {seed})"
            );
        }
    }

    // Final sweep, including after a crash of every PrismDB instance:
    // recovery must reproduce exactly the oracle's state.
    prism_hash.crash_and_recover();
    prism_range.crash_and_recover();
    prism_bg.crash_and_recover();
    prism_batched.crash_and_recover();
    prism_async.flush();
    prism_async.crash_and_recover();
    prism_txn.flush().expect("final txn flush");
    prism_txn.crash_and_recover();
    prism_net.crash_and_restart();
    let mut engines: [(&str, &mut dyn KvStore); 8] = [
        ("prismdb-hash (recovered)", &mut prism_hash),
        ("prismdb-range (recovered)", &mut prism_range),
        ("prismdb-bg (recovered)", &mut prism_bg),
        ("prismdb-batched (recovered)", &mut prism_batched),
        ("prismdb-async (recovered)", &mut prism_async),
        ("prismdb-txn (recovered)", &mut prism_txn),
        ("prismdb-net (recovered)", &mut prism_net),
        ("rocksdb-het", &mut lsm),
    ];
    assert_state_matches(&mut engines, &mut oracle, seed, OPS_PER_SEED);

    // The batched column must really have exercised the batched path.
    let batched_stats = KvStore::stats(&prism_batched);
    assert!(
        batched_stats.batch_groups > 0,
        "the batched column never installed a group (seed {seed})"
    );
    assert!(batched_stats.batch_entries >= batched_stats.batch_groups);

    // The async column must really have gone through the queues: every
    // submission acked, groups installed, no stranded requests.
    let frontend_stats = prism_async.frontend_stats();
    assert!(
        frontend_stats.coalesced_groups > 0,
        "the async column never installed a coalesced group (seed {seed})"
    );
    assert_eq!(
        frontend_stats.submitted, frontend_stats.completed,
        "async submissions were stranded (seed {seed})"
    );
    assert_eq!(frontend_stats.queue_depth, 0);

    // The transactional column must really have committed transactions,
    // pinned snapshots and rolled back its torn commit.
    let txn_stats = KvStore::stats(&prism_txn).txn;
    assert!(
        txn_stats.txn_commits > 0,
        "the txn column never committed a transaction (seed {seed})"
    );
    assert!(
        txn_stats.snapshots > 0,
        "the txn column never pinned a snapshot (seed {seed})"
    );
    assert!(
        txn_stats.commit_rolled_back >= 1,
        "the torn commit was never rolled back (seed {seed})"
    );

    // The wire column must really have travelled the wire, survived its
    // server teardown, and stranded nothing.
    prism_net.assert_clean(seed);
}

// ---------------------------------------------------------------------
// The ninth column: the same op stream under a seeded low-rate storage
// fault plan (injected I/O errors, bit flips, torn writes, latency
// spikes on both tiers). Faults make exact oracle equality impossible —
// a failed write leaves the engine in one of two legitimate states, a
// corrupt object must *error*, not compare — so this column carries its
// own uncertainty-aware oracle and a different contract:
//
//   1. The engine never returns wrong data. Every successful read or
//      scan entry must equal a state some legal fault-free/faulted
//      execution could hold: the committed value, or — for a key whose
//      write failed ambiguously — one of its acceptable states. Errors
//      are allowed; silent corruption is not.
//   2. A key a scan omits must be provably corrupt (probe reads error
//      with `Corruption`) or still correct under a point read (the scan
//      skipped a corrupt storage copy the read served from DRAM).
//   3. Crash-recovery under faults quarantines rather than resurrects,
//      and after quarantined keys are rewritten (healed) and scrub
//      passes come back clean, the engine converges to the oracle
//      EXACTLY — point reads and scans.
// ---------------------------------------------------------------------

/// The fault column's oracle: definite state plus, for keys whose write
/// failed ambiguously (an injected I/O error can strike before or after
/// the slab install, e.g. in an inline compaction the write triggered),
/// the set of states the engine may legitimately hold. A successful
/// read collapses the ambiguity to the observed state.
struct FaultOracle {
    /// Definite state: key id -> value (absent = deleted/never written).
    committed: std::collections::BTreeMap<u64, Value>,
    /// Keys in ambiguous state -> every value (or absence) the engine
    /// may legitimately report for them.
    suspects: std::collections::HashMap<u64, Vec<Option<Value>>>,
}

impl FaultOracle {
    fn new() -> Self {
        FaultOracle {
            committed: std::collections::BTreeMap::new(),
            suspects: std::collections::HashMap::new(),
        }
    }

    /// A write landed: the state is definite again.
    fn write_ok(&mut self, id: u64, value: Option<Value>) {
        match value {
            Some(v) => {
                self.committed.insert(id, v);
            }
            None => {
                self.committed.remove(&id);
            }
        }
        self.suspects.remove(&id);
    }

    /// A write failed ambiguously: the engine now holds any previously
    /// acceptable state, or the attempted one.
    fn write_ambiguous(&mut self, id: u64, attempted: Option<Value>) {
        let states = self.suspects.entry(id).or_default();
        if states.is_empty() {
            states.push(self.committed.get(&id).cloned());
        }
        if !states.contains(&attempted) {
            states.push(attempted);
        }
    }

    /// A read succeeded: the observed state must be acceptable, and it
    /// collapses any ambiguity (single-threaded column — what was read
    /// is what is stored).
    fn observe(&mut self, id: u64, observed: &Option<Value>, seed: u64, at: &str) {
        if let Some(states) = self.suspects.remove(&id) {
            assert!(
                states.contains(observed),
                "fault column read a value outside the acceptable set for \
                 key {id} ({at}, seed {seed})"
            );
            match observed {
                Some(v) => {
                    self.committed.insert(id, v.clone());
                }
                None => {
                    self.committed.remove(&id);
                }
            }
        } else {
            let expected = self.committed.get(&id).cloned();
            if observed != &expected {
                let diff = match (observed, &expected) {
                    (Some(o), Some(e)) if o.len() == e.len() => format!(
                        "{} differing bytes of {} (obs[0]={:#04x} exp[0]={:#04x})",
                        o.as_bytes()
                            .iter()
                            .zip(e.as_bytes())
                            .filter(|(a, b)| a != b)
                            .count(),
                        o.len(),
                        o.as_bytes()[0],
                        e.as_bytes()[0],
                    ),
                    (o, e) => format!(
                        "lengths {:?} vs {:?}",
                        o.as_ref().map(Value::len),
                        e.as_ref().map(Value::len)
                    ),
                };
                panic!("fault column served WRONG DATA for key {id} ({at}, seed {seed}): {diff}");
            }
        }
    }

    fn is_suspect(&self, id: u64) -> bool {
        self.suspects.contains_key(&id)
    }

    /// The state to (re)write when healing a quarantined key: the last
    /// attempted value for suspects, the committed one otherwise.
    fn heal_target(&self, id: u64) -> Option<Value> {
        match self.suspects.get(&id) {
            Some(states) => states.last().cloned().expect("suspect sets are non-empty"),
            None => self.committed.get(&id).cloned(),
        }
    }
}

/// Point read with retry across transient injected I/O errors.
/// Corruption is returned immediately (it is persistent until healed).
fn faulted_get(db: &PrismDb, key: &Key) -> Result<Option<Value>> {
    let mut last = PrismError::Io("unreachable: no read attempted".into());
    for _ in 0..64 {
        match db.get(key) {
            Ok(lookup) => return Ok(lookup.value),
            Err(err @ PrismError::Corruption(_)) => return Err(err),
            Err(err @ PrismError::Io(_)) => last = err,
            Err(other) => panic!("fault column get failed with {other}"),
        }
    }
    Err(last)
}

/// Scan with retry across transient injected I/O errors.
fn faulted_scan(db: &PrismDb, start: &Key, count: usize) -> Vec<(Key, Value)> {
    let mut last = String::new();
    for _ in 0..64 {
        match db.scan(start, count) {
            Ok(result) => return result.entries,
            Err(err) => last = err.to_string(),
        }
    }
    panic!("fault column scan failed persistently: {last}");
}

/// Apply one write (put or delete) to the engine and record the outcome
/// in the oracle. Degraded refusals change nothing (the gate runs before
/// any mutation); injected I/O errors leave the key ambiguous.
fn faulted_write(
    db: &PrismDb,
    oracle: &mut FaultOracle,
    key: Key,
    value: Option<Value>,
    refusals: &mut u64,
    write_faults: &mut u64,
) {
    let id = key.id();
    let result = match &value {
        Some(v) => db.put(key, v.clone()),
        None => db.delete(&key),
    };
    match result {
        Ok(_) => oracle.write_ok(id, value),
        Err(PrismError::Degraded { .. }) => *refusals += 1,
        Err(PrismError::Io(_)) => {
            *write_faults += 1;
            oracle.write_ambiguous(id, value);
        }
        Err(other) => panic!("fault column write failed with {other}"),
    }
}

/// Check one scan against the oracle: every returned entry must be an
/// acceptable state, and every committed key the scan silently omitted
/// must be provably corrupt (or still correct under a point read, which
/// can serve from DRAM a copy whose storage version the scan skipped).
fn check_faulted_scan(
    db: &PrismDb,
    oracle: &mut FaultOracle,
    start: &Key,
    count: usize,
    seed: u64,
    ops_done: usize,
) {
    let entries = faulted_scan(db, start, count);
    for (key, value) in &entries {
        oracle.observe(key.id(), &Some(value.clone()), seed, "scan entry");
    }
    let returned: std::collections::HashSet<u64> = entries.iter().map(|(k, _)| k.id()).collect();
    let window_end = if entries.len() < count {
        u64::MAX
    } else {
        entries.last().map(|(k, _)| k.id()).unwrap_or(u64::MAX)
    };
    let missing: Vec<u64> = oracle
        .committed
        .range(start.id()..=window_end)
        .map(|(id, _)| *id)
        .filter(|id| !returned.contains(id) && !oracle.is_suspect(*id))
        .collect();
    for id in missing {
        match faulted_get(db, &Key::from_id(id)) {
            // The scan skipped a corrupt storage copy; the point read
            // served a verified one (DRAM holds the last committed
            // value). Still not wrong data.
            Ok(observed) => oracle.observe(id, &observed, seed, "scan-omission probe"),
            Err(PrismError::Corruption(_)) => {} // provably corrupt: a legal omission
            Err(err) => panic!(
                "scan-omission probe for key {id} failed with {err} \
                 (seed {seed}, op {ops_done})"
            ),
        }
    }
}

/// Scrub every partition until a full pass finds nothing corrupt and all
/// partitions are healthy again. Returns the number of passes.
fn scrub_until_clean(db: &PrismDb, seed: u64) -> u32 {
    for pass in 1..=32u32 {
        let report = db.scrub();
        let all_healthy = (0..ConcurrentKvStore::shard_count(db))
            .all(|p| db.partition_health(p) == PartitionHealth::Healthy);
        if report.corrupt_found == 0 && all_healthy {
            return pass;
        }
    }
    panic!("scrub never came back clean (seed {seed})");
}

fn run_fault_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = Arc::new(FaultPlan::new(seed ^ 0xFA17).with_rates(TierFaultRates {
        io_error: 0.0015,
        bit_flip: 0.004,
        torn_write: 0.0015,
        latency_spike: 0.005,
        spike: Nanos::from_micros(400),
    }));
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = 3;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    options.nvm_capacity_bytes = 256 * 1024;
    options.nvm_profile.capacity_bytes = 256 * 1024;
    options.fault_plan = Some(Arc::clone(&plan));
    // Hair-trigger degraded mode so the run exercises the full
    // quarantine -> read-only -> scrub -> re-arm lifecycle.
    options.corruption_quarantine_threshold = 3;
    options.scrub_io_budget_bytes = 64 * 1024;
    let db = PrismDb::open(options).expect("valid options");
    let mut oracle = FaultOracle::new();
    let mut refusals = 0u64;
    let mut write_faults = 0u64;
    let mut corruption_reads = 0u64;

    for ops_done in 0..OPS_PER_SEED {
        match random_op(&mut rng) {
            Op::Update(key, value) | Op::Insert(key, value) => faulted_write(
                &db,
                &mut oracle,
                key,
                Some(value),
                &mut refusals,
                &mut write_faults,
            ),
            Op::Delete(key) => faulted_write(
                &db,
                &mut oracle,
                key,
                None,
                &mut refusals,
                &mut write_faults,
            ),
            Op::Read(key) => match faulted_get(&db, &key) {
                Ok(observed) => oracle.observe(key.id(), &observed, seed, "point read"),
                Err(PrismError::Corruption(_)) => corruption_reads += 1,
                Err(PrismError::Io(_)) => {} // persistently unlucky: still not wrong data
                Err(err) => panic!("fault column read failed with {err}"),
            },
            Op::ReadModifyWrite(key, value) => {
                match faulted_get(&db, &key) {
                    Ok(observed) => oracle.observe(key.id(), &observed, seed, "rmw read"),
                    Err(PrismError::Corruption(_)) => corruption_reads += 1,
                    Err(PrismError::Io(_)) => {}
                    Err(err) => panic!("fault column rmw read failed with {err}"),
                }
                faulted_write(
                    &db,
                    &mut oracle,
                    key,
                    Some(value),
                    &mut refusals,
                    &mut write_faults,
                );
            }
            Op::Scan(key, count) => {
                check_faulted_scan(&db, &mut oracle, &key, count, seed, ops_done);
            }
        }
        if (ops_done + 1) % BATCH == 0 {
            // Periodic scrub: repairs what has a surviving copy,
            // quarantines what does not, re-arms degraded partitions.
            db.scrub();
        }
        if (ops_done + 1) == OPS_PER_SEED / 2 {
            // Crash mid-run with corrupt slots likely present: recovery
            // must quarantine them, never resurrect or serve them.
            db.crash_and_recover();
        }
    }

    // Final convergence. Crash once more, then heal: every key must read
    // back an acceptable state or a provable Corruption; quarantined
    // keys are rewritten (a fresh write supersedes the corrupt version).
    // Healing writes roll new faults, so iterate to a fixed point.
    db.crash_and_recover();
    let mut healed = false;
    for _round in 0..32 {
        scrub_until_clean(&db, seed);
        let mut dirty = false;
        for id in 0..KEY_SPACE {
            let key = Key::from_id(id);
            match faulted_get(&db, &key) {
                Ok(observed) => oracle.observe(id, &observed, seed, "final sweep"),
                Err(_) => {
                    dirty = true;
                    let target = oracle.heal_target(id);
                    faulted_write(
                        &db,
                        &mut oracle,
                        key,
                        target,
                        &mut refusals,
                        &mut write_faults,
                    );
                }
            }
        }
        if !dirty {
            // The sweep itself reads every key, and a read can trip a
            // read-triggered compaction whose demotion writes roll fresh
            // faults — silently corrupting a newly demoted copy while
            // the DRAM cache keeps serving the clean value, so the point
            // reads above would never notice. Converged means *storage*
            // is clean too: one more full scrub must find nothing (and
            // repairs what it does find for the next round).
            if db.scrub().corrupt_found == 0 {
                healed = true;
                break;
            }
        }
    }
    assert!(healed, "healing never reached a fixed point (seed {seed})");
    assert!(
        oracle.suspects.is_empty(),
        "the full healed sweep must collapse every ambiguous key (seed {seed})"
    );

    // Converged: the engine now equals the oracle EXACTLY — point reads
    // did above (final sweep), scans here.
    for start in [0, KEY_SPACE / 3, KEY_SPACE / 2, KEY_SPACE - 40] {
        let entries = faulted_scan(&db, &Key::from_id(start), 64);
        let expected: Vec<(Key, Value)> = oracle
            .committed
            .range(start..)
            .take(64)
            .map(|(id, v)| (Key::from_id(*id), v.clone()))
            .collect();
        assert_eq!(
            entries, expected,
            "healed scan from {start} diverged (seed {seed})"
        );
    }

    // The column must genuinely have been under fire, and every
    // corruption that reached a read must have been caught by a
    // checksum (that is what made the reads error instead of lie).
    let snap = plan.snapshot();
    assert!(
        snap.bit_flips + snap.torn_writes > 0,
        "the fault plan never injected corruption (seed {seed})"
    );
    assert!(
        snap.io_errors > 0,
        "the fault plan never injected an I/O error (seed {seed})"
    );
    let stats = ConcurrentKvStore::stats(&db);
    assert!(
        stats.integrity.checksum_failures > 0,
        "no injected corruption was ever caught by a checksum (seed {seed})"
    );
    assert!(
        stats.integrity.scrub_passes > 0 && stats.integrity.scrub_clean_passes > 0,
        "the scrubber never completed a pass (seed {seed})"
    );
    // Quarantines happened and were healed: nothing is quarantined now.
    assert!(
        stats.integrity.quarantined_objects > 0,
        "corruption never led to a quarantine (seed {seed})"
    );
    assert_eq!(
        db.quarantined_object_count(),
        0,
        "healing must clear every quarantine sentinel (seed {seed})"
    );
    let _ = (refusals, write_faults, corruption_reads);
}

#[test]
fn faulted_engine_never_serves_wrong_data_seed_1() {
    run_fault_seed(0xFA17_0001);
}

#[test]
fn faulted_engine_never_serves_wrong_data_seed_2() {
    run_fault_seed(0xFA17_0002);
}

#[test]
fn faulted_engine_never_serves_wrong_data_seed_3() {
    run_fault_seed(0xFA17_0003);
}

#[test]
fn engines_match_oracle_seed_1() {
    run_seed(0xD1FF_0001);
}

#[test]
fn engines_match_oracle_seed_2() {
    run_seed(0xD1FF_0002);
}

#[test]
fn engines_match_oracle_seed_3() {
    run_seed(0xD1FF_0003);
}
