//! Differential (model-based) testing: PrismDB (hash- and range-
//! partitioned, with inline and background compaction), the multi-tier
//! LSM baseline and the `MemStore` oracle are driven with the same seeded
//! random mixed operation stream, and their visible state (point lookups
//! and range scans) must be identical after every batch. Any divergence —
//! tombstones resurfacing, stale flash versions winning a merge,
//! cross-partition scans dropping or duplicating keys, a background
//! compaction job clobbering a foreground write it raced with — fails
//! deterministically with the seed printed in the assertion.
//!
//! The background-compaction engine is crashed *mid-run* (while its job
//! queue and workers are busy): recovery must land on exactly the
//! oracle's state, proving an interrupted plan/execute/install pipeline
//! recovers to either the old or the new state, never a half-compacted
//! one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prismdb::db::{Options, Partitioning, PrismDb};
use prismdb::lsm::{LsmConfig, LsmTree};
use prismdb::types::{Key, KvStore, MemStore, Op, Value};

/// Key-id universe. Small enough that keys are updated/deleted/re-inserted
/// many times per run, which is what shakes out version/tombstone bugs.
const KEY_SPACE: u64 = 1_500;
/// Operations per seed.
const OPS_PER_SEED: usize = 10_000;
/// Visible state is compared after every batch this size (and once at the
/// end).
const BATCH: usize = 1_000;

fn prism_engine(partitioning: Partitioning) -> PrismDb {
    prism_engine_with_workers(partitioning, 0)
}

fn prism_engine_with_workers(partitioning: Partitioning, workers: usize) -> PrismDb {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = 3;
    options.partitioning = partitioning;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // Keep NVM small relative to the dataset so demotion compactions (and
    // on read-heavy phases, promotions) run constantly mid-test.
    options.nvm_capacity_bytes = 256 * 1024;
    options.nvm_profile.capacity_bytes = 256 * 1024;
    options.compaction_workers = workers;
    PrismDb::open(options).expect("valid options")
}

fn lsm_engine() -> LsmTree {
    LsmTree::open(LsmConfig::het(KEY_SPACE, 1.0 / 6.0)).expect("valid config")
}

/// One random operation over the bounded key space. Weights favour writes
/// and deletes so state churns; scans exercise the cross-partition merge.
fn random_op(rng: &mut StdRng) -> Op {
    let draw = rng.gen_range(0u32..100);
    let key = Key::from_id(rng.gen_range(0u64..KEY_SPACE));
    match draw {
        0..=29 => {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            Op::Update(key, value)
        }
        30..=44 => {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            Op::Insert(key, value)
        }
        45..=59 => Op::Delete(key),
        60..=69 => {
            let value = Value::filled(rng_len(rng), rng.gen::<u8>());
            Op::ReadModifyWrite(key, value)
        }
        70..=79 => {
            let count = rng_scan_len(rng);
            Op::Scan(key, count)
        }
        _ => Op::Read(key),
    }
}

fn rng_len(rng: &mut StdRng) -> usize {
    rng.gen_range(1usize..=1_024)
}

fn rng_scan_len(rng: &mut StdRng) -> usize {
    rng.gen_range(1usize..=48)
}

/// Apply `op` to one engine; read-type results are returned so the caller
/// can compare them across engines.
fn apply(engine: &mut dyn KvStore, op: &Op) -> (Option<Value>, Option<Vec<(Key, Value)>>) {
    match op {
        Op::Read(key) => (engine.get(key).expect("get must not fail").value, None),
        Op::Update(key, value) | Op::Insert(key, value) => {
            engine
                .put(key.clone(), value.clone())
                .expect("put must not fail");
            (None, None)
        }
        Op::ReadModifyWrite(key, value) => {
            let read = engine.get(key).expect("rmw read must not fail").value;
            engine
                .put(key.clone(), value.clone())
                .expect("rmw write must not fail");
            (read, None)
        }
        Op::Scan(key, count) => (
            None,
            Some(
                engine
                    .scan(key, *count)
                    .expect("scan must not fail")
                    .entries,
            ),
        ),
        Op::Delete(key) => {
            engine.delete(key).expect("delete must not fail");
            (None, None)
        }
    }
}

/// Compare the full visible state of every engine against the oracle:
/// every key in the universe point-reads identically, and scans from a few
/// representative starts return identical entry lists.
fn assert_state_matches(
    engines: &mut [(&str, &mut dyn KvStore)],
    oracle: &mut MemStore,
    seed: u64,
    ops_done: usize,
) {
    for id in 0..KEY_SPACE {
        let key = Key::from_id(id);
        let expected = oracle.get(&key).expect("oracle get").value;
        for (name, engine) in engines.iter_mut() {
            let got = engine.get(&key).expect("engine get").value;
            assert_eq!(
                got, expected,
                "{name} diverged from oracle on key {id} (seed {seed}, after {ops_done} ops)"
            );
        }
    }
    for start in [0, KEY_SPACE / 3, KEY_SPACE / 2, KEY_SPACE - 40] {
        let key = Key::from_id(start);
        let expected = oracle.scan(&key, 64).expect("oracle scan").entries;
        for (name, engine) in engines.iter_mut() {
            let got = engine.scan(&key, 64).expect("engine scan").entries;
            assert_eq!(
                got, expected,
                "{name} scan from {start} diverged (seed {seed}, after {ops_done} ops)"
            );
        }
    }
}

fn run_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prism_hash = prism_engine(Partitioning::Hash);
    let mut prism_range = prism_engine(Partitioning::Range);
    // The background-compaction engine sees the *identical* op stream:
    // demotions/promotions race the foreground on real worker threads, yet
    // visible state must stay equal to the inline engines and the oracle.
    let mut prism_bg = prism_engine_with_workers(Partitioning::Hash, 2);
    let mut lsm = lsm_engine();
    let mut oracle = MemStore::default();

    for ops_done in 0..OPS_PER_SEED {
        let op = random_op(&mut rng);
        let (oracle_read, oracle_scan) = apply(&mut oracle, &op);
        let mut engines: [(&str, &mut dyn KvStore); 4] = [
            ("prismdb-hash", &mut prism_hash),
            ("prismdb-range", &mut prism_range),
            ("prismdb-bg", &mut prism_bg),
            ("rocksdb-het", &mut lsm),
        ];
        for (name, engine) in engines.iter_mut() {
            let (read, scan) = apply(*engine, &op);
            assert_eq!(
                read, oracle_read,
                "{name} read result diverged on {op:?} (seed {seed}, op {ops_done})"
            );
            assert_eq!(
                scan, oracle_scan,
                "{name} scan result diverged on {op:?} (seed {seed}, op {ops_done})"
            );
        }
        if (ops_done + 1) % BATCH == 0 {
            assert_state_matches(&mut engines, &mut oracle, seed, ops_done + 1);
        }
        if (ops_done + 1) == OPS_PER_SEED / 2 {
            // Crash the background engine mid-run: with constant pressure
            // the job queue / workers are likely mid-job, so this
            // exercises recovery with compactions in flight (stale-epoch
            // jobs must be discarded, not half-applied).
            prism_bg.crash_and_recover();
        }
    }

    // Final sweep, including after a crash of every PrismDB instance:
    // recovery must reproduce exactly the oracle's state.
    prism_hash.crash_and_recover();
    prism_range.crash_and_recover();
    prism_bg.crash_and_recover();
    let mut engines: [(&str, &mut dyn KvStore); 4] = [
        ("prismdb-hash (recovered)", &mut prism_hash),
        ("prismdb-range (recovered)", &mut prism_range),
        ("prismdb-bg (recovered)", &mut prism_bg),
        ("rocksdb-het", &mut lsm),
    ];
    assert_state_matches(&mut engines, &mut oracle, seed, OPS_PER_SEED);
}

#[test]
fn engines_match_oracle_seed_1() {
    run_seed(0xD1FF_0001);
}

#[test]
fn engines_match_oracle_seed_2() {
    run_seed(0xD1FF_0002);
}

#[test]
fn engines_match_oracle_seed_3() {
    run_seed(0xD1FF_0003);
}
