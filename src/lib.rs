//! PrismDB reproduction — facade crate.
//!
//! This crate re-exports the public API of the whole workspace so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`db`] — the PrismDB engine itself ([`db::PrismDb`], [`db::Options`]),
//! * [`lsm`] — the RocksDB-like baseline family used in the paper's
//!   comparisons,
//! * [`types`] — keys, values, the [`types::KvStore`] trait and statistics,
//! * [`storage`] — the tiered-device simulator, cost and endurance models,
//! * [`workloads`] — YCSB and Twitter-trace workload generators,
//! * [`frontend`] — the async submission front-end (per-partition request
//!   queues, executor pool, group-commit coalescing) that multiplexes many
//!   logical clients onto a few OS threads,
//! * [`net`] — the network serving layer (length-prefixed wire protocol,
//!   TCP and in-process duplex transports, multiplexing server, pipelining
//!   client) that puts a wire in front of the front-end, plus the
//!   HTTP/JSON admin plane,
//! * [`obs`] — the observability subsystem (lock-free latency histograms,
//!   metrics registry, structured event trace) every layer records into,
//! * [`bench`](mod@bench) — the experiment harness that regenerates every table and
//!   figure of the paper,
//! * the individual substrates ([`nvm`], [`flash`], [`index`], [`tracker`],
//!   [`compaction`]) for users who want to build their own tiered engines.
//!
//! # Quick start
//!
//! ```
//! use prismdb::db::{Options, PrismDb};
//! use prismdb::types::{Key, KvStore, Value};
//!
//! let options = Options::builder(10_000).partitions(2).build()?;
//! let mut db = PrismDb::open(options)?;
//! db.put(Key::from_id(1), Value::filled(512, 7))?;
//! assert!(db.get(&Key::from_id(1))?.value.is_some());
//! # Ok::<(), prismdb::types::PrismError>(())
//! ```
//!
//! # Concurrency
//!
//! `PrismDb` is a concurrent sharded engine: wrap it in an [`std::sync::Arc`]
//! and drive it from many threads through
//! [`types::ConcurrentKvStore`] — each partition has its own lock, so
//! operations on different partitions run in parallel (see the README's
//! "Concurrency model" section).
//!
//! ```
//! use std::sync::Arc;
//! use prismdb::db::{Options, PrismDb};
//! use prismdb::types::{ConcurrentKvStore, Key, Value};
//!
//! let db = Arc::new(PrismDb::open(Options::scaled_default(1_000))?);
//! std::thread::scope(|scope| {
//!     for t in 0..4u64 {
//!         let db = Arc::clone(&db);
//!         scope.spawn(move || {
//!             db.put(Key::from_id(t), Value::filled(256, t as u8)).unwrap();
//!         });
//!     }
//! });
//! assert_eq!(db.scan(&Key::min(), 10)?.entries.len(), 4);
//! # Ok::<(), prismdb::types::PrismError>(())
//! ```

/// Experiment harness (re-export of `prism-bench`).
pub use prism_bench as bench;
/// Multi-tiered storage compaction (re-export of `prism-compaction`).
pub use prism_compaction as compaction;
/// The PrismDB engine (re-export of `prism-db`).
pub use prism_db as db;
/// Flash SST log substrate (re-export of `prism-flash`).
pub use prism_flash as flash;
/// Async submission front-end (re-export of `prism-frontend`).
pub use prism_frontend as frontend;
/// B-tree index substrate (re-export of `prism-index`).
pub use prism_index as index;
/// The LSM baseline family (re-export of `prism-lsm`).
pub use prism_lsm as lsm;
/// Network serving layer (re-export of `prism-net`).
pub use prism_net as net;
/// NVM slab store substrate (re-export of `prism-nvm`).
pub use prism_nvm as nvm;
/// Observability subsystem (re-export of `prism-obs`).
pub use prism_obs as obs;
/// Tiered storage simulator (re-export of `prism-storage`).
pub use prism_storage as storage;
/// Popularity tracker substrate (re-export of `prism-tracker`).
pub use prism_tracker as tracker;
/// Common types and the `KvStore` trait (re-export of `prism-types`).
pub use prism_types as types;
/// Workload generators (re-export of `prism-workloads`).
pub use prism_workloads as workloads;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Touch one item from every re-exported crate so a missing
        // re-export fails to compile.
        let _ = crate::types::Key::from_id(1);
        let _ = crate::storage::DeviceProfile::qlc_flash(1);
        let _ = crate::db::Options::scaled_default(10);
        let _ = crate::lsm::LsmConfig::het(10, 0.2);
        let _ = crate::workloads::Workload::ycsb_a(10);
        let _ = crate::bench::Scale::quick();
        let _ = crate::frontend::FrontendOptions::default();
        let _ = crate::net::ServerOptions::default();
        let _ = crate::nvm::NvmAddress::new(0, 0);
        let _ = crate::flash::BloomFilter::new(1, 10);
        let _: crate::index::BTreeIndex<u64, u64> = crate::index::BTreeIndex::new();
        let _ = crate::tracker::Mapper::new();
        let _ = crate::compaction::CompactionConfig::default();
        let _ = crate::obs::ObsHub::new();
    }
}
