//! Offline shim for `bytes`.
//!
//! Implements the subset of `bytes::Bytes` the workspace uses: an immutable,
//! reference-counted byte buffer whose clones share the underlying allocation.
//! The API mirrors the real crate so swapping the dependency back requires no
//! source changes.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
///
/// ```
/// use bytes::Bytes;
///
/// let a = Bytes::from(vec![1, 2, 3]);
/// let b = a.clone();
/// assert_eq!(&a[..], &b[..]);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data))
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.0.iter() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}
