//! Offline shim for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! boolean strategies, `prop::collection::{vec, hash_set, btree_set}`,
//! `prop::array::uniform4` and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimised counterexample.
//! * **Deterministic seeding.** Cases derive from a seed hashed from the
//!   test's name, so failures reproduce exactly across runs and machines.

use std::collections::{BTreeSet, HashSet};
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test identifier (typically the test name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a keeps seeds stable across runs, platforms and rustc versions.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// Strategy modules, re-exported from the prelude as `prop`.
pub mod strategies {
    use super::{Strategy, TestRng};

    /// Boolean strategies.
    pub mod bool {
        use super::{Strategy, TestRng};

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Generates `true` or `false` with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn new_value(&self, rng: &mut TestRng) -> bool {
                rand::Rng::gen(rng)
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use std::collections::{BTreeSet, HashSet};
        use std::hash::Hash;
        use std::ops::Range;

        use super::{Strategy, TestRng};

        fn draw_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, size.clone())
        }

        /// Vectors of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = draw_len(&self.size, rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Hash sets of `element` values with a target size drawn from `size`.
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            HashSetStrategy { element, size }
        }

        /// See [`hash_set`].
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let target = draw_len(&self.size, rng);
                let mut set = HashSet::new();
                // Duplicates only shrink the set; bound the retries so tiny
                // element domains still terminate.
                let mut attempts = 0usize;
                while set.len() < target && attempts < target.saturating_mul(16) + 64 {
                    set.insert(self.element.new_value(rng));
                    attempts += 1;
                }
                set
            }
        }

        /// B-tree sets of `element` values with a target size drawn from `size`.
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        /// See [`btree_set`].
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = draw_len(&self.size, rng);
                let mut set = BTreeSet::new();
                let mut attempts = 0usize;
                while set.len() < target && attempts < target.saturating_mul(16) + 64 {
                    set.insert(self.element.new_value(rng));
                    attempts += 1;
                }
                set
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::{Strategy, TestRng};

        /// Arrays of four values drawn from the same strategy.
        pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
            Uniform4 { element }
        }

        /// See [`uniform4`].
        #[derive(Debug, Clone)]
        pub struct Uniform4<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for Uniform4<S> {
            type Value = [S::Value; 4];

            fn new_value(&self, rng: &mut TestRng) -> [S::Value; 4] {
                [
                    self.element.new_value(rng),
                    self.element.new_value(rng),
                    self.element.new_value(rng),
                    self.element.new_value(rng),
                ]
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

// Silence "unused import" style issues in downstream macro expansions by
// referencing the traits the macros rely on.
#[doc(hidden)]
pub mod __private {
    pub use rand::{Rng, RngCore, SampleRange, SeedableRng, Standard};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

// Keep the (otherwise macro-only) imports referenced.
const _: fn() = || {
    fn assert_strategy<S: Strategy>(_: &S) {}
    let _ = |rng: &mut TestRng| {
        assert_strategy(&(0u64..10));
        assert_strategy(&(0.0f64..1.0));
        let _: Vec<(bool, u64)> =
            strategies::collection::vec((strategies::bool::ANY, 0u64..10), 1..4).new_value(rng);
        let _: HashSet<u64> = strategies::collection::hash_set(0u64..100, 1..4).new_value(rng);
        let _: BTreeSet<u64> = strategies::collection::btree_set(0u64..100, 1..4).new_value(rng);
        let _: [u64; 4] = strategies::array::uniform4(0u64..10).new_value(rng);
    };
};

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated values stay inside their strategy's domain.
        #[test]
        fn ranges_and_collections_respect_domains(
            xs in prop::collection::vec((0u8..3, 10u64..20), 1..50),
            flag in prop::bool::ANY,
            theta in 0.25f64..0.75,
            quad in prop::array::uniform4(0u32..7),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for (a, b) in xs {
                prop_assert!(a < 3);
                prop_assert!((10..20).contains(&b));
            }
            prop_assert!((0.25..0.75).contains(&theta));
            prop_assert!(quad.iter().all(|&q| q < 7));
            let _ = flag;
        }

        /// Set strategies hit their requested sizes for large domains.
        #[test]
        fn sets_reach_target_sizes(keys in prop::collection::hash_set(0u64..1_000_000, 5..10)) {
            prop_assert!((5..10).contains(&keys.len()));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let strategy = crate::strategies::collection::vec(0u64..1_000, 10..20);
        let a = crate::Strategy::new_value(&strategy, &mut TestRng::for_test("x"));
        let b = crate::Strategy::new_value(&strategy, &mut TestRng::for_test("x"));
        assert_eq!(a, b);
    }
}
