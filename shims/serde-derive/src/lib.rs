//! Offline shim for `serde_derive`.
//!
//! The real derive macros generate `Serialize`/`Deserialize` impls; nothing
//! in this workspace actually serializes through serde yet (the derives mark
//! types as wire-ready for future PRs), so the shim accepts the same derive
//! syntax — including `#[serde(...)]` helper attributes — and expands to
//! nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
