//! Offline shim for `criterion`.
//!
//! Implements the subset used by `crates/bench/benches/microbench.rs`:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`]. Instead of criterion's statistical machinery it runs
//! a short warm-up, then a fixed measurement window, and prints the mean
//! time per iteration — enough to compare hot paths release-to-release
//! without a registry dependency.

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `routine` under `name`, printing the mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        match bencher.report() {
            Some((iters, per_iter)) => {
                println!("{name:<40} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
            None => println!("{name:<40} (no measurement)"),
        }
        self
    }
}

/// Timer passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: let caches and branch predictors settle.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
        }

        // Measurement window, batched to amortise clock reads.
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + Duration::from_millis(300);
        while Instant::now() < deadline {
            for _ in 0..1_000 {
                std::hint::black_box(routine());
            }
            iters += 1_000;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self) -> Option<(u64, f64)> {
        if self.iters == 0 {
            return None;
        }
        Some((
            self.iters,
            self.elapsed.as_nanos() as f64 / self.iters as f64,
        ))
    }
}

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
