//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive-macro
//! namespaces) so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without the real crate.
//! The derives expand to nothing — no code in the workspace serializes
//! through serde yet. Swap this for the real crate by editing
//! `[workspace.dependencies]` once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented by the shim
/// derives; present so trait-position references resolve).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented by the shim
/// derives; present so trait-position references resolve).
pub trait Deserialize<'de>: Sized {}
