//! Offline shim for `rand` (0.8 API subset).
//!
//! Implements exactly the surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] — on
//! top of a splitmix64 generator. Deterministic by construction: the same
//! seed always yields the same stream, which is what the workload generators
//! and the MSC planner rely on for reproducible experiments.

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// Deterministic standard RNG (splitmix64 under the hood).
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(42);
    /// let mut b = StdRng::seed_from_u64(42);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood) — full 64-bit period, passes
            // the statistical tests that matter for workload generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw in `[0, bound)` by widening multiply, avoiding modulo bias
/// well below any bound the workloads use.
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let x = rng.gen_range(10u64..20);
    /// assert!((10..20).contains(&x));
    /// ```
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..32).map(|_| rng.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(1);
            (0..32).map(|_| rng.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn uniform_enough_for_workloads() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
