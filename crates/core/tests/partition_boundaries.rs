//! Partition-boundary edge cases for the range-partitioned engine.
//!
//! Range partitioning assigns each partition a contiguous key-id span of
//! `expected_keys * 2 / num_partitions` ids; these tests pin the behaviour
//! exactly at those seams — scans starting on a partition's last key,
//! deletes of keys that were never inserted, and scans that must skip
//! tombstones across partition boundaries — deterministically and under a
//! property-based sweep.

use std::collections::BTreeMap;

use proptest::prelude::*;

use prism_db::{Options, Partitioning, PrismDb};
use prism_types::{Key, KvStore, Value};

const EXPECTED_KEYS: u64 = 1_200;
const PARTITIONS: usize = 3;
/// Key-id span per partition (mirrors the engine's routing arithmetic).
const SPAN: u64 = EXPECTED_KEYS * 2 / PARTITIONS as u64;

fn range_db() -> PrismDb {
    let mut options = Options::scaled_default(EXPECTED_KEYS);
    options.num_partitions = PARTITIONS;
    options.partitioning = Partitioning::Range;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // Small NVM so boundary keys regularly live on flash, not just in
    // slabs.
    options.nvm_capacity_bytes = 128 * 1024;
    options.nvm_profile.capacity_bytes = 128 * 1024;
    PrismDb::open(options).expect("valid options")
}

#[test]
fn scan_starting_exactly_on_a_partitions_last_key_crosses_the_seam() {
    let mut db = range_db();
    for id in 0..EXPECTED_KEYS {
        db.put(Key::from_id(id), Value::filled(300, 1)).unwrap();
    }
    // SPAN - 1 is the last id routed to partition 0; SPAN the first id of
    // partition 1.
    for start in [SPAN - 1, SPAN, 2 * SPAN - 1] {
        let got = db.scan(&Key::from_id(start), 10).unwrap();
        let ids: Vec<u64> = got.entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (start..start + 10)
            .filter(|id| *id < EXPECTED_KEYS)
            .collect();
        assert_eq!(ids, expected, "scan from boundary id {start}");
    }
}

#[test]
fn deletes_of_never_inserted_keys_are_harmless_noops() {
    let mut db = range_db();
    for id in (0..EXPECTED_KEYS).step_by(2) {
        db.put(Key::from_id(id), Value::filled(200, 2)).unwrap();
    }
    // Delete keys that never existed: odd ids, boundary ids outside the
    // populated set, and ids past every partition's range.
    for id in [1, 3, SPAN - 1, SPAN + 1, EXPECTED_KEYS + 5, 10 * SPAN] {
        db.delete(&Key::from_id(id)).unwrap();
        assert!(db.get(&Key::from_id(id)).unwrap().value.is_none());
    }
    // The even keys are untouched.
    for id in (0..EXPECTED_KEYS).step_by(2).take(50) {
        assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
    }
    // And scans skip the deleted ids without gaps in the even sequence.
    let got = db.scan(&Key::from_id(0), 20).unwrap();
    let ids: Vec<u64> = got.entries.iter().map(|(k, _)| k.id()).collect();
    let expected: Vec<u64> = (0..EXPECTED_KEYS).step_by(2).take(20).collect();
    assert_eq!(ids, expected);
}

#[test]
fn scans_skip_tombstones_across_partition_boundaries() {
    let mut db = range_db();
    for id in 0..EXPECTED_KEYS {
        db.put(Key::from_id(id), Value::filled(300, 3)).unwrap();
    }
    // Tombstone a window straddling the partition 0 / partition 1 seam.
    for id in SPAN - 5..SPAN + 5 {
        db.delete(&Key::from_id(id)).unwrap();
    }
    let got = db.scan(&Key::from_id(SPAN - 10), 20).unwrap();
    let ids: Vec<u64> = got.entries.iter().map(|(k, _)| k.id()).collect();
    let expected: Vec<u64> = (SPAN - 10..SPAN - 5).chain(SPAN + 5..SPAN + 20).collect();
    assert_eq!(ids, expected, "tombstoned seam window must be skipped");
    // Scan starting inside the tombstoned window.
    let got = db.scan(&Key::from_id(SPAN), 5).unwrap();
    let ids: Vec<u64> = got.entries.iter().map(|(k, _)| k.id()).collect();
    assert_eq!(ids, (SPAN + 5..SPAN + 10).collect::<Vec<u64>>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random put/delete churn concentrated around partition seams, then
    /// scans from seam-adjacent starts must agree exactly with a model.
    #[test]
    fn boundary_churn_matches_model(
        ops in prop::collection::vec((0u8..2, 0u64..3, 0u64..8, 1usize..600), 1..250),
        starts in prop::collection::vec((0u64..3, 0u64..8), 1..8),
    ) {
        let mut db = range_db();
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        // Baseline data so scans always have something to cross into.
        for id in (0..EXPECTED_KEYS).step_by(7) {
            db.put(Key::from_id(id), Value::filled(120, 9)).unwrap();
            model.insert(id, 120);
        }
        for (op, seam, offset, size) in ops {
            // Keys hug a partition seam: seam * SPAN + [-4, +3].
            let id = (seam * SPAN + offset).saturating_sub(4).min(EXPECTED_KEYS - 1);
            let key = Key::from_id(id);
            if op == 0 {
                db.put(key, Value::filled(size, (id % 251) as u8)).unwrap();
                model.insert(id, size);
            } else {
                db.delete(&key).unwrap();
                model.remove(&id);
            }
        }
        for (seam, offset) in starts {
            let start = (seam * SPAN + offset).saturating_sub(4).min(EXPECTED_KEYS - 1);
            let got = db.scan(&Key::from_id(start), 25).unwrap();
            let got_pairs: Vec<(u64, usize)> =
                got.entries.iter().map(|(k, v)| (k.id(), v.len())).collect();
            let expected: Vec<(u64, usize)> = model
                .range(start..)
                .take(25)
                .map(|(id, size)| (*id, *size))
                .collect();
            prop_assert_eq!(got_pairs, expected, "scan from {}", start);
            // Point reads agree at the seam keys too.
            let lookup = db.get(&Key::from_id(start)).unwrap();
            prop_assert_eq!(lookup.value.map(|v| v.len()), model.get(&start).copied());
        }
    }
}
