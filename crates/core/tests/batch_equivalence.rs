//! Property tests for the batched write path.
//!
//! The contract under test: `apply_batch` is observationally equivalent to
//! applying the same entries front to back with per-op `put`/`delete` —
//! for arbitrary put/delete interleavings, duplicate keys inside one
//! batch (the last entry must win), batches straddling partition seams,
//! and with duplicate-key merging disabled. Only *visible state* must
//! match (point reads over the whole key universe plus scans); simulated
//! costs legitimately differ, that being the point of batching.

use proptest::prelude::*;

use prism_db::{Options, Partitioning, PrismDb};
use prism_types::{ConcurrentKvStore, Key, KvStore, Value, WriteBatch};

const KEY_SPACE: u64 = 400;
const PARTITIONS: usize = 3;
/// Key-id span per partition under range partitioning (mirrors the
/// engine's routing arithmetic).
const SPAN: u64 = KEY_SPACE * 2 / PARTITIONS as u64;

fn small_db(partitioning: Partitioning, merge_duplicates: bool) -> PrismDb {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = PARTITIONS;
    options.partitioning = partitioning;
    options.merge_batch_duplicates = merge_duplicates;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // NVM far smaller than the dataset so batches regularly trip
    // watermark compactions and forced reclamation mid-group.
    options.nvm_capacity_bytes = 96 * 1024;
    options.nvm_profile.capacity_bytes = 96 * 1024;
    PrismDb::open(options).expect("valid options")
}

/// `(op, id, size)`: op 0 = put, 1 = delete; ids deliberately clustered
/// around partition seams (the modulo folds the upper range onto seam
/// neighbourhoods) so batches straddle partitions often.
fn op_strategy() -> impl Strategy<Value = (u8, u64, usize)> {
    (0u8..2, 0u64..KEY_SPACE, 1usize..900)
}

fn apply_sequential(db: &mut PrismDb, ops: &[(u8, u64, usize)]) {
    for (op, id, size) in ops {
        let key = Key::from_id(*id);
        match op {
            0 => {
                db.put(key, Value::filled(*size, *id as u8)).unwrap();
            }
            _ => {
                db.delete(&key).unwrap();
            }
        }
    }
}

fn apply_batched(db: &PrismDb, ops: &[(u8, u64, usize)], chunk: usize) {
    for window in ops.chunks(chunk.max(1)) {
        let mut batch = WriteBatch::with_capacity(window.len());
        for (op, id, size) in window {
            let key = Key::from_id(*id);
            match op {
                0 => batch.put(key, Value::filled(*size, *id as u8)),
                _ => batch.delete(key),
            }
        }
        db.apply_batch(batch).unwrap();
    }
}

/// Compare full visible state: every key in the universe point-reads
/// identically and a full scan returns identical entries.
fn assert_same_state(batched: &PrismDb, sequential: &mut PrismDb, context: &str) {
    for id in 0..KEY_SPACE {
        let key = Key::from_id(id);
        let got = ConcurrentKvStore::get(batched, &key).unwrap().value;
        let expected = sequential.get(&key).unwrap().value;
        assert_eq!(got, expected, "{context}: key {id} diverged");
    }
    let got = ConcurrentKvStore::scan(batched, &Key::min(), KEY_SPACE as usize + 10)
        .unwrap()
        .entries;
    let expected = sequential
        .scan(&Key::min(), KEY_SPACE as usize + 10)
        .unwrap()
        .entries;
    assert_eq!(got, expected, "{context}: scan diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `apply_batch` ≡ sequential per-op application for arbitrary
    /// put/delete interleavings and chunk sizes, on the hash-partitioned
    /// engine (batches almost always span partitions).
    #[test]
    fn batched_application_matches_sequential_hash(
        ops in prop::collection::vec(op_strategy(), 1..250),
        chunk in 1usize..40,
    ) {
        let batched = small_db(Partitioning::Hash, true);
        let mut sequential = small_db(Partitioning::Hash, true);
        apply_batched(&batched, &ops, chunk);
        apply_sequential(&mut sequential, &ops);
        assert_same_state(&batched, &mut sequential, "hash");
    }

    /// Same equivalence on the range-partitioned engine with duplicate
    /// merging disabled (the ablation configuration must not change
    /// semantics either).
    #[test]
    fn batched_application_matches_sequential_range_unmerged(
        ops in prop::collection::vec(op_strategy(), 1..250),
        chunk in 1usize..40,
    ) {
        let batched = small_db(Partitioning::Range, false);
        let mut sequential = small_db(Partitioning::Range, true);
        apply_batched(&batched, &ops, chunk);
        apply_sequential(&mut sequential, &ops);
        assert_same_state(&batched, &mut sequential, "range-unmerged");
    }

    /// Duplicate keys inside one batch: the last entry must win, exactly
    /// as sequential application ends up. Keys are drawn from a tiny
    /// universe so nearly every batch has duplicates.
    #[test]
    fn duplicate_keys_in_one_batch_last_entry_wins(
        ops in prop::collection::vec((0u8..2, 0u64..12, 1usize..600), 2..120),
    ) {
        let batched = small_db(Partitioning::Hash, true);
        let mut sequential = small_db(Partitioning::Hash, true);
        // The whole op vector as ONE batch.
        apply_batched(&batched, &ops, ops.len());
        apply_sequential(&mut sequential, &ops);
        assert_same_state(&batched, &mut sequential, "duplicates");
        // The merge must actually have happened (duplicates guaranteed by
        // the pigeonhole when more than 12 entries).
        if ops.len() > 12 {
            prop_assert!(
                ConcurrentKvStore::stats(&batched).batch_merged_writes > 0,
                "a batch with duplicate keys must merge slab writes"
            );
        }
    }
}

/// Deterministic partition-seam case: one batch writing both sides of
/// every range seam, with in-batch overwrites and deletes of seam keys.
#[test]
fn batch_straddling_partition_seams_matches_sequential() {
    let batched = small_db(Partitioning::Range, true);
    let mut sequential = small_db(Partitioning::Range, true);
    let mut ops: Vec<(u8, u64, usize)> = Vec::new();
    for seam in [SPAN, 2 * SPAN] {
        for id in [seam - 2, seam - 1, seam, seam + 1] {
            ops.push((0, id, 300));
        }
        // Overwrite one side of the seam and delete the other inside the
        // same batch.
        ops.push((0, seam - 1, 500));
        ops.push((1, seam, 0));
    }
    apply_batched(&batched, &ops, ops.len());
    apply_sequential(&mut sequential, &ops);
    assert_same_state(&batched, &mut sequential, "seams");
    // Spot-check the seam semantics directly.
    let survivor = ConcurrentKvStore::get(&batched, &Key::from_id(SPAN - 1)).unwrap();
    assert_eq!(survivor.value.expect("overwritten key lives").len(), 500);
    assert!(ConcurrentKvStore::get(&batched, &Key::from_id(SPAN))
        .unwrap()
        .value
        .is_none());
    let stats = ConcurrentKvStore::stats(&batched);
    assert_eq!(
        stats.batch_groups, 3,
        "both seams touch all three partitions"
    );
    assert_eq!(stats.batch_entries, 12);
    assert_eq!(
        stats.batch_merged_writes, 4,
        "per seam, the overwrite and the put-then-delete each merge one entry"
    );
}
