//! Property test for pinned-snapshot isolation.
//!
//! The contract under test: a snapshot pinned at time T observes exactly
//! the state a [`MemStore`] oracle held at T — for every key and for
//! scans — no matter how many puts, deletes, overwrites and batch
//! commits land after the pin, and no matter how many demotion/promotion
//! compactions the engine runs in between (the engine is configured with
//! NVM far smaller than the dataset, so post-pin writes force superseded
//! versions through the slab reclamation and flash demotion machinery
//! while the pin is live).

use proptest::prelude::*;

use prism_db::{Options, Partitioning, PrismDb};
use prism_types::{ConcurrentKvStore, Key, KvStore, MemStore, Value, WriteBatch};

const KEY_SPACE: u64 = 300;
const PARTITIONS: usize = 3;

fn small_db(partitioning: Partitioning) -> PrismDb {
    let mut options = Options::scaled_default(KEY_SPACE);
    options.num_partitions = PARTITIONS;
    options.partitioning = partitioning;
    options.compaction.bucket_size_keys = 128;
    options.sst_target_bytes = 16 * 1024;
    // NVM much smaller than the dataset so the post-pin phase triggers
    // compactions that demote/reclaim versions the snapshot still needs.
    options.nvm_capacity_bytes = 96 * 1024;
    options.nvm_profile.capacity_bytes = 96 * 1024;
    PrismDb::open(options).expect("valid options")
}

/// `(op, id, size)`: op 0 = put, 1 = delete, 2 = multi-key batch seeded
/// from (id, size).
fn op_strategy() -> impl Strategy<Value = (u8, u64, usize)> {
    (0u8..3, 0u64..KEY_SPACE, 1usize..900)
}

/// Apply one op to both the engine and the live oracle.
fn apply(db: &PrismDb, oracle: &mut MemStore, (op, id, size): (u8, u64, usize)) {
    match op {
        0 => {
            let value = Value::filled(size, id as u8);
            db.put(Key::from_id(id), value.clone()).unwrap();
            oracle.put(Key::from_id(id), value).unwrap();
        }
        1 => {
            db.delete(&Key::from_id(id)).unwrap();
            oracle.delete(&Key::from_id(id)).unwrap();
        }
        _ => {
            // A small cross-partition batch: the same key set derived
            // deterministically from (id, size).
            let mut batch = WriteBatch::new();
            let mut mem = WriteBatch::new();
            for step in 0..3u64 {
                let kid = (id + step * (KEY_SPACE / 3)) % KEY_SPACE;
                let value = Value::filled(size, kid as u8);
                batch.put(Key::from_id(kid), value.clone());
                mem.put(Key::from_id(kid), value);
            }
            ConcurrentKvStore::apply_batch(db, batch).unwrap();
            oracle.apply_batch(mem).unwrap();
        }
    }
}

fn assert_snapshot_matches_frozen_oracle(
    db: &PrismDb,
    snap: prism_types::SnapshotId,
    frozen: &MemStore,
    context: &str,
) {
    let expected: Vec<(Key, Value)> = frozen
        .entries()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for id in 0..KEY_SPACE {
        let key = Key::from_id(id);
        let got = db.snapshot_get(snap, &key).unwrap();
        let want = expected
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone());
        assert_eq!(got, want, "{context}: snapshot key {id} diverged");
    }
    let got = db
        .snapshot_scan(snap, &Key::min(), KEY_SPACE as usize + 10)
        .unwrap();
    assert_eq!(got, expected, "{context}: snapshot scan diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Range-partitioned engine: a pinned snapshot equals the oracle
    /// frozen at pin time, regardless of interleaved post-pin writes.
    #[test]
    fn snapshot_equals_frozen_oracle_range(
        before in prop::collection::vec(op_strategy(), 1..120),
        after in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let db = small_db(Partitioning::Range);
        let mut oracle = MemStore::default();
        for op in before {
            apply(&db, &mut oracle, op);
        }
        let snap = db.snapshot().unwrap();
        let frozen = oracle.clone();
        for op in after {
            apply(&db, &mut oracle, op);
        }
        assert_snapshot_matches_frozen_oracle(&db, snap, &frozen, "range");
        db.release_snapshot(snap);
        // Live reads meanwhile track the *live* oracle, not the frozen one.
        for id in 0..KEY_SPACE {
            let key = Key::from_id(id);
            let got = ConcurrentKvStore::get(&db, &key).unwrap().value;
            let expected = oracle.get(&key).unwrap().value;
            prop_assert_eq!(got, expected, "range: live key {} diverged", id);
        }
    }

    /// Hash-partitioned engine: same contract (scans merge-sort across
    /// all partitions, a different code path).
    #[test]
    fn snapshot_equals_frozen_oracle_hash(
        before in prop::collection::vec(op_strategy(), 1..120),
        after in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let db = small_db(Partitioning::Hash);
        let mut oracle = MemStore::default();
        for op in before {
            apply(&db, &mut oracle, op);
        }
        let snap = db.snapshot().unwrap();
        let frozen = oracle.clone();
        for op in after {
            apply(&db, &mut oracle, op);
        }
        assert_snapshot_matches_frozen_oracle(&db, snap, &frozen, "hash");
        db.release_snapshot(snap);
    }
}
