//! End-to-end integrity batteries: targeted fault injection must be
//! detected 100% of the time, corruption must quarantine (never
//! resurrect), degraded partitions must serve reads / refuse writes /
//! re-arm after a clean scrub, and a stuck snapshot pin must not grow
//! history without bound.

use std::sync::Arc;

use prism_db::{
    FaultMode, FaultOp, FaultPlan, FaultTier, Options, PartitionHealth, PrismDb, TargetedFault,
};
use prism_types::{ConcurrentKvStore, Key, PrismError, Value};

fn faulted_db(partitions: usize, plan: &Arc<FaultPlan>, threshold: u64) -> PrismDb {
    let mut options = Options::scaled_default(512);
    options.num_partitions = partitions;
    options.fault_plan = Some(Arc::clone(plan));
    options.corruption_quarantine_threshold = threshold;
    PrismDb::open(options).expect("valid options")
}

fn arm_nvm_write_flip(plan: &FaultPlan) {
    plan.arm(TargetedFault {
        tier: FaultTier::Nvm,
        partition: None,
        op: FaultOp::Write,
        mode: FaultMode::BitFlip,
    });
}

/// The CI chaos gate: every deliberately injected NVM bit flip must be
/// caught by a slab checksum on the very next read of that key — a 100%
/// detection rate, not a statistical one.
#[test]
fn every_injected_nvm_bit_flip_is_detected() {
    const FLIPS: u64 = 32;
    let plan = Arc::new(FaultPlan::new(0xB17));
    // Threshold above FLIPS: the battery measures detection, not
    // degradation, so the partition must keep serving.
    let db = faulted_db(2, &plan, FLIPS + 1);

    for id in 0..FLIPS {
        arm_nvm_write_flip(&plan);
        db.put(Key::from_id(id), Value::filled(300, id as u8))
            .expect("a bit flip is silent at write time");
    }
    assert_eq!(plan.snapshot().bit_flips, FLIPS, "every armed flip fired");

    for id in 0..FLIPS {
        let err = db.get(&Key::from_id(id)).expect_err("flip must be caught");
        assert!(
            matches!(err, PrismError::Corruption(_)),
            "key {id} surfaced {err} instead of Corruption"
        );
    }
    let snap = plan.snapshot();
    assert!(
        snap.detected >= FLIPS,
        "only {} of {FLIPS} injected flips were detected",
        snap.detected
    );
    let stats = ConcurrentKvStore::stats(&db);
    assert!(stats.integrity.checksum_failures >= FLIPS);
    assert_eq!(db.quarantined_object_count() as u64, FLIPS);
}

/// Bit flips injected while records are demoted to flash are all caught:
/// a full scrub pass finds every corrupt SST record, and no probe ever
/// returns damaged bytes.
#[test]
fn every_injected_flash_bit_flip_is_detected() {
    const FLIPS: u64 = 3;
    const KEYS: u64 = 200;
    let plan = Arc::new(FaultPlan::new(0xF1A5));
    let mut options = Options::scaled_default(KEYS);
    options.num_partitions = 1;
    // NVM far smaller than the dataset: inline demotions must run.
    options.nvm_capacity_bytes = 32 * 1024;
    options.nvm_profile.capacity_bytes = 32 * 1024;
    options.sst_target_bytes = 8 * 1024;
    options.compaction.bucket_size_keys = 64;
    options.fault_plan = Some(Arc::clone(&plan));
    options.corruption_quarantine_threshold = 100;
    let db = PrismDb::open(options).expect("valid options");

    for id in 0..KEYS {
        db.put(Key::from_id(id), Value::filled(600, id as u8))
            .expect("clean warm-up writes");
    }
    for _ in 0..FLIPS {
        plan.arm(TargetedFault {
            tier: FaultTier::Flash,
            partition: None,
            op: FaultOp::Write,
            mode: FaultMode::BitFlip,
        });
    }
    // Overwrite everything once more: the armed flips fire inside the
    // demotion SST writes this churn forces.
    for id in 0..KEYS {
        db.put(Key::from_id(id), Value::filled(600, (id + 1) as u8))
            .expect("writes stay silent under flash write flips");
    }
    assert_eq!(plan.snapshot().bit_flips, FLIPS, "every armed flip fired");

    // Under churn a flipped record can also be *superseded*: a later
    // compaction merges a newer version over it and drops the damaged
    // record unread, so it never persists and there is nothing left to
    // detect. The engine contract is therefore: every flip is either
    // detected (install-time verify or scrub) or provably gone — after a
    // full scrub no corrupt record survives anywhere.
    let report = db.scrub();
    assert!(report.completed);
    let second = db.scrub();
    assert_eq!(
        second.corrupt_found, 0,
        "a corrupt record survived scrubbing (first report {report:?})"
    );
    let snap = plan.snapshot();
    assert!(
        snap.detected >= 1,
        "no flash flip was ever caught (report {report:?})"
    );

    // And no probe anywhere returns damaged bytes.
    for id in 0..KEYS {
        match db.get(&Key::from_id(id)) {
            Ok(lookup) => {
                let value = lookup.value.expect("no deletes in this battery");
                assert_eq!(value, Value::filled(600, (id + 1) as u8), "key {id}");
            }
            Err(PrismError::Corruption(_)) => {}
            Err(err) => panic!("key {id} surfaced {err}"),
        }
    }
}

/// The quarantine -> degraded -> scrub -> healthy lifecycle: a degraded
/// partition keeps serving clean reads, refuses writes with the
/// retryable `Degraded` error, re-arms after a clean scrub pass, and a
/// rewrite of a quarantined key heals it.
#[test]
fn degraded_partition_serves_reads_refuses_writes_and_rearms() {
    let plan = Arc::new(FaultPlan::new(0xDE6));
    let db = faulted_db(1, &plan, 2);

    db.put(Key::from_id(1), Value::filled(100, 1)).unwrap();
    for id in [2u64, 3] {
        arm_nvm_write_flip(&plan);
        db.put(Key::from_id(id), Value::filled(100, id as u8))
            .unwrap();
    }
    for id in [2u64, 3] {
        assert!(matches!(
            db.get(&Key::from_id(id)),
            Err(PrismError::Corruption(_))
        ));
    }
    assert_eq!(db.partition_health(0), PartitionHealth::Degraded);

    // Reads of clean keys still land; writes are refused retryably.
    assert_eq!(
        db.get(&Key::from_id(1)).unwrap().value,
        Some(Value::filled(100, 1))
    );
    match db.put(Key::from_id(4), Value::filled(100, 4)) {
        Err(PrismError::Degraded { partition }) => assert_eq!(partition, 0),
        other => panic!("degraded write returned {other:?}"),
    }
    // Scans skip the quarantined keys instead of erroring.
    let entries = db.scan(&Key::from_id(0), 16).unwrap().entries;
    assert_eq!(entries.len(), 1, "only the clean key is visible");
    assert_eq!(entries[0].0.id(), 1);

    // The quarantined slots were dropped, so the next full scrub pass is
    // clean and re-arms the partition.
    let report = db.scrub();
    assert_eq!(report.corrupt_found, 0);
    assert_eq!(db.partition_health(0), PartitionHealth::Healthy);
    db.put(Key::from_id(4), Value::filled(100, 4))
        .expect("healthy again");

    // A rewrite supersedes the quarantine sentinel entirely.
    db.put(Key::from_id(2), Value::filled(100, 22)).unwrap();
    assert_eq!(
        db.get(&Key::from_id(2)).unwrap().value,
        Some(Value::filled(100, 22))
    );

    let stats = ConcurrentKvStore::stats(&db);
    assert_eq!(stats.integrity.degraded_entered, 1);
    assert_eq!(stats.integrity.degraded_recovered, 1);
    assert!(stats.integrity.degraded_write_refusals >= 1);
    assert_eq!(stats.integrity.degraded_partitions, 0);
}

/// Crash recovery over a slab holding a corrupt slot quarantines the key
/// rather than resurrecting any version of it — neither the damaged
/// bytes nor a stale clean sibling may come back.
#[test]
fn recovery_over_a_corrupted_slab_quarantines_not_resurrects() {
    let plan = Arc::new(FaultPlan::new(0xEC0));
    let db = faulted_db(1, &plan, 16);

    db.put(Key::from_id(1), Value::filled(200, 1)).unwrap();
    db.put(Key::from_id(2), Value::filled(200, 2)).unwrap();
    // Overwrite key 1 with a silently-corrupted version.
    arm_nvm_write_flip(&plan);
    db.put(Key::from_id(1), Value::filled(200, 11)).unwrap();

    db.crash_and_recover();

    // The corrupt key is quarantined: reads error, they do not serve the
    // damaged new version or resurrect the superseded old one.
    assert!(matches!(
        db.get(&Key::from_id(1)),
        Err(PrismError::Corruption(_))
    ));
    // The untouched sibling survived recovery.
    assert_eq!(
        db.get(&Key::from_id(2)).unwrap().value,
        Some(Value::filled(200, 2))
    );
    // Scans skip the quarantined key.
    let entries = db.scan(&Key::from_id(0), 16).unwrap().entries;
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].0.id(), 2);
    assert!(db.quarantined_object_count() >= 1);

    // A fresh write heals it.
    db.put(Key::from_id(1), Value::filled(200, 111)).unwrap();
    assert_eq!(
        db.get(&Key::from_id(1)).unwrap().value,
        Some(Value::filled(200, 111))
    );
    assert_eq!(db.quarantined_object_count(), 0);
}

/// In background mode a corruption-triggered scrub request re-arms the
/// degraded partition without any foreground help.
#[test]
fn background_scrubber_rearms_a_degraded_partition() {
    let plan = Arc::new(FaultPlan::new(0xBC6));
    let mut options = Options::scaled_default(512);
    options.num_partitions = 1;
    options.compaction_workers = 1;
    options.fault_plan = Some(Arc::clone(&plan));
    options.corruption_quarantine_threshold = 1;
    let db = PrismDb::open(options).expect("valid options");

    db.put(Key::from_id(1), Value::filled(100, 1)).unwrap();
    arm_nvm_write_flip(&plan);
    db.put(Key::from_id(2), Value::filled(100, 2)).unwrap();
    assert!(matches!(
        db.get(&Key::from_id(2)),
        Err(PrismError::Corruption(_))
    ));
    // The failed read queued a scrub job; the worker pool's clean pass
    // must flip the partition back to healthy on its own.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if db.partition_health(0) == PartitionHealth::Healthy {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background scrub never re-armed the partition"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = ConcurrentKvStore::stats(&db);
    assert!(stats.integrity.scrub_passes >= 1);
    assert!(stats.integrity.degraded_recovered >= 1);
}

/// Satellite regression: a stuck snapshot pin cannot hold unbounded
/// history. Exceeding `max_history_bytes` force-expires the oldest pin,
/// caps DRAM held by superseded versions, and the abandoned handle
/// surfaces `SnapshotExpired`.
#[test]
fn a_stuck_pin_cannot_grow_history_unboundedly() {
    const CAP: u64 = 32 * 1024;
    let mut options = Options::scaled_default(512);
    options.num_partitions = 2;
    options.max_history_bytes = CAP;
    let db = PrismDb::open(options).expect("valid options");
    let key = Key::from_id(7);
    db.put(key.clone(), Value::filled(1024, 0)).unwrap();

    let pin = db.snapshot().expect("pin");
    assert_eq!(db.active_snapshots(), 1);
    // A stuck reader while a hot key churns: unbounded history would
    // retain ~100 KiB here. One entry of slack covers the version that
    // trips the cap before enforcement runs.
    for round in 0..100u64 {
        db.put(key.clone(), Value::filled(1024, round as u8))
            .unwrap();
        assert!(
            db.snapshot_history_bytes() <= CAP + 2048,
            "history grew to {} bytes under a {} byte cap",
            db.snapshot_history_bytes(),
            CAP
        );
    }
    assert_eq!(db.active_snapshots(), 0, "the stuck pin was force-expired");
    assert!(matches!(
        db.snapshot_get(pin, &key),
        Err(PrismError::SnapshotExpired)
    ));
    let stats = ConcurrentKvStore::stats(&db);
    assert_eq!(stats.integrity.snapshots_expired, 1);

    // Fresh pins still work after the expiry.
    let pin2 = db.snapshot().expect("pin");
    assert_eq!(
        db.snapshot_get(pin2, &key).unwrap(),
        Some(Value::filled(1024, 99))
    );
    db.release_snapshot(pin2);
}

/// Same cap family, age-based: a pin older than `max_pin_age_ops`
/// commits is aborted even if its history footprint is small.
#[test]
fn an_overaged_pin_is_expired_by_the_op_cap() {
    let mut options = Options::scaled_default(512);
    options.num_partitions = 2;
    options.max_pin_age_ops = 50;
    let db = PrismDb::open(options).expect("valid options");
    let pin = db.snapshot().expect("pin");
    // Distinct keys: no version is superseded, history stays empty, only
    // the age cap can trip.
    for id in 0..60u64 {
        db.put(Key::from_id(id), Value::filled(64, id as u8))
            .unwrap();
    }
    assert!(matches!(
        db.snapshot_scan(pin, &Key::from_id(0), 10),
        Err(PrismError::SnapshotExpired)
    ));
    assert_eq!(db.active_snapshots(), 0);
    assert_eq!(ConcurrentKvStore::stats(&db).integrity.snapshots_expired, 1);
}
