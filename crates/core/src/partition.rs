//! A single shared-nothing partition of PrismDB.
//!
//! Each partition owns a disjoint slice of the key space and all the data
//! structures for it (Figure 3 of the paper): the NVM slab store and its
//! B-tree index, the flash sorted log and manifest, the clock tracker and
//! mapper, the bucket map for approx-MSC, and the compaction planner. A
//! partition also owns its virtual clocks: a foreground clock advanced by
//! client operations and a background completion time advanced by
//! compaction work, which together produce write-stall behaviour when
//! compactions cannot keep up.
//!
//! # Read path vs write path
//!
//! Point reads and scans take `&self`: the engine keeps each partition
//! behind an `RwLock`, so reads on the same partition overlap with each
//! other and only serialise against writers. Whatever a read must mutate
//! is split out of the critical section — the DRAM cache is hash-sharded
//! over independently locked sub-caches ([`ShardedLruCache`]), every read
//! counter is an atomic, and the clock-tracker update for an
//! already-tracked key is a lock-free [`ClockTracker::touch`] (an atomic
//! swap on the entry's clock byte) folded into the mapper histogram with
//! an atomic [`Mapper::promote_to_max`]. Only *structural* tracker work —
//! admitting a key the tracker has never seen, which may evict another —
//! is buffered in a [`ReadSideState`] for the next write (or an
//! engine-forced drain) to apply under the write lock. The CPU cost of
//! the tracker update is still charged to the read that caused it; only
//! structural application is deferred. Point lookups resolve the key's
//! NVM address through the index's hash-directory fast path
//! ([`prism_index::FastIndex`]) instead of a B-tree walk.
//!
//! # Compaction pipeline
//!
//! Compactions run as a *plan → execute → install* pipeline
//! (see [`prism_compaction::CompactionJob`]): planning clones the victim
//! state out under the lock, execution merges without the lock, and
//! installation re-validates against the live index (timestamp checks per
//! demoted object, an epoch check per job) before swapping files in. With
//! `Options::compaction_workers == 0` the three phases run back-to-back on
//! the client thread that tripped the watermark (inline mode, the paper's
//! stall behaviour); with workers they are driven by the engine's
//! background worker pool and the foreground only stalls at the
//! back-pressure ceiling.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use prism_compaction::{
    execute_job, msc_score, BucketMap, CompactionJob, CompactionPlanner, CompactionPolicy,
    DemoteEntry, ExecutedJob, JobKind, MergedOrigin, RangeStatsBuilder, ReadTriggeredController,
};
use prism_flash::{Manifest, SortedLog, SstBuilder, SstEntry, SstFile};
use prism_index::FastIndex;
use prism_nvm::{NvmAddress, SlabConfig, SlabStore};
use prism_storage::{CpuCosts, Device, FaultOp, FaultPlan, FaultTier, TieredStorage};
use prism_tracker::{ClockTracker, Mapper, PinDecision};
use prism_types::{
    BatchOp, CompactionStats, IntegrityStats, Key, Lookup, Nanos, PartitionHealth, PrismError,
    ReadSource, Result, Value,
};

use crate::cache::ShardedLruCache;
use crate::options::Options;
use crate::sequence::CommitSequencer;

/// Buffered read-side updates applied at the next drain (threshold for the
/// engine to force a drain with a write lock).
pub(crate) const READ_SIDE_DRAIN: usize = 64;

/// Entry in the partition's B-tree index describing the NVM-resident
/// version of a key.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndexEntry {
    addr: NvmAddress,
    timestamp: u64,
    tombstone: bool,
}

/// Per-partition counters merged into [`prism_types::EngineStats`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PartitionStats {
    pub reads_from_dram: u64,
    pub reads_from_nvm: u64,
    pub reads_from_flash: u64,
    pub reads_not_found: u64,
    pub user_bytes_written: u64,
    pub batch_groups: u64,
    pub batch_entries: u64,
    pub batch_merged_writes: u64,
    pub compaction: CompactionStats,
}

/// Read counters updated without the write lock.
#[derive(Debug, Default)]
struct ReadStats {
    dram: AtomicU64,
    nvm: AtomicU64,
    flash: AtomicU64,
    not_found: AtomicU64,
}

/// Structural tracker admissions buffered by `&self` reads and applied by
/// the next writer (or an engine-forced drain). Only keys the clock
/// tracker does not yet track land here — a tracked key's re-access is
/// applied lock-free on the read path itself ([`ClockTracker::touch`]).
#[derive(Debug, Default)]
struct ReadSideState {
    /// `(key, served_from_flash)` per untracked found read, in arrival
    /// order.
    accesses: Vec<(Key, bool)>,
}

/// Read-side counters maintained entirely with atomics: the hot read path
/// bumps these without taking any lock, and write-lock holders drain them.
#[derive(Debug, Default)]
struct ReadSideCounters {
    /// Mirrors `ReadSideState::accesses.len()` so drain pressure is
    /// checked without the buffer mutex.
    pending_accesses: AtomicU64,
    /// Total reads observed since the last drain.
    reads: AtomicU64,
    /// Reads served from NVM since the last drain.
    nvm_hits: AtomicU64,
    /// Reads served from flash since the last drain.
    flash_hits: AtomicU64,
    /// Flash-served reads since the last promotion compaction (persists
    /// across drains; reset when a promotion is scheduled).
    flash_reads_since_promotion: AtomicU64,
}

/// Slab device writes accumulated by one batched partition group. The
/// group's slot writes are submitted together, so instead of charging one
/// random-write latency per slot, the group pays one access latency plus a
/// bandwidth-limited transfer of the total bytes (the device I/O counters
/// are still recorded per slot by the slab store).
#[derive(Debug, Default, Clone, Copy)]
struct SlabWriteTally {
    writes: u64,
    bytes: u64,
}

/// Result of one compaction job.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct CompactionOutcome {
    pub duration: Nanos,
    pub flash_time: Nanos,
    pub demoted: u64,
    pub promoted: u64,
}

/// Result of one scrub pass (see [`crate::PrismDb::scrub_partition`]):
/// a budget-bounded integrity walk over the partition's slabs and SST
/// files.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects whose checksums were verified this pass.
    pub examined: u64,
    /// Payload bytes read and verified this pass.
    pub examined_bytes: u64,
    /// Corrupt objects discovered this pass.
    pub corrupt_found: u64,
    /// Corrupt objects repaired from a surviving clean copy (a newer
    /// NVM version shadowing a corrupt flash record, or the DRAM
    /// cache's last committed value).
    pub repaired: u64,
    /// Corrupt objects with no surviving copy, quarantined instead.
    pub quarantined: u64,
    /// Whether the walk reached the end of the partition. `false` means
    /// the IO budget ran out and the pass parked a resume cursor.
    pub completed: bool,
}

/// Resume point of a budget-bounded scrub walk: scrub verifies the NVM
/// index first, then the flash files in key order. Both phases are
/// keyed by `Key` (not slot address or file id) so a cursor survives
/// concurrent writes, compactions and file rebuilds.
#[derive(Debug, Clone)]
enum ScrubCursor {
    /// Next NVM index key to verify.
    Nvm(Key),
    /// Flash phase: next file (identified by its minimum key) to verify.
    Flash(Key),
}

pub(crate) struct Partition {
    id: usize,
    options: Arc<Options>,
    cpu: CpuCosts,
    nvm_dev: Arc<Device>,
    flash_dev: Arc<Device>,
    slab: SlabStore,
    index: FastIndex<Key, IndexEntry>,
    log: SortedLog,
    manifest: Manifest,
    tracker: ClockTracker,
    mapper: Mapper,
    buckets: BucketMap,
    planner: CompactionPlanner,
    read_trigger: Option<ReadTriggeredController>,
    cache: ShardedLruCache,
    read_side: Mutex<ReadSideState>,
    read_counters: ReadSideCounters,
    read_stats: ReadStats,
    /// Global commit sequencer shared by every partition of the engine:
    /// allocates the per-version timestamps (which double as commit
    /// sequences) and tracks pinned snapshots.
    seq: Arc<CommitSequencer>,
    /// Superseded versions preserved for pinned snapshots: per key, the
    /// `(sequence, value)` pairs (a `None` value is a delete) in
    /// ascending sequence order. Only populated while snapshots are
    /// pinned; cleared wholesale once none remain.
    history: BTreeMap<Key, Vec<(u64, Option<Value>)>>,
    /// Foreground virtual clock in nanoseconds (atomic so `&self` reads
    /// can advance it).
    fg: AtomicU64,
    /// Virtual time at which all installed compaction work completes.
    busy_until: Nanos,
    /// Compaction epoch: bumped by crash recovery and emergency inline
    /// compactions so in-flight background jobs planned against the old
    /// state are discarded at install.
    epoch: u64,
    /// A read-triggered promotion compaction is due (set by a drain).
    promote_pending: bool,
    stats: PartitionStats,
    /// Fault plan shared with the storage layer (`None` in healthy runs).
    fault: Option<Arc<FaultPlan>>,
    /// Read-only degraded mode flips on when quarantines cross
    /// `Options::corruption_quarantine_threshold` and back off after a
    /// clean scrub pass.
    health: PartitionHealth,
    /// Key ids quarantined after corruption with no surviving copy: the
    /// tombstone-with-error sentinel set. Reads of these keys fail with
    /// `Corruption` (never stale data from an older tier); a successful
    /// rewrite or scrub repair removes the sentinel.
    quarantined: HashSet<u64>,
    /// Integrity counters mutated under the write lock.
    integrity: IntegrityStats,
    /// Writes refused while degraded (atomic: the engine counts the
    /// refusal under the partition *read* lock).
    degraded_refusals: AtomicU64,
    /// Corruption detections made by `&self` readers (scans) that cannot
    /// touch the plain `integrity` struct.
    scan_detected: AtomicU64,
    /// Bytes currently buffered in `history` (mirrored into the shared
    /// sequencer total for lock-free engine-side cap checks).
    history_bytes: u64,
    /// Parked resume point of an incomplete scrub pass.
    scrub_cursor: Option<ScrubCursor>,
}

impl Partition {
    pub(crate) fn new(
        id: usize,
        options: Arc<Options>,
        storage: &TieredStorage,
        seq: Arc<CommitSequencer>,
    ) -> Result<Self> {
        let partitions = options.num_partitions as u64;
        let slab_config = SlabConfig {
            slot_sizes: options.slab_slot_sizes.clone(),
            capacity_bytes: (options.nvm_capacity_bytes / partitions).max(4096),
        };
        let mut slab = SlabStore::new(slab_config, storage.nvm.clone())?;
        if let Some(plan) = &options.fault_plan {
            slab.attach_faults(plan.clone(), id);
        }
        let tracker_capacity = (options.tracker_capacity() / options.num_partitions).max(8);
        let mut compaction_config = options.compaction;
        // Give each partition its own deterministic-but-distinct seed.
        compaction_config.seed = compaction_config.seed.wrapping_add(id as u64);
        let planner = CompactionPlanner::new(compaction_config)?;
        Ok(Partition {
            id,
            cpu: storage.cpu,
            nvm_dev: storage.nvm.clone(),
            flash_dev: storage.flash.clone(),
            slab,
            index: FastIndex::new(),
            log: SortedLog::new(),
            manifest: Manifest::new(),
            tracker: ClockTracker::new(tracker_capacity),
            mapper: Mapper::new(),
            buckets: BucketMap::new(options.compaction.bucket_size_keys),
            planner,
            read_trigger: options.read_trigger.map(ReadTriggeredController::new),
            cache: ShardedLruCache::new(
                options.dram_cache_bytes / partitions,
                options.cache_shards,
            ),
            read_side: Mutex::new(ReadSideState::default()),
            read_counters: ReadSideCounters::default(),
            read_stats: ReadStats::default(),
            seq,
            history: BTreeMap::new(),
            fg: AtomicU64::new(0),
            busy_until: Nanos::ZERO,
            epoch: 0,
            promote_pending: false,
            stats: PartitionStats::default(),
            fault: options.fault_plan.clone(),
            health: PartitionHealth::Healthy,
            quarantined: HashSet::new(),
            integrity: IntegrityStats::default(),
            degraded_refusals: AtomicU64::new(0),
            scan_detected: AtomicU64::new(0),
            history_bytes: 0,
            scrub_cursor: None,
            options,
        })
    }

    fn lock_read_side(&self) -> MutexGuard<'_, ReadSideState> {
        self.read_side
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Current foreground virtual time.
    pub(crate) fn fg(&self) -> Nanos {
        Nanos::from_nanos(self.fg.load(Ordering::Relaxed))
    }

    fn advance_fg(&self, cost: Nanos) {
        self.fg.fetch_add(cost.as_nanos(), Ordering::Relaxed);
    }

    /// Virtual time at which all installed compaction work completes.
    pub(crate) fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    pub(crate) fn set_busy_until(&mut self, t: Nanos) {
        self.busy_until = t;
    }

    /// Record compaction time that overlapped foreground service.
    pub(crate) fn note_overlap(&mut self, duration: Nanos) {
        self.stats.compaction.overlap_time += duration;
    }

    pub(crate) fn elapsed(&self) -> Nanos {
        self.fg().max(self.busy_until)
    }

    pub(crate) fn stats(&self) -> PartitionStats {
        let mut stats = self.stats;
        stats.reads_from_dram = self.read_stats.dram.load(Ordering::Relaxed);
        stats.reads_from_nvm = self.read_stats.nvm.load(Ordering::Relaxed);
        stats.reads_from_flash = self.read_stats.flash.load(Ordering::Relaxed);
        stats.reads_not_found = self.read_stats.not_found.load(Ordering::Relaxed);
        stats
    }

    /// Serial virtual time accumulated by this partition's busiest DRAM
    /// cache sub-shard (see [`ShardedLruCache::busiest_serial_ns`]): the
    /// residual single-lock component of the read path that a threaded
    /// makespan model must keep on the critical path.
    pub(crate) fn read_serial_busiest_ns(&self) -> u64 {
        self.cache.busiest_serial_ns()
    }

    /// Occupancy and hit/miss counters of this partition's DRAM cache.
    pub(crate) fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    // ------------------------------------------------------------------
    // Integrity, quarantine, degraded mode
    // ------------------------------------------------------------------

    /// Current health (degraded = read-only until a clean scrub pass).
    pub(crate) fn health(&self) -> PartitionHealth {
        self.health
    }

    /// This partition's integrity counters, folding in the atomics that
    /// `&self` paths maintain and the degraded gauge.
    pub(crate) fn integrity_stats(&self) -> IntegrityStats {
        let mut stats = self.integrity;
        stats.degraded_write_refusals += self.degraded_refusals.load(Ordering::Relaxed);
        stats.checksum_failures += self.scan_detected.load(Ordering::Relaxed);
        stats.degraded_partitions = (self.health == PartitionHealth::Degraded) as u64;
        stats
    }

    /// Count one write refused with `Degraded` (called by the engine
    /// under the partition *read* lock, hence the atomic).
    pub(crate) fn note_degraded_refusal(&self) {
        self.degraded_refusals.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of keys currently under a quarantine sentinel.
    pub(crate) fn quarantined_len(&self) -> usize {
        self.quarantined.len()
    }

    fn corruption_error(&self, key: &Key) -> PrismError {
        PrismError::Corruption(format!(
            "partition {}: key {} is quarantined after a checksum failure",
            self.id,
            key.id()
        ))
    }

    /// Record one detected checksum failure (write-lock paths).
    fn note_checksum_failure(&mut self) {
        self.integrity.checksum_failures += 1;
        if let Some(plan) = &self.fault {
            plan.note_detected();
        }
    }

    /// Record one detected checksum failure from a `&self` reader.
    fn note_checksum_failure_shared(&self) {
        self.scan_detected.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.fault {
            plan.note_detected();
        }
    }

    /// Place `key` under a quarantine sentinel: remove any NVM slot (so
    /// a recovery scan cannot resurrect the corrupt version) but keep
    /// the DRAM cache entry — it holds the last committed value and is
    /// the scrubber's repair source. Returns false if already
    /// quarantined.
    fn quarantine_key(&mut self, key: &Key) -> bool {
        let key_id = key.id();
        if !self.quarantined.insert(key_id) {
            return false;
        }
        self.integrity.quarantined_objects += 1;
        if let Some(entry) = self.index.get(key).copied() {
            let _ = self.slab.remove(entry.addr);
            self.index.remove(key);
            self.buckets.on_nvm_remove(key_id);
        }
        self.maybe_degrade();
        true
    }

    /// Quarantine after a read-path checksum failure (idempotent); the
    /// returned error is what the failed read surfaces to the caller.
    pub(crate) fn quarantine_on_read(&mut self, key: &Key) -> PrismError {
        if self.quarantine_key(key) {
            self.note_checksum_failure();
        }
        self.corruption_error(key)
    }

    /// Flip into read-only degraded mode once enough objects are
    /// quarantined.
    fn maybe_degrade(&mut self) {
        if self.health == PartitionHealth::Healthy
            && self.quarantined.len() as u64 >= self.options.corruption_quarantine_threshold
        {
            self.health = PartitionHealth::Degraded;
            self.integrity.degraded_entered += 1;
        }
    }

    /// Roll the fault plan for an injected flash read error.
    fn roll_flash_read_fault(&self) -> Result<()> {
        if let Some(plan) = &self.fault {
            if plan.roll_io_error(FaultTier::Flash, self.id, FaultOp::Read) {
                return Err(PrismError::Io(format!(
                    "injected flash read error on partition {}",
                    self.id
                )));
            }
        }
        Ok(())
    }

    pub(crate) fn nvm_object_count(&self) -> usize {
        self.slab.object_count()
    }

    pub(crate) fn flash_object_count(&self) -> usize {
        self.log.total_entries()
    }

    pub(crate) fn nvm_utilization(&self) -> f64 {
        self.slab.usage().utilization()
    }

    pub(crate) fn clock_histogram(&self) -> [u64; 4] {
        self.mapper.histogram()
    }

    /// True when compactions are executed by the engine's background
    /// worker pool rather than inline on the triggering client thread.
    pub(crate) fn background_mode(&self) -> bool {
        self.options.compaction_workers > 0
    }

    // ------------------------------------------------------------------
    // Version history for pinned snapshots
    // ------------------------------------------------------------------

    /// The key's current visible version across both tiers: the sequence
    /// it committed at and its value (`None` = the version is a delete).
    /// Returns `None` when the key has no version anywhere.
    pub(crate) fn current_version(&self, key: &Key) -> Option<(u64, Option<Value>)> {
        if let Some(entry) = self.index.get(key).copied() {
            if entry.tombstone {
                return Some((entry.timestamp, None));
            }
            // A slot failing its checksum reads as absent here: snapshot
            // history and transaction pre-images must never capture (and
            // later re-serve) damaged bytes.
            let value = self
                .slab
                .peek(entry.addr)
                .filter(|slot| slot.verify())
                .map(|slot| slot.value.clone());
            return Some((entry.timestamp, value));
        }
        let file = self.log.lookup(key)?;
        let entry = file.probe(key).entry?;
        Some((entry.timestamp, entry.value))
    }

    /// The key's current visible value (the engine's pre-image capture
    /// for commit-log records).
    pub(crate) fn current_visible(&self, key: &Key) -> Option<Value> {
        self.current_version(key).and_then(|(_, value)| value)
    }

    /// Newest sequence at which the key changed, counting full removals
    /// that only the history buffer still remembers. Used by transaction
    /// read-set validation: a value `> snapshot` means the key changed
    /// after the snapshot was pinned.
    pub(crate) fn newest_seq(&self, key: &Key) -> Option<u64> {
        let live = self.current_version(key).map(|(seq, _)| seq);
        let hist = self
            .history
            .get(key)
            .and_then(|list| list.last())
            .map(|(seq, _)| *seq);
        live.into_iter().chain(hist).max()
    }

    /// Approximate DRAM footprint of one preserved history version (key
    /// + value bytes + per-entry bookkeeping).
    fn history_entry_bytes(key: &Key, value: &Option<Value>) -> u64 {
        key.len() as u64 + value.as_ref().map(|v| v.len() as u64).unwrap_or(0) + 16
    }

    fn push_history(&mut self, key: &Key, version: (u64, Option<Value>)) {
        let list = self.history.entry(key.clone()).or_default();
        if list.last().map(|(seq, _)| *seq) != Some(version.0) {
            let bytes = Self::history_entry_bytes(key, &version.1);
            self.history_bytes += bytes;
            self.seq.add_history_bytes(bytes);
            list.push(version);
        }
    }

    /// Drop all preserved history and return its byte accounting.
    fn clear_history(&mut self) {
        if !self.history.is_empty() {
            self.history.clear();
        }
        if self.history_bytes > 0 {
            self.seq.sub_history_bytes(self.history_bytes);
            self.history_bytes = 0;
        }
    }

    /// Free history versions no live pin can reach: for each key, every
    /// version older than the newest one at or below `oldest_pin` is
    /// dead for all remaining pins. With no pins at all, everything
    /// goes. Called by the engine after it force-expires a pin.
    pub(crate) fn prune_history(&mut self, oldest_pin: Option<u64>) {
        let Some(pin) = oldest_pin else {
            self.clear_history();
            return;
        };
        let mut freed = 0u64;
        self.history.retain(|key, list| {
            // Newest index with seq <= pin; everything before it is
            // unreachable by any pin >= `pin`.
            let keep_from = list.iter().rposition(|(seq, _)| *seq <= pin).unwrap_or(0);
            if keep_from > 0 {
                for (_, value) in list.drain(..keep_from) {
                    freed += Self::history_entry_bytes(key, &value);
                }
            }
            !list.is_empty()
        });
        if freed > 0 {
            self.history_bytes = self.history_bytes.saturating_sub(freed);
            self.seq.sub_history_bytes(freed);
        }
    }

    /// Called by every write *before* it mutates the key: while snapshots
    /// are pinned, preserve the version about to be superseded so pinned
    /// readers keep seeing it. Deletes additionally record a
    /// `(delete_seq, None)` marker — the live tombstone they may write is
    /// droppable by a later compaction, and without the marker an older
    /// preserved value could wrongly resurface for snapshots pinned
    /// after the delete. With no pins the whole buffer is garbage.
    ///
    /// The pin check runs after the write's sequence was allocated, and
    /// [`CommitSequencer::pin`] reads the counter inside the same mutex
    /// the check takes, so a racing snapshot either registers first (and
    /// the version is preserved) or pins a sequence that already covers
    /// the new version (see `crate::sequence`).
    fn note_supersession(&mut self, key: &Key, delete_seq: Option<u64>) {
        if !self.seq.has_pins() {
            self.clear_history();
            return;
        }
        if let Some(version) = self.current_version(key) {
            self.push_history(key, version);
        }
        if let Some(seq) = delete_seq {
            self.push_history(key, (seq, None));
        }
    }

    /// Newest preserved version of `key` with sequence `<= pinned`
    /// (flattened: `None` for "deleted or never existed at that point").
    fn history_version_at(&self, key: &Key, pinned: u64) -> Option<Value> {
        self.history
            .get(key)
            .and_then(|list| list.iter().rev().find(|(seq, _)| *seq <= pinned))
            .and_then(|(_, value)| value.clone())
    }

    // ------------------------------------------------------------------
    // Read-side drain
    // ------------------------------------------------------------------

    /// Drain/promotion pressure from the atomic read-side counters alone:
    /// the hot read path calls this without holding any lock.
    fn read_pressure(&self) -> bool {
        let trigger_enabled = self.options.promotions_enabled
            && self
                .read_trigger
                .as_ref()
                .is_some_and(|ctrl| ctrl.promotions_enabled());
        self.read_counters.pending_accesses.load(Ordering::Relaxed) as usize >= READ_SIDE_DRAIN
            || (trigger_enabled
                && self
                    .read_counters
                    .flash_reads_since_promotion
                    .load(Ordering::Relaxed)
                    >= self.options.promotion_batch_flash_reads)
    }

    /// Apply buffered structural tracker admissions and drain the atomic
    /// read counters into the read-trigger controller. Requires the write
    /// lock (`&mut self`).
    pub(crate) fn apply_read_side(&mut self) {
        let accesses = {
            let mut rs = self.lock_read_side();
            self.read_counters
                .pending_accesses
                .store(0, Ordering::Relaxed);
            std::mem::take(&mut rs.accesses)
        };
        let reads = self.read_counters.reads.swap(0, Ordering::Relaxed);
        let nvm_hits = self.read_counters.nvm_hits.swap(0, Ordering::Relaxed);
        let flash_hits = self.read_counters.flash_hits.swap(0, Ordering::Relaxed);
        for (key, on_flash) in &accesses {
            // Cost already charged to the read that buffered the access.
            let _ = self.observe_access_now(key, *on_flash);
        }
        if let Some(ctrl) = &mut self.read_trigger {
            for _ in 0..flash_hits {
                ctrl.observe_op(true, false, true);
            }
            for _ in 0..nvm_hits {
                ctrl.observe_op(true, true, false);
            }
            for _ in 0..reads.saturating_sub(nvm_hits + flash_hits) {
                ctrl.observe_op(true, false, false);
            }
        }
        self.refresh_promote_due();
    }

    /// If the read-trigger controller allows promotions and enough flash
    /// reads accumulated, mark a promotion as pending and reset the batch
    /// counter.
    fn refresh_promote_due(&mut self) {
        let enabled = self.options.promotions_enabled
            && self
                .read_trigger
                .as_ref()
                .is_some_and(|ctrl| ctrl.promotions_enabled());
        if !enabled {
            return;
        }
        // `&mut self` means no reader holds the partition lock, so the
        // load/store pair cannot lose a concurrent increment.
        let ctr = &self.read_counters.flash_reads_since_promotion;
        if ctr.load(Ordering::Relaxed) >= self.options.promotion_batch_flash_reads {
            ctr.store(0, Ordering::Relaxed);
            self.promote_pending = true;
        }
    }

    /// Peek at the pending-promotion flag without consuming it.
    pub(crate) fn promote_pending(&self) -> bool {
        self.promote_pending
    }

    /// Consume the pending-promotion flag (background mode: the engine
    /// turns it into a queued promotion job).
    pub(crate) fn take_promote_pending(&mut self) -> bool {
        std::mem::take(&mut self.promote_pending)
    }

    /// Drain read-side state and, in inline mode, run any due promotion
    /// compaction immediately (background mode defers it to the worker
    /// pool via [`Partition::take_promote_pending`]).
    pub(crate) fn absorb_reads(&mut self) -> Result<()> {
        self.apply_read_side();
        if self.promote_pending && !self.background_mode() {
            self.promote_pending = false;
            let outcome = self.run_promotion_compaction()?;
            if !outcome.duration.is_zero() {
                self.busy_until = self.busy_until.max(self.fg()) + outcome.duration;
            }
        }
        Ok(())
    }

    /// Record a write for the read-trigger controller's read-ratio
    /// tracking.
    fn observe_write_op(&mut self) {
        if let Some(ctrl) = &mut self.read_trigger {
            ctrl.observe_op(false, false, false);
        }
        self.refresh_promote_due();
    }

    // ------------------------------------------------------------------
    // Client operations
    // ------------------------------------------------------------------

    pub(crate) fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        self.absorb_reads()?;
        let mut cost = self.cpu.request_overhead;
        let ts = self.seq.allocate();
        // Inline mode reclaims space on this thread; background mode
        // surfaces `CapacityExceeded` to the engine, which queues an
        // urgent job and retries without holding the partition lock.
        cost += self.put_entry(key, value, ts, cost, !self.background_mode(), None)?;

        // Watermark check: in inline mode demote cold data on this thread
        // if NVM is (nearly) full. In background mode the engine enqueues
        // a job instead (and stalls only at the back-pressure ceiling).
        if !self.background_mode() {
            let stall = self.maybe_demote(cost)?;
            cost += stall;
        }

        self.observe_write_op();
        self.advance_fg(cost);
        Ok(cost)
    }

    /// The state mutation of one put: slab write, index update, tracker
    /// access and cache invalidation, *without* the per-operation wrapper
    /// (request overhead, read-side drain, watermark check, foreground
    /// clock advance) — shared by the single-op path and the batched
    /// group path, which pays the wrapper once per group.
    ///
    /// `accrued` is the cost the enclosing operation accumulated before
    /// this entry (it positions any forced-reclamation stall on the
    /// virtual timeline). With `inline_reclaim`, `CapacityExceeded` is
    /// resolved by forced compactions on this thread while the write lock
    /// stays held; otherwise the error is surfaced to the caller. With a
    /// `group` tally, the slab device write is tallied for one coalesced
    /// end-of-group charge instead of being added to the returned cost.
    fn put_entry(
        &mut self,
        key: Key,
        value: Value,
        ts: u64,
        accrued: Nanos,
        inline_reclaim: bool,
        group: Option<&mut SlabWriteTally>,
    ) -> Result<Nanos> {
        let mut cost = self.cpu.index_op;
        let key_id = key.id();
        let value_len = value.len() as u64;

        self.note_supersession(&key, None);
        let existing = self.index.get(&key).copied();
        let write_result = self.write_to_slab(existing, &key, value.clone(), ts);
        let (addr, write_cost) = match write_result {
            Ok(ok) => ok,
            Err(PrismError::CapacityExceeded { .. }) if inline_reclaim => {
                // Free space with forced compactions, then retry once. The
                // entry cannot proceed until space exists, so the entire
                // wait is charged as a foreground stall here — and only
                // here (the later watermark check sees `busy_until` caught
                // up).
                cost += self.reclaim_inline_for_entry(accrued + cost)?;
                let existing = self.index.get(&key).copied();
                self.write_to_slab(existing, &key, value.clone(), ts)?
            }
            Err(err) => return Err(err),
        };
        match group {
            Some(tally) => {
                tally.writes += 1;
                tally.bytes += self.slab.slot_bytes_for(value.len())?;
            }
            None => cost += write_cost,
        }

        let was_new = existing.is_none();
        self.index.insert(
            key.clone(),
            IndexEntry {
                addr,
                timestamp: ts,
                tombstone: false,
            },
        );
        if was_new {
            self.buckets.on_nvm_insert(key_id);
        }
        // A successful rewrite heals a quarantined key: the fresh version
        // supersedes whatever was corrupt.
        self.quarantined.remove(&key_id);
        cost += self.observe_access_now(&key, false);
        self.cache.remove(&key);
        self.stats.user_bytes_written += value_len;
        Ok(cost)
    }

    /// Forced space reclamation for a batch entry that cannot proceed. In
    /// background mode the epoch bump discards any in-flight job planned
    /// against the pre-reclaim state (the group keeps the write lock, so
    /// waiting for the worker pool mid-group would sacrifice the
    /// per-partition atomicity contract for no progress).
    fn reclaim_inline_for_entry(&mut self, accrued: Nanos) -> Result<Nanos> {
        if self.background_mode() {
            self.epoch += 1;
            self.stats.compaction.backpressure_stalls += 1;
        }
        self.force_free_and_stall(accrued)
    }

    /// Apply one partition's sub-batch of a [`prism_types::WriteBatch`]
    /// under a single write-lock hold: one read-side drain, one request
    /// overhead, one watermark check (→ at most one compaction run /
    /// enqueue per group), and — with `merge_duplicates` — one slab write
    /// per distinct key (earlier entries superseded by a later entry for
    /// the same key are merged away; the last entry wins, exactly as
    /// sequential application would end up). The group's surviving slab
    /// writes are priced as one coalesced device submission (one access
    /// latency plus a bandwidth-limited transfer of the total slot bytes)
    /// instead of one random-write latency each — the storage-level half
    /// of the group-commit win.
    ///
    /// Because the lock is held for the whole group and
    /// `crash_and_recover` serialises on the same lock, the sub-batch is
    /// atomic with respect to readers and crash recovery: afterwards
    /// either every entry or no entry of the group is visible, never a
    /// prefix.
    pub(crate) fn apply_group(
        &mut self,
        entries: Vec<BatchOp>,
        merge_duplicates: bool,
    ) -> Result<Nanos> {
        let seq = self.seq.allocate();
        self.apply_group_with_seq(entries, merge_duplicates, seq)
    }

    /// [`Partition::apply_group`] with a caller-allocated commit sequence:
    /// the engine's cross-partition atomic commit stamps every group of
    /// one batch with the *same* sequence, so a pinned snapshot sees the
    /// whole batch or none of it.
    pub(crate) fn apply_group_with_seq(
        &mut self,
        entries: Vec<BatchOp>,
        merge_duplicates: bool,
        seq: u64,
    ) -> Result<Nanos> {
        if entries.is_empty() {
            return Ok(Nanos::ZERO);
        }
        self.absorb_reads()?;
        let mut cost = self.cpu.request_overhead;
        let entry_count = entries.len() as u64;

        // A later entry for the same key supersedes an earlier one: mark
        // everything but the last occurrence per key as merged.
        let mut superseded = vec![false; entries.len()];
        if merge_duplicates && entries.len() > 1 {
            let mut seen: HashSet<u64> = HashSet::with_capacity(entries.len());
            for (i, entry) in entries.iter().enumerate().rev() {
                if !seen.insert(entry.key().id()) {
                    superseded[i] = true;
                }
            }
        }

        let mut merged = 0u64;
        let mut tally = SlabWriteTally::default();
        for (i, entry) in entries.into_iter().enumerate() {
            if superseded[i] {
                merged += 1;
                // The client still logically wrote these bytes; only the
                // physical slab write is saved.
                if let BatchOp::Put(_, value) = entry {
                    self.stats.user_bytes_written += value.len() as u64;
                }
            } else {
                cost += match entry {
                    BatchOp::Put(key, value) => {
                        self.put_entry(key, value, seq, cost, true, Some(&mut tally))?
                    }
                    BatchOp::Delete(key) => {
                        self.delete_entry(&key, seq, cost, true, Some(&mut tally))?
                    }
                };
            }
            // Every logical entry counts towards the read-trigger
            // controller's read/write ratio, merged or not.
            self.observe_write_op();
        }
        if tally.writes > 0 {
            // One submission for the whole group's slot writes.
            cost += self.nvm_dev.write_sequential_cost(tally.bytes);
        }

        self.stats.batch_groups += 1;
        self.stats.batch_entries += entry_count;
        self.stats.batch_merged_writes += merged;

        if !self.background_mode() {
            let stall = self.maybe_demote(cost)?;
            cost += stall;
        }
        self.advance_fg(cost);
        Ok(cost)
    }

    /// Track an access with the write lock held; returns the CPU cost
    /// charged for it.
    fn observe_access_now(&mut self, key: &Key, on_flash: bool) -> Nanos {
        let event = self.tracker.access(key, on_flash);
        self.mapper.apply(&event);
        self.buckets.on_access(key.id());
        if let Some((evicted, _)) = &event.evicted {
            self.buckets.on_tracker_evict(evicted.id());
        }
        self.cpu.tracker_op
    }

    fn write_to_slab(
        &mut self,
        existing: Option<IndexEntry>,
        key: &Key,
        value: Value,
        ts: u64,
    ) -> Result<(NvmAddress, Nanos)> {
        match existing {
            Some(entry) if !entry.tombstone => self.slab.update(entry.addr, key, value, ts),
            Some(entry) => {
                // The key currently has a tombstone on NVM: write the new
                // value first, then reclaim the tombstone slot, so a failed
                // insert cannot leave a dangling index entry.
                let inserted = self.slab.insert(key.clone(), value, ts)?;
                self.slab.remove(entry.addr)?;
                Ok(inserted)
            }
            None => self.slab.insert(key.clone(), value, ts),
        }
    }

    /// Point lookup without the drain-pressure signal (the engine always
    /// wants both; unit tests usually just want the lookup).
    #[cfg(test)]
    pub(crate) fn get(&self, key: &Key) -> Result<Lookup> {
        Ok(self.get_with_pressure(key)?.0)
    }

    /// Point lookup, also reporting whether enough read-side state has
    /// accumulated that the engine should take the write lock and drain it
    /// (structural tracker admissions, or a due promotion compaction).
    ///
    /// The hot path acquires no partition-wide mutex: the DRAM cache probe
    /// locks only the key's cache sub-shard, the index probe is the hash
    /// directory's `O(1)` fast path, popularity is re-heated with an atomic
    /// clock swap, and every counter (including the pressure inputs) is an
    /// atomic. Only a read of a key the tracker has never seen touches the
    /// read-side buffer mutex, to queue the structural admission.
    pub(crate) fn get_with_pressure(&self, key: &Key) -> Result<(Lookup, bool)> {
        // A quarantined key fails before any tier is consulted: an older
        // clean version on flash must never shadow the corrupt one.
        if self.quarantined.contains(&key.id()) {
            return Err(self.corruption_error(key));
        }
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let mut source = ReadSource::NotFound;
        let mut value: Option<Value> = None;

        // The cache probe (and a later fill) is the read's only serial
        // section: charge its virtual time to the key's sub-shard so the
        // threaded makespan model sees exactly how much of the read path
        // still serialises per sub-shard. The critical section is the whole
        // probe — the hash lookup (`index_op`) and the LRU splice plus value
        // copy (`dram_hit`) both run under the sub-shard lock — so the
        // charge is their sum, not just the copy.
        let cache_serial = (self.cpu.index_op + self.cpu.dram_hit).as_nanos();
        let cached = self.cache.get(key);
        self.cache.charge_serial(key, cache_serial);
        if let Some(cached) = cached {
            cost += self.cpu.dram_hit;
            source = ReadSource::Dram;
            value = Some(cached);
        } else if let Some(entry) = self.index.get(key).copied() {
            if !entry.tombstone {
                let (slot, read_cost) = self.slab.read(entry.addr)?;
                let found = slot.value.clone();
                cost += read_cost;
                source = ReadSource::Nvm;
                self.cache.insert(key.clone(), found.clone());
                self.cache.charge_serial(key, cache_serial);
                value = Some(found);
            }
        } else {
            // Flash path: the SST index and bloom filter live on NVM.
            cost += self.cpu.bloom_probe;
            if let Some(file) = self.log.lookup(key) {
                self.roll_flash_read_fault()?;
                let probe = file.probe(key);
                if probe.may_contain {
                    cost += self.nvm_dev.read_random(512);
                    if probe.data_block_bytes > 0 {
                        cost += self.flash_dev.read_random(probe.data_block_bytes);
                    }
                }
                if probe.corrupt {
                    self.note_checksum_failure_shared();
                    return Err(PrismError::Corruption(format!(
                        "partition {}: flash record for key {} failed its checksum",
                        self.id,
                        key.id()
                    )));
                }
                if let Some(entry) = probe.entry {
                    if let Some(found) = entry.value {
                        source = ReadSource::Flash;
                        self.cache.insert(key.clone(), found.clone());
                        self.cache.charge_serial(key, cache_serial);
                        value = Some(found);
                    }
                }
            }
        }

        match source {
            ReadSource::Dram => self.read_stats.dram.fetch_add(1, Ordering::Relaxed),
            ReadSource::Nvm => self.read_stats.nvm.fetch_add(1, Ordering::Relaxed),
            ReadSource::Flash => self.read_stats.flash.fetch_add(1, Ordering::Relaxed),
            ReadSource::NotFound => self.read_stats.not_found.fetch_add(1, Ordering::Relaxed),
        };
        if value.is_some() {
            // The popularity update's CPU cost belongs to this read either
            // way; which path applies it depends on whether the tracker
            // already knows the key.
            cost += self.cpu.tracker_op;
            let on_flash = source == ReadSource::Flash;
            match self.tracker.touch(key, on_flash) {
                // Tracked: the clock byte was atomically re-heated to the
                // maximum; fold the class transition into the histogram.
                // The key's popularity bit is already set (it was set when
                // the key entered the tracker and only eviction clears it),
                // so no bucket-map update is needed.
                Some(old) => self.mapper.promote_to_max(old),
                // Untracked: admission may evict another key — structural
                // work for the next write-lock holder.
                None => {
                    let mut rs = self.lock_read_side();
                    rs.accesses.push((key.clone(), on_flash));
                    self.read_counters
                        .pending_accesses
                        .store(rs.accesses.len() as u64, Ordering::Relaxed);
                }
            }
        }
        self.read_counters.reads.fetch_add(1, Ordering::Relaxed);
        match source {
            ReadSource::Nvm => {
                self.read_counters.nvm_hits.fetch_add(1, Ordering::Relaxed);
            }
            ReadSource::Flash => {
                self.read_counters
                    .flash_hits
                    .fetch_add(1, Ordering::Relaxed);
                self.read_counters
                    .flash_reads_since_promotion
                    .fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let pressure = self.read_pressure();
        self.advance_fg(cost);
        Ok((
            Lookup {
                value,
                latency: cost,
                source,
            },
            pressure,
        ))
    }

    pub(crate) fn delete(&mut self, key: &Key) -> Result<Nanos> {
        self.absorb_reads()?;
        let mut cost = self.cpu.request_overhead;
        let ts = self.seq.allocate();
        cost += self.delete_entry(key, ts, cost, !self.background_mode(), None)?;
        if !self.background_mode() {
            let stall = self.maybe_demote(cost)?;
            cost += stall;
        }
        self.observe_write_op();
        self.advance_fg(cost);
        Ok(cost)
    }

    /// The state mutation of one delete (see [`Partition::put_entry`] for
    /// the wrapper/entry split and the `accrued` / `inline_reclaim` /
    /// `group` contract).
    fn delete_entry(
        &mut self,
        key: &Key,
        ts: u64,
        accrued: Nanos,
        inline_reclaim: bool,
        group: Option<&mut SlabWriteTally>,
    ) -> Result<Nanos> {
        let mut cost = self.cpu.index_op;
        let key_id = key.id();

        self.note_supersession(key, Some(ts));
        let existing = self.index.get(key).copied();
        // Does any version of this key exist on flash? A corrupt flash
        // record counts: it must be tombstone-shadowed too, or reads
        // after the delete would keep tripping on it.
        cost += self.cpu.bloom_probe;
        let on_flash = self
            .log
            .lookup(key)
            .map(|file| {
                let probe = file.probe(key);
                probe.entry.is_some() || probe.corrupt
            })
            .unwrap_or(false);

        if let Some(entry) = existing {
            // Reclaim the key's current NVM slot whether it holds a value
            // or an old tombstone: deleting an already-tombstoned key must
            // not orphan the previous tombstone slot, or a recovery slab
            // scan could later resurrect it and shadow a newer flash
            // version (a fresh tombstone is re-written below if a flash
            // version still needs shadowing).
            self.slab.remove(entry.addr)?;
            self.buckets.on_nvm_remove(key_id);
            self.index.remove(key);
        }

        if on_flash {
            // Write a tombstone to NVM so the flash version is hidden until
            // a compaction merges and drops both.
            let (addr, write_cost) = match self.slab.insert(key.clone(), Value::empty(), ts) {
                Ok(ok) => ok,
                Err(PrismError::CapacityExceeded { .. }) if inline_reclaim => {
                    cost += self.reclaim_inline_for_entry(accrued + cost)?;
                    self.slab.insert(key.clone(), Value::empty(), ts)?
                }
                Err(err) => return Err(err),
            };
            match group {
                Some(tally) => {
                    tally.writes += 1;
                    tally.bytes += self.slab.slot_bytes_for(0)?;
                }
                None => cost += write_cost,
            }
            self.index.insert(
                key.clone(),
                IndexEntry {
                    addr,
                    timestamp: ts,
                    tombstone: true,
                },
            );
            self.buckets.on_nvm_insert(key_id);
        }

        // A delete supersedes a quarantined version: the key is now
        // legitimately absent (or tombstoned), not corrupt.
        self.quarantined.remove(&key_id);
        self.cache.remove(key);
        Ok(cost)
    }

    /// Point lookup as of a pinned snapshot sequence: the live version if
    /// it committed at or before `pinned`, otherwise the newest preserved
    /// version at `pinned`. Bypasses the DRAM cache (which only tracks
    /// the latest version) and buffers no read-side state — snapshot
    /// reads must not perturb popularity tracking.
    pub(crate) fn snapshot_get(&self, key: &Key, pinned: u64) -> Result<(Option<Value>, Nanos)> {
        if self.quarantined.contains(&key.id()) {
            return Err(self.corruption_error(key));
        }
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let mut live: Option<(u64, Option<Value>)> = None;
        if let Some(entry) = self.index.get(key).copied() {
            if entry.tombstone {
                live = Some((entry.timestamp, None));
            } else {
                let (slot, read_cost) = self.slab.read(entry.addr)?;
                cost += read_cost;
                live = Some((entry.timestamp, Some(slot.value.clone())));
            }
        } else {
            cost += self.cpu.bloom_probe;
            if let Some(file) = self.log.lookup(key) {
                self.roll_flash_read_fault()?;
                let probe = file.probe(key);
                if probe.may_contain {
                    cost += self.nvm_dev.read_random(512);
                    if probe.data_block_bytes > 0 {
                        cost += self.flash_dev.read_random(probe.data_block_bytes);
                    }
                }
                if probe.corrupt {
                    self.note_checksum_failure_shared();
                    return Err(PrismError::Corruption(format!(
                        "partition {}: flash record for key {} failed its checksum",
                        self.id,
                        key.id()
                    )));
                }
                if let Some(entry) = probe.entry {
                    live = Some((entry.timestamp, entry.value));
                }
            }
        }
        let value = match live {
            Some((seq, value)) if seq <= pinned => value,
            _ => self.history_version_at(key, pinned),
        };
        self.advance_fg(cost);
        Ok((value, cost))
    }

    /// Range scan as of a pinned snapshot sequence: a
    /// three-way merge of the NVM index, the flash log and the history
    /// buffer (keys whose only `<= pinned` version was superseded may
    /// live nowhere else), filtering every key to its version at
    /// `pinned`. Takes `&self` and a single partition read lock, so long
    /// snapshot scans never serialise writers on other partitions.
    pub(crate) fn snapshot_scan_collect(
        &self,
        start: &Key,
        limit: usize,
        pinned: u64,
    ) -> Result<(Vec<(Key, Value)>, Nanos)> {
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let mut out: Vec<(Key, Value)> = Vec::with_capacity(limit);
        if limit == 0 {
            self.advance_fg(cost);
            return Ok((out, cost));
        }

        let mut nvm_iter = self.index.range_from(start).peekable();
        let files = self.log.files();
        let mut file_idx = files.partition_point(|f| f.max_key() < start);
        let mut flash_buf: Vec<(Key, SstEntry)> = Vec::new();
        let mut flash_pos = 0usize;
        let mut flash_bytes_consumed = 0u64;
        let max_key = Key::from_id(u64::MAX);
        let refill = |idx: &mut usize, buf: &mut Vec<(Key, SstEntry)>, pos: &mut usize| {
            while *pos >= buf.len() && *idx < files.len() {
                *buf = files[*idx]
                    .range(start, &max_key)
                    .map(|(k, e)| (k.clone(), e.clone()))
                    .collect();
                *pos = 0;
                *idx += 1;
            }
        };
        let mut hist_iter = self.history.range(start.clone()..).peekable();

        let mut nvm_reads = 0u64;
        while out.len() < limit {
            refill(&mut file_idx, &mut flash_buf, &mut flash_pos);
            let nvm_next = nvm_iter.peek().map(|(k, _)| (*k).clone());
            let flash_next = flash_buf.get(flash_pos).map(|(k, _)| k.clone());
            let hist_next = hist_iter.peek().map(|(k, _)| (*k).clone());
            let Some(key) = [nvm_next.clone(), flash_next.clone(), hist_next.clone()]
                .into_iter()
                .flatten()
                .min()
            else {
                break;
            };

            // Live version at this key: NVM wins over flash.
            let mut live: Option<(u64, Option<Value>)> = None;
            let mut nvm_holds_key = false;
            if nvm_next.as_ref() == Some(&key) {
                nvm_holds_key = true;
                let (_, entry) = nvm_iter.next().expect("peeked");
                if entry.tombstone {
                    live = Some((entry.timestamp, None));
                } else if let Some(slot) = self.slab.peek(entry.addr) {
                    if slot.verify() {
                        live = Some((entry.timestamp, Some(slot.value.clone())));
                        nvm_reads += 1;
                    } else {
                        // Skip-and-report: a corrupt slot reads as absent
                        // for the scan (counted, never emitted as garbage)
                        // — history may still hold a clean pinned version.
                        self.note_checksum_failure_shared();
                    }
                }
            }
            if flash_next.as_ref() == Some(&key) {
                if !nvm_holds_key {
                    let (fk, entry) = &flash_buf[flash_pos];
                    if entry.verify() {
                        match &entry.value {
                            Some(v) => {
                                flash_bytes_consumed += v.len() as u64 + fk.len() as u64;
                                live = Some((entry.timestamp, Some(v.clone())));
                            }
                            None => live = Some((entry.timestamp, None)),
                        }
                    } else {
                        self.note_checksum_failure_shared();
                    }
                }
                flash_pos += 1;
            }
            if hist_next.as_ref() == Some(&key) {
                hist_iter.next();
            }

            let visible = match live {
                Some((seq, value)) if seq <= pinned => value,
                _ => self.history_version_at(&key, pinned),
            };
            if let Some(value) = visible {
                // Quarantined keys are skipped (reported via the
                // quarantine counters), not served from an older tier.
                if !self.quarantined.contains(&key.id()) {
                    out.push((key, value));
                }
            }
        }
        drop(nvm_iter);

        if nvm_reads > 0 {
            cost += self.nvm_dev.read_random(4096) * nvm_reads.div_ceil(4);
        }
        if flash_bytes_consumed > 0 {
            cost += self.flash_dev.read_sequential(flash_bytes_consumed);
        }
        cost += self.cpu.merge_per_object * out.len() as u64;
        self.advance_fg(cost);
        Ok((out, cost))
    }

    // ------------------------------------------------------------------
    // Compaction: stalls and inline driving
    // ------------------------------------------------------------------

    /// If NVM is above the high watermark, run demotion compactions until
    /// it drops below the low watermark (inline mode only). Returns the
    /// foreground stall charged to the triggering operation.
    ///
    /// `accrued` is the cost the triggering operation has accumulated so
    /// far: the operation's position on the virtual timeline is
    /// `fg + accrued`, and the stall is the gap from there to the end of
    /// any still-running compaction work. Measuring from `fg` alone would
    /// double-charge waits already accounted earlier in the same
    /// operation (e.g. a forced space reclamation), breaking the
    /// `stall_time <= elapsed` invariant.
    fn maybe_demote(&mut self, accrued: Nanos) -> Result<Nanos> {
        if self.slab.usage().utilization() < self.options.high_watermark {
            return Ok(Nanos::ZERO);
        }
        let now = self.fg() + accrued;
        // If a previous compaction (e.g. a read-triggered promotion) is
        // still "running" in virtual time, the write waits for it first.
        let wait_prev = self.busy_until.saturating_sub(now);
        let mut compacting = Nanos::ZERO;
        let mut rounds = 0;
        while self.slab.usage().utilization() > self.options.low_watermark {
            let outcome = self.run_demotion_compaction(false)?;
            compacting += outcome.duration;
            if outcome.demoted == 0 {
                let forced = self.run_demotion_compaction(true)?;
                compacting += forced.duration;
                if forced.demoted == 0 {
                    break;
                }
            }
            rounds += 1;
            if rounds > 128 {
                break;
            }
        }
        // Inline compactions execute synchronously on the client thread
        // that tripped the watermark (they run right here, holding the
        // partition's write lock), so the triggering operation is charged
        // the full duration as a foreground stall — the behaviour
        // background workers exist to avoid.
        let stall = wait_prev + compacting;
        self.stats.compaction.stall_time += stall;
        self.busy_until = self.busy_until.max(now) + compacting;
        Ok(stall)
    }

    /// Forced space reclamation for an operation that cannot proceed until
    /// space exists. Frees space, advances `busy_until`, and charges the
    /// operation's wait (for prior pending work plus the forced
    /// compactions) as stall time exactly once. Returns the stall.
    fn force_free_and_stall(&mut self, accrued: Nanos) -> Result<Nanos> {
        let freed = self.free_space_forcibly()?;
        let now = self.fg() + accrued;
        self.busy_until = self.busy_until.max(now) + freed;
        let wait = self.busy_until.saturating_sub(now);
        self.stats.compaction.stall_time += wait;
        Ok(wait)
    }

    /// Emergency inline space reclamation in background mode, used when
    /// the worker pool could not free space in time. Bumps the compaction
    /// epoch so any in-flight background job planned against the old state
    /// is discarded at install, then compacts on the calling thread and
    /// charges the wait as a back-pressure stall. Returns the stall.
    pub(crate) fn force_free_inline(&mut self) -> Result<Nanos> {
        self.epoch += 1;
        let wait = self.force_free_and_stall(Nanos::ZERO)?;
        if !wait.is_zero() {
            self.stats.compaction.backpressure_stalls += 1;
            self.advance_fg(wait);
        }
        Ok(wait)
    }

    /// Charge the foreground for waiting on background compaction at the
    /// back-pressure ceiling: the stall is the remaining gap to the
    /// background completion time. Returns the stall charged.
    pub(crate) fn charge_backpressure_stall(&mut self) -> Nanos {
        let stall = self.busy_until.saturating_sub(self.fg());
        if !stall.is_zero() {
            self.advance_fg(stall);
            self.stats.compaction.stall_time += stall;
            self.stats.compaction.backpressure_stalls += 1;
        }
        stall
    }

    fn free_space_forcibly(&mut self) -> Result<Nanos> {
        let mut background = Nanos::ZERO;
        for _ in 0..8 {
            let outcome = self.run_demotion_compaction(true)?;
            background += outcome.duration;
            if outcome.demoted > 0 && self.slab.usage().utilization() < self.options.low_watermark {
                return Ok(background);
            }
            if outcome.demoted == 0 {
                break;
            }
        }
        // Safety valve: sampled candidates may all have been empty of NVM
        // objects. Compact the whole key space once, ignoring popularity,
        // so the write can proceed.
        let job = self.plan_range(
            Key::min(),
            Key::from_id(u64::MAX),
            JobKind::Demotion { force: true },
            false,
            Nanos::ZERO,
            self.fg(),
        );
        if let Some(job) = job {
            let exec = execute_job(job, &self.cpu, &self.flash_dev);
            if let Some(outcome) = self.install_compaction(exec)? {
                background += outcome.duration;
            }
        }
        Ok(background)
    }

    fn run_demotion_compaction(&mut self, force: bool) -> Result<CompactionOutcome> {
        let Some(job) = self.plan_demotion(force, self.fg()) else {
            return Ok(CompactionOutcome::default());
        };
        let exec = execute_job(job, &self.cpu, &self.flash_dev);
        Ok(self.install_compaction(exec)?.unwrap_or_default())
    }

    /// A promotion-oriented compaction: pick the range with the most
    /// popular flash-only objects and rewrite it, pulling those objects up
    /// to NVM.
    pub(crate) fn run_promotion_compaction(&mut self) -> Result<CompactionOutcome> {
        let Some(job) = self.plan_promotion(self.fg()) else {
            return Ok(CompactionOutcome::default());
        };
        let exec = execute_job(job, &self.cpu, &self.flash_dev);
        Ok(self.install_compaction(exec)?.unwrap_or_default())
    }

    // ------------------------------------------------------------------
    // Compaction: planning
    // ------------------------------------------------------------------

    /// Candidate compaction key ranges: the key ranges of consecutive SST
    /// file windows, extended at both ends to cover NVM keys outside any
    /// flash file.
    fn candidate_ranges(&self) -> Vec<(Key, Key)> {
        if self.log.is_empty() {
            if self.index.is_empty() {
                return Vec::new();
            }
            return vec![(Key::min(), Key::from_id(u64::MAX))];
        }
        let files = self.log.files();
        let width = self.options.compaction.range_width_files.max(1);
        let mut ranges = Vec::new();
        // Chain the ranges so together they cover the entire key space:
        // NVM keys that fall in the gap between two flash files belong to
        // the range on their left and can still be demoted.
        let mut prev_end = Key::min();
        let mut i = 0;
        while i < files.len() {
            let window_end = (i + width).min(files.len());
            let start = prev_end.clone();
            let end = if window_end >= files.len() {
                Key::from_id(u64::MAX)
            } else {
                files[window_end - 1].max_key().clone()
            };
            prev_end = end.clone();
            ranges.push((start, end));
            i = window_end;
        }
        ranges
    }

    /// Score one candidate range according to the configured policy, adding
    /// the planning CPU time to `planning_cost`.
    fn score_candidate(&self, start: &Key, end: &Key, planning_cost: &mut Nanos) -> f64 {
        match self.options.compaction.policy {
            CompactionPolicy::Random => 0.0,
            CompactionPolicy::ApproxMsc => {
                *planning_cost += self.cpu.index_op;
                let stats = self.buckets.estimate(start.id(), end.id(), 0.25);
                msc_score(&stats)
            }
            CompactionPolicy::PreciseMsc => {
                let mut builder = RangeStatsBuilder::new();
                let tracked = self.tracker.len();
                for (key, _entry) in self.index.range_from(start).take_while(|(k, _)| *k <= end) {
                    let clock = self.tracker.clock_of(key);
                    let pinned = matches!(
                        self.mapper
                            .pin_decision(clock, self.options.pinning_threshold, tracked),
                        PinDecision::Pin
                    );
                    builder.add_nvm_object(clock, pinned);
                }
                for file in self.log.overlapping(start, end) {
                    for (key, _) in file.range(start, end) {
                        builder.add_flash_object(self.index.contains_key(key));
                    }
                }
                *planning_cost += self.cpu.merge_per_object * builder.objects_examined();
                msc_score(&builder.build())
            }
        }
    }

    /// Plan a demotion compaction: pick the best-scoring candidate range
    /// and clone its victim state into a `Send` job. Requires the write
    /// lock; returns `None` when there is nothing to compact.
    pub(crate) fn plan_demotion(
        &mut self,
        force: bool,
        trigger_fg: Nanos,
    ) -> Option<CompactionJob> {
        let candidates = self.candidate_ranges();
        if candidates.is_empty() {
            return None;
        }
        let picked = self.planner.pick_candidate_indices(candidates.len());
        let mut planning_cost = Nanos::ZERO;
        let scored: Vec<(usize, f64)> = picked
            .iter()
            .map(|&i| {
                (
                    i,
                    self.score_candidate(&candidates[i].0, &candidates[i].1, &mut planning_cost),
                )
            })
            .collect();
        let best = self.planner.select_best(&scored)?;
        let (start, end) = candidates[best].clone();
        self.plan_range(
            start,
            end,
            JobKind::Demotion { force },
            self.options.promotions_enabled,
            planning_cost,
            trigger_fg,
        )
    }

    /// Plan a promotion compaction over the range with the most popular
    /// flash-only objects. Requires the write lock; returns `None` when no
    /// range would promote anything.
    pub(crate) fn plan_promotion(&mut self, trigger_fg: Nanos) -> Option<CompactionJob> {
        if self.log.is_empty() {
            return None;
        }
        let candidates = self.candidate_ranges();
        let picked = self.planner.pick_candidate_indices(candidates.len());
        let scored: Vec<(usize, f64)> = picked
            .iter()
            .map(|&i| {
                let (start, end) = &candidates[i];
                (
                    i,
                    self.buckets
                        .popular_flash_only_objects(start.id(), end.id()),
                )
            })
            .collect();
        let best = scored
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| *i)?;
        let (start, end) = candidates[best].clone();
        self.plan_range(
            start,
            end,
            JobKind::Promotion,
            true,
            Nanos::ZERO,
            trigger_fg,
        )
    }

    /// Clone the victim state of `[start, end]` into a self-contained
    /// [`CompactionJob`]: the NVM objects to demote (with values), the
    /// overlapping SST files, and promotion hints for popular flash-only
    /// objects.
    fn plan_range(
        &mut self,
        start: Key,
        end: Key,
        kind: JobKind,
        allow_promote: bool,
        planning_cost: Nanos,
        trigger_fg: Nanos,
    ) -> Option<CompactionJob> {
        let force = matches!(kind, JobKind::Demotion { force: true });
        let tracked = self.tracker.len();
        let pin_threshold = self.options.pinning_threshold;

        // Select the NVM objects to demote (unpopular ones, or everything
        // in forced mode). Tombstones always participate so they can be
        // merged away.
        let in_range: Vec<(Key, IndexEntry)> = self
            .index
            .range_from(&start)
            .take_while(|(k, _)| *k <= &end)
            .map(|(k, e)| (k.clone(), *e))
            .collect();
        let mut demote: Vec<DemoteEntry> = Vec::new();
        for (key, entry) in in_range {
            let pinned = if force || entry.tombstone {
                false
            } else {
                let clock = self.tracker.clock_of(&key);
                let decision = self.mapper.pin_decision(clock, pin_threshold, tracked);
                decision.should_pin(self.planner.draw())
            };
            if !pinned {
                let value = if entry.tombstone {
                    None
                } else {
                    match self.slab.peek(entry.addr) {
                        Some(slot) if slot.verify() => Some(slot.value.clone()),
                        // A corrupt slot must never enter a demotion job:
                        // the execute step rebuilds the SST record with a
                        // freshly computed checksum, which would launder
                        // the damaged bytes into flash as "clean". Drop
                        // and quarantine it here instead.
                        Some(_) => {
                            self.note_checksum_failure();
                            self.quarantine_key(&key);
                            continue;
                        }
                        // The index points at a missing slot; skip rather
                        // than demote a value we cannot read.
                        None => continue,
                    }
                };
                demote.push(DemoteEntry {
                    key,
                    timestamp: entry.timestamp,
                    tombstone: entry.tombstone,
                    value,
                });
            }
        }

        let files = self.log.overlapping(&start, &end);
        if demote.is_empty() && files.is_empty() {
            return None;
        }

        let mut promote_hints: HashSet<u64> = HashSet::new();
        if allow_promote {
            for file in &files {
                for (key, entry) in file.iter() {
                    if entry.is_tombstone() || self.index.contains_key(key) {
                        continue;
                    }
                    let pin = matches!(
                        self.mapper.pin_decision(
                            self.tracker.clock_of(key),
                            pin_threshold,
                            tracked
                        ),
                        PinDecision::Pin
                    );
                    if pin {
                        promote_hints.insert(key.id());
                    }
                }
            }
        }

        Some(CompactionJob {
            partition: self.id,
            epoch: self.epoch,
            kind,
            trigger_fg,
            demote,
            files,
            promote_hints,
            planning_cost,
        })
    }

    // ------------------------------------------------------------------
    // Compaction: installation
    // ------------------------------------------------------------------

    /// True if the live index still carries exactly the planned version of
    /// `key` (foreground writes between plan and install bump the
    /// timestamp or remove the entry).
    fn entry_current(&self, key: &Key, timestamp: u64) -> bool {
        self.index
            .get(key)
            .map(|e| e.timestamp == timestamp)
            .unwrap_or(false)
    }

    /// Install an executed compaction: re-validate every NVM-origin output
    /// against the live index, apply promotions, write the output files
    /// and swap them into the log atomically (with respect to the
    /// partition lock).
    ///
    /// Returns `Ok(None)` when the job is discarded: its epoch is stale
    /// (crash recovery or an emergency inline compaction rewrote the
    /// partition underneath it) or one of its victim files is no longer
    /// live. Discarding is always safe — execution never mutated partition
    /// state, so the partition simply remains in its pre-job state.
    pub(crate) fn install_compaction(
        &mut self,
        exec: ExecutedJob,
    ) -> Result<Option<CompactionOutcome>> {
        if exec.epoch != self.epoch {
            return Ok(None);
        }
        if !exec
            .old_file_ids
            .iter()
            .all(|id| self.manifest.is_live(*id))
        {
            return Ok(None);
        }

        let mut duration = exec.duration;
        let mut flash_time = exec.flash_time;
        let mut promoted = 0u64;
        let mut removed_from_flash = exec.removed_from_flash;
        let nvm_headroom = self.options.low_watermark;
        let mut out: Vec<(Key, SstEntry)> = Vec::with_capacity(exec.merged.len());

        for m in exec.merged {
            if !m.entry.verify() {
                // Corrupt bytes must never propagate through a compaction
                // into fresh SST files: drop the record, and quarantine
                // the key unless a live NVM version shadows it.
                self.note_checksum_failure();
                if !self.index.contains_key(&m.key) {
                    self.quarantine_key(&m.key);
                }
                continue;
            }
            match m.origin {
                MergedOrigin::Nvm { timestamp } => {
                    // A foreground write (update or delete) between plan
                    // and install supersedes the demoted version: drop it
                    // so a stale value can never resurface from flash.
                    if self.entry_current(&m.key, timestamp) {
                        out.push((m.key, m.entry));
                    }
                }
                MergedOrigin::Flash { promote } => {
                    let promotable = promote
                        && !self.index.contains_key(&m.key)
                        && self.slab.usage().utilization() < nvm_headroom;
                    if promotable {
                        // A promotion moves the *same logical version*
                        // between tiers, so it keeps the flash entry's
                        // commit sequence: a fresh sequence would hide
                        // the key from snapshots pinned before the
                        // promotion. Safe to reuse — the key has no NVM
                        // entry (checked above) and later foreground
                        // writes allocate strictly larger sequences.
                        let ts = m.entry.timestamp;
                        let value = m.entry.value.clone().expect("hints never mark tombstones");
                        match self.slab.insert(m.key.clone(), value, ts) {
                            Ok((addr, cost)) => {
                                duration += cost;
                                self.index.insert(
                                    m.key.clone(),
                                    IndexEntry {
                                        addr,
                                        timestamp: ts,
                                        tombstone: false,
                                    },
                                );
                                self.buckets.on_nvm_insert(m.key.id());
                                self.tracker.set_location(&m.key, false);
                                removed_from_flash.push(m.key.id());
                                promoted += 1;
                            }
                            Err(PrismError::CapacityExceeded { .. }) => {
                                out.push((m.key, m.entry));
                            }
                            Err(err) => return Err(err),
                        }
                    } else {
                        out.push((m.key, m.entry));
                    }
                }
            }
        }

        // Write the merged output as new SST files.
        let (new_files, write_cost) = self.write_sst_files(&out)?;
        duration += write_cost;
        flash_time += write_cost;

        // Demoted keys leave NVM — but only the exact planned version; a
        // key rewritten by the foreground since planning stays put.
        let mut demoted = 0u64;
        for (key, timestamp, tombstone) in &exec.demote {
            if !self.entry_current(key, *timestamp) {
                continue;
            }
            let entry = *self.index.get(key).expect("entry_current checked");
            self.slab.remove(entry.addr)?;
            self.index.remove(key);
            self.buckets.on_nvm_remove(key.id());
            if !tombstone {
                self.tracker.set_location(key, true);
                demoted += 1;
            }
        }
        for (key, _) in &out {
            self.buckets.on_flash_insert(key.id());
        }
        for key_id in removed_from_flash {
            self.buckets.on_flash_remove(key_id);
        }
        for id in &exec.old_file_ids {
            self.manifest.remove_file(*id)?;
        }
        let _retired = self.log.install(&exec.old_file_ids, new_files.clone());
        for file in &new_files {
            self.manifest.add_file(file.clone())?;
        }
        self.manifest.collect_garbage(&self.flash_dev);

        let outcome = CompactionOutcome {
            duration,
            flash_time,
            demoted,
            promoted,
        };
        self.record_compaction(&outcome);
        Ok(Some(outcome))
    }

    fn record_compaction(&mut self, outcome: &CompactionOutcome) {
        if outcome.duration.is_zero() {
            return;
        }
        self.stats.compaction.jobs += 1;
        self.stats.compaction.total_time += outcome.duration;
        self.stats.compaction.slow_tier_time += outcome.flash_time;
        self.stats.compaction.fast_tier_time += outcome.duration.saturating_sub(outcome.flash_time);
        self.stats.compaction.demoted_objects += outcome.demoted;
        self.stats.compaction.promoted_objects += outcome.promoted;
    }

    fn write_sst_files(
        &mut self,
        merged: &[(Key, SstEntry)],
    ) -> Result<(Vec<Arc<SstFile>>, Nanos)> {
        let mut files = Vec::new();
        let mut cost = Nanos::ZERO;
        if merged.is_empty() {
            return Ok((files, cost));
        }
        let target = self.options.sst_target_bytes;
        let mut builder = SstBuilder::new(self.manifest.allocate_file_id()).for_partition(self.id);
        for (key, entry) in merged {
            builder.add(key.clone(), entry.clone());
            if builder.size_bytes() >= target {
                let (file, c) = builder.finish(&self.flash_dev);
                cost += c;
                files.push(Arc::new(file));
                builder = SstBuilder::new(self.manifest.allocate_file_id()).for_partition(self.id);
            }
        }
        if !builder.is_empty() {
            let (file, c) = builder.finish(&self.flash_dev);
            cost += c;
            files.push(Arc::new(file));
        }
        Ok((files, cost))
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Simulate a crash (losing all DRAM state) followed by recovery: the
    /// B-tree index is rebuilt from a scan of the NVM slabs, keeping only
    /// the newest timestamp per key, and the bucket map is reconstructed
    /// from the slab scan plus the flash manifest. Any in-flight
    /// background compaction job is implicitly aborted: the epoch bump
    /// makes its install a no-op, and since execution never mutates
    /// partition state the partition recovers to exactly its last
    /// installed state. Returns the simulated recovery time.
    pub(crate) fn crash_and_recover(&mut self) -> Nanos {
        self.epoch += 1;
        self.promote_pending = false;
        self.cache.clear();
        debug_assert!(self.cache.is_empty(), "a crash loses all DRAM state");
        {
            let mut rs = self.lock_read_side();
            *rs = ReadSideState::default();
        }
        self.read_counters = ReadSideCounters::default();
        self.index.clear();
        let tracker_capacity =
            (self.options.tracker_capacity() / self.options.num_partitions).max(8);
        self.tracker = ClockTracker::new(tracker_capacity);
        self.mapper = Mapper::new();
        self.buckets = BucketMap::new(self.options.compaction.bucket_size_keys);

        let cost = self.slab.recovery_scan_cost();
        // First pass: verify every slot. A key with *any* corrupt slot is
        // quarantined whole — a corrupt slot's timestamp cannot be
        // trusted, so newest-version selection among its siblings could
        // resurrect a superseded value. Recovery quarantines; it never
        // guesses.
        let scanned: Vec<(NvmAddress, Key, u64, bool, bool)> = self
            .slab
            .scan()
            .map(|(addr, slot)| {
                (
                    addr,
                    slot.key.clone(),
                    slot.timestamp,
                    slot.value.is_empty(),
                    slot.verify(),
                )
            })
            .collect();
        let corrupt_ids: HashSet<u64> = scanned
            .iter()
            .filter(|(_, _, _, _, ok)| !ok)
            .map(|(_, key, _, _, _)| key.id())
            .collect();
        let mut newest: std::collections::HashMap<Key, (NvmAddress, u64, bool)> =
            std::collections::HashMap::new();
        let mut stale: Vec<NvmAddress> = Vec::new();
        let mut max_ts = 0u64;
        for (addr, key, timestamp, tombstone, ok) in scanned {
            if !ok {
                self.note_checksum_failure();
            }
            if corrupt_ids.contains(&key.id()) {
                // Every slot of a corrupt key is dropped, clean siblings
                // included.
                stale.push(addr);
                continue;
            }
            max_ts = max_ts.max(timestamp);
            match newest.get(&key) {
                Some((_, ts, _)) if *ts >= timestamp => stale.push(addr),
                _ => {
                    if let Some((old, _, _)) = newest.insert(key, (addr, timestamp, tombstone)) {
                        stale.push(old);
                    }
                }
            }
        }
        // Garbage-collect superseded duplicate slots (e.g. slots orphaned
        // by a bug or torn multi-slot sequence): recovery must leave
        // exactly one slot per key, or the next recovery could pick a
        // different winner.
        for addr in stale {
            self.slab
                .remove(addr)
                .expect("recovery GC: a slot just seen by the slab scan must be removable");
        }
        for (key, (addr, timestamp, tombstone)) in newest {
            self.buckets.on_nvm_insert(key.id());
            self.index.insert(
                key,
                IndexEntry {
                    addr,
                    timestamp,
                    tombstone,
                },
            );
        }
        for id in corrupt_ids {
            if self.quarantined.insert(id) {
                self.integrity.quarantined_objects += 1;
            }
        }
        let mut flash_corrupt: Vec<Key> = Vec::new();
        for (key, entry) in self.log.iter() {
            if entry.verify() {
                self.buckets.on_flash_insert(key.id());
            } else {
                flash_corrupt.push(key.clone());
            }
        }
        for key in flash_corrupt {
            self.note_checksum_failure();
            if !self.index.contains_key(&key) {
                self.quarantine_key(&key);
            }
        }
        self.maybe_degrade();
        self.scrub_cursor = None;
        // The history buffer is DRAM state: snapshots pinned across a
        // crash lose their preserved versions (a snapshot read may then
        // see a key as absent, never a stale value — live versions with
        // `seq <= pinned` are by definition the pinned-time state).
        self.clear_history();
        // The commit clock is rebuilt from the largest persisted
        // sequence; it never moves backwards, so sequences are not
        // reused even when flash holds later versions than the slabs.
        self.seq.advance_past(max_ts);
        self.advance_fg(cost);
        cost
    }

    // ------------------------------------------------------------------
    // Scrubbing
    // ------------------------------------------------------------------

    /// One budget-bounded scrub pass: verify NVM slots in index order,
    /// then flash files in key order. Corrupt objects are repaired from
    /// a surviving clean copy — a newer NVM version shadowing a corrupt
    /// flash record, or the DRAM cache's last committed value — and
    /// quarantined otherwise. Files containing corrupt records are
    /// rewritten without them, so a later pass over the same data comes
    /// back clean. A completed pass that found no corruption re-arms a
    /// degraded partition.
    pub(crate) fn scrub_pass(&mut self, budget_bytes: u64) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut budget = budget_bytes.max(1);
        let mut cost = Nanos::ZERO;
        let mut cursor = self
            .scrub_cursor
            .take()
            .unwrap_or(ScrubCursor::Nvm(Key::min()));

        if let ScrubCursor::Nvm(start) = cursor.clone() {
            let mut corrupt: Vec<Key> = Vec::new();
            let mut resume: Option<Key> = None;
            let mut nvm_bytes = 0u64;
            for (key, entry) in self.index.range_from(&start) {
                if budget == 0 {
                    resume = Some(key.clone());
                    break;
                }
                report.examined += 1;
                let slot_bytes = match self.slab.peek(entry.addr) {
                    Some(slot) => {
                        if !slot.verify() {
                            corrupt.push(key.clone());
                        }
                        slot.value.len() as u64 + 64
                    }
                    None => {
                        // Dangling index entry: treat as corrupt.
                        corrupt.push(key.clone());
                        64
                    }
                };
                nvm_bytes += slot_bytes;
                report.examined_bytes += slot_bytes;
                budget = budget.saturating_sub(slot_bytes);
            }
            if nvm_bytes > 0 {
                cost += self.nvm_dev.read_sequential(nvm_bytes);
            }
            for key in corrupt {
                report.corrupt_found += 1;
                self.note_checksum_failure();
                // Drop the corrupt slot before attempting a repair.
                if let Some(entry) = self.index.get(&key).copied() {
                    let _ = self.slab.remove(entry.addr);
                    self.index.remove(&key);
                    self.buckets.on_nvm_remove(key.id());
                }
                self.scrub_repair_or_quarantine(key, &mut report, &mut cost);
            }
            match resume {
                Some(key) => {
                    return self.finish_scrub_pass(report, cost, Some(ScrubCursor::Nvm(key)));
                }
                None => cursor = ScrubCursor::Flash(Key::min()),
            }
        }

        let ScrubCursor::Flash(start) = cursor else {
            unreachable!("the NVM phase either returned or advanced the cursor to flash");
        };
        // Snapshot the file set: rebuilds below swap files out of the
        // log mid-walk.
        let files: Vec<Arc<SstFile>> = self
            .log
            .files()
            .iter()
            .filter(|f| f.min_key() >= &start)
            .cloned()
            .collect();
        for file in files {
            if budget == 0 {
                return self.finish_scrub_pass(
                    report,
                    cost,
                    Some(ScrubCursor::Flash(file.min_key().clone())),
                );
            }
            let bytes = file.size_bytes();
            report.examined += file.iter().count() as u64;
            report.examined_bytes += bytes;
            budget = budget.saturating_sub(bytes);
            cost += self.flash_dev.read_sequential(bytes);
            let corrupt = file.corrupt_keys();
            if corrupt.is_empty() {
                continue;
            }
            report.corrupt_found += corrupt.len() as u64;
            // Rewrite the file without its corrupt records so the next
            // pass over this range comes back clean.
            let keep: Vec<(Key, SstEntry)> =
                file.iter().filter(|(_, e)| e.verify()).cloned().collect();
            let mut builder =
                SstBuilder::new(self.manifest.allocate_file_id()).for_partition(self.id);
            for (k, e) in keep {
                builder.add(k, e);
            }
            let mut new_files: Vec<Arc<SstFile>> = Vec::new();
            if !builder.is_empty() {
                let (rebuilt, c) = builder.finish(&self.flash_dev);
                cost += c;
                new_files.push(Arc::new(rebuilt));
            }
            let old_id = file.id();
            if self.manifest.remove_file(old_id).is_ok() {
                let _ = self.log.install(&[old_id], new_files.clone());
                for f in &new_files {
                    let _ = self.manifest.add_file(f.clone());
                }
                self.manifest.collect_garbage(&self.flash_dev);
            }
            for key in corrupt {
                self.note_checksum_failure();
                if self.index.contains_key(&key) {
                    // A newer NVM version shadows the corrupt record:
                    // dropping it from the rebuilt file *is* the repair.
                    report.repaired += 1;
                    self.integrity.scrub_repairs += 1;
                } else {
                    self.scrub_repair_or_quarantine(key, &mut report, &mut cost);
                }
            }
        }
        self.finish_scrub_pass(report, cost, None)
    }

    /// Repair a corrupt object by re-inserting the DRAM cache's last
    /// committed value (writes invalidate the cache, so a surviving
    /// entry is exactly the newest committed version), or quarantine it
    /// when no clean copy exists.
    fn scrub_repair_or_quarantine(&mut self, key: Key, report: &mut ScrubReport, cost: &mut Nanos) {
        let cached = self.cache.get(&key);
        if let Some(value) = cached {
            let ts = self.seq.allocate();
            if let Ok((addr, c)) = self.slab.insert(key.clone(), value, ts) {
                *cost += c;
                self.index.insert(
                    key.clone(),
                    IndexEntry {
                        addr,
                        timestamp: ts,
                        tombstone: false,
                    },
                );
                self.buckets.on_nvm_insert(key.id());
                self.quarantined.remove(&key.id());
                report.repaired += 1;
                self.integrity.scrub_repairs += 1;
                return;
            }
        }
        if self.quarantined.insert(key.id()) {
            self.integrity.quarantined_objects += 1;
        }
        report.quarantined += 1;
        self.maybe_degrade();
    }

    /// Book-keep the end of a scrub pass: park (or clear) the resume
    /// cursor, charge the IO to the partition's background timeline, and
    /// re-arm a degraded partition after a completed clean pass.
    fn finish_scrub_pass(
        &mut self,
        mut report: ScrubReport,
        cost: Nanos,
        cursor: Option<ScrubCursor>,
    ) -> ScrubReport {
        report.completed = cursor.is_none();
        self.scrub_cursor = cursor;
        if !cost.is_zero() {
            self.busy_until = self.busy_until.max(self.fg()) + cost;
        }
        if report.completed {
            self.integrity.scrub_passes += 1;
            if report.corrupt_found == 0 {
                self.integrity.scrub_clean_passes += 1;
                if self.health == PartitionHealth::Degraded {
                    self.health = PartitionHealth::Healthy;
                    self.integrity.degraded_recovered += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_storage::DeviceProfile;

    fn small_options(keys: u64) -> Arc<Options> {
        let mut options = Options::scaled_default(keys);
        options.num_partitions = 1;
        options.compaction.bucket_size_keys = 256;
        options.sst_target_bytes = 32 * 1024;
        Arc::new(options)
    }

    fn storage_for(options: &Options) -> TieredStorage {
        TieredStorage::new(
            DeviceProfile::optane_nvm(options.nvm_capacity_bytes),
            options.flash_profile,
        )
    }

    fn partition(keys: u64) -> Partition {
        let options = small_options(keys);
        let storage = storage_for(&options);
        Partition::new(0, options, &storage, Arc::new(CommitSequencer::new())).unwrap()
    }

    #[test]
    fn put_get_roundtrip_served_from_nvm_then_dram() {
        let mut p = partition(1000);
        p.put(Key::from_id(1), Value::filled(500, 7)).unwrap();
        // First read comes from NVM, second from the DRAM cache.
        let first = p.get(&Key::from_id(1)).unwrap();
        assert_eq!(first.source, ReadSource::Nvm);
        assert_eq!(first.value.unwrap().len(), 500);
        let second = p.get(&Key::from_id(1)).unwrap();
        assert_eq!(second.source, ReadSource::Dram);
        assert!(second.latency < first.latency);
        let missing = p.get(&Key::from_id(999)).unwrap();
        assert!(missing.value.is_none());
        assert_eq!(missing.source, ReadSource::NotFound);
    }

    #[test]
    fn updates_are_in_place_and_latest_version_wins() {
        let mut p = partition(1000);
        p.put(Key::from_id(5), Value::filled(200, 1)).unwrap();
        p.put(Key::from_id(5), Value::filled(210, 2)).unwrap();
        let got = p.get(&Key::from_id(5)).unwrap();
        assert_eq!(got.value.unwrap().as_bytes()[0], 2);
        assert_eq!(p.nvm_object_count(), 1);
    }

    #[test]
    fn filling_nvm_triggers_demotion_to_flash() {
        let keys = 4_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        assert!(
            p.flash_object_count() > 0,
            "cold objects must have been demoted to flash"
        );
        assert!(p.nvm_utilization() <= 1.0);
        assert!(p.stats().compaction.jobs > 0);
        assert!(p.stats().compaction.demoted_objects > 0);
        // Every key must still be readable (from NVM or flash).
        for id in (0..keys).step_by(97) {
            let got = p.get(&Key::from_id(id)).unwrap();
            assert!(got.value.is_some(), "key {id} lost after compaction");
        }
    }

    #[test]
    fn hot_keys_stay_on_nvm_after_compactions() {
        let keys = 4_000u64;
        let mut p = partition(keys);
        // Load everything once.
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Make keys 0..50 hot with repeated reads and updates.
        for _ in 0..20 {
            for id in 0..50u64 {
                p.get(&Key::from_id(id)).unwrap();
                p.put(Key::from_id(id), Value::filled(1000, 2)).unwrap();
            }
            // Interleave cold inserts to force more compactions.
            for id in 0..200u64 {
                p.put(Key::from_id(keys + id), Value::filled(1000, 3))
                    .unwrap();
            }
        }
        let mut hot_from_fast = 0;
        for id in 0..50u64 {
            let got = p.get(&Key::from_id(id)).unwrap();
            if got.source != ReadSource::Flash {
                hot_from_fast += 1;
            }
        }
        assert!(
            hot_from_fast >= 40,
            "most hot keys should be served from DRAM/NVM, got {hot_from_fast}/50"
        );
    }

    #[test]
    fn delete_hides_flash_versions_via_tombstones() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        assert!(p.flash_object_count() > 0);
        // Delete a key that was demoted to flash.
        let victim = (0..keys)
            .find(|id| !p.index.contains_key(&Key::from_id(*id)))
            .expect("some key lives only on flash");
        p.delete(&Key::from_id(victim)).unwrap();
        let got = p.get(&Key::from_id(victim)).unwrap();
        assert!(got.value.is_none(), "deleted key must not be readable");
        // Deleting an NVM-only key removes it immediately.
        let nvm_key = (0..keys)
            .find(|id| {
                p.index
                    .get(&Key::from_id(*id))
                    .map(|e| !e.tombstone)
                    .unwrap_or(false)
            })
            .expect("some key lives on NVM");
        p.delete(&Key::from_id(nvm_key)).unwrap();
        assert!(p.get(&Key::from_id(nvm_key)).unwrap().value.is_none());
    }

    #[test]
    fn scan_merges_nvm_and_flash_in_order() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(500, (id % 251) as u8))
                .unwrap();
        }
        // An unbounded pin sees every live version: the plain merge path.
        let (entries, cost) = p
            .snapshot_scan_collect(&Key::from_id(100), 50, u64::MAX)
            .unwrap();
        assert_eq!(entries.len(), 50);
        let ids: Vec<u64> = entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (100..150).collect();
        assert_eq!(ids, expected);
        assert!(cost > Nanos::ZERO);
    }

    #[test]
    fn crash_recovery_rebuilds_index_from_slabs() {
        let keys = 2_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(800, 1)).unwrap();
        }
        p.put(Key::from_id(3), Value::filled(800, 42)).unwrap();
        let nvm_before = p.nvm_object_count();
        let flash_before = p.flash_object_count();
        let cost = p.crash_and_recover();
        assert!(cost > Nanos::ZERO);
        assert_eq!(p.nvm_object_count(), nvm_before);
        assert_eq!(p.flash_object_count(), flash_before);
        for id in (0..keys).step_by(53) {
            assert!(p.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        assert_eq!(
            p.get(&Key::from_id(3)).unwrap().value.unwrap().as_bytes()[0],
            42
        );
    }

    #[test]
    fn compaction_stats_and_write_stalls_accumulate_under_pressure() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for round in 0..3u64 {
            for id in 0..keys {
                p.put(Key::from_id(id), Value::filled(1000, round as u8))
                    .unwrap();
            }
        }
        let stats = p.stats();
        assert!(stats.compaction.jobs > 0);
        assert!(stats.compaction.total_time > Nanos::ZERO);
        assert!(stats.user_bytes_written >= keys * 1000);
        assert!(p.elapsed() >= p.fg());
    }

    #[test]
    fn stall_accounting_identities_hold_under_pressure() {
        // The satellite invariants: compaction time splits exactly into
        // fast- and slow-tier time, and total foreground stalls can never
        // exceed the partition's elapsed virtual time (the fix: stalls are
        // measured from the op's position `fg + accrued`, not from `fg`,
        // so a forced reclamation and the watermark check in the same op
        // cannot double-charge the same wait).
        let keys = 3_000u64;
        let mut p = partition(keys);
        for round in 0..4u64 {
            for id in 0..keys {
                p.put(
                    Key::from_id(id % (keys * 2)),
                    Value::filled(1000, round as u8),
                )
                .unwrap();
            }
        }
        let stats = p.stats().compaction;
        assert!(stats.stall_time > Nanos::ZERO, "pressure must cause stalls");
        assert_eq!(
            stats.total_time,
            stats.fast_tier_time + stats.slow_tier_time,
            "compaction time must split exactly into tier times"
        );
        assert!(
            stats.stall_time <= p.elapsed(),
            "stalls ({:?}) cannot exceed elapsed virtual time ({:?})",
            stats.stall_time,
            p.elapsed()
        );
    }

    #[test]
    fn install_skips_entries_rewritten_by_the_foreground() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        // Plan a forced demotion covering everything, then update one of
        // the planned victims and delete another before installing.
        let job = p
            .plan_demotion(true, p.fg())
            .expect("loaded partition must yield a job");
        let updated = job.demote[0].key.clone();
        let deleted = job
            .demote
            .iter()
            .map(|d| d.key.clone())
            .find(|k| *k != updated)
            .expect("job demotes more than one key");
        let cpu = p.cpu;
        let dev = p.flash_dev.clone();
        p.put(updated.clone(), Value::filled(900, 77)).unwrap();
        p.delete(&deleted).unwrap();

        let exec = execute_job(job, &cpu, &dev);
        let outcome = p
            .install_compaction(exec)
            .unwrap()
            .expect("same epoch: job installs");
        assert!(outcome.duration > Nanos::ZERO);
        // The interleaved update wins and the deleted key stays dead: the
        // stale planned versions must neither clobber NVM nor resurface
        // from the rewritten flash files.
        let got = p.get(&updated).unwrap();
        assert_eq!(got.value.expect("updated key lives").as_bytes()[0], 77);
        assert!(p.get(&deleted).unwrap().value.is_none());
        // Still true after dropping all DRAM state.
        p.crash_and_recover();
        assert_eq!(
            p.get(&updated).unwrap().value.expect("survives").as_bytes()[0],
            77
        );
        assert!(p.get(&deleted).unwrap().value.is_none());
    }

    #[test]
    fn stale_epoch_jobs_are_discarded() {
        let keys = 2_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        let job = p.plan_demotion(true, p.fg()).expect("job");
        let cpu = p.cpu;
        let dev = p.flash_dev.clone();
        let exec = execute_job(job, &cpu, &dev);
        // A crash between execute and install aborts the job.
        p.crash_and_recover();
        let nvm_before = p.nvm_object_count();
        let flash_before = p.flash_object_count();
        assert!(p.install_compaction(exec).unwrap().is_none());
        assert_eq!(p.nvm_object_count(), nvm_before);
        assert_eq!(p.flash_object_count(), flash_before);
    }
}
