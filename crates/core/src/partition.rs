//! A single shared-nothing partition of PrismDB.
//!
//! Each partition owns a disjoint slice of the key space and all the data
//! structures for it (Figure 3 of the paper): the NVM slab store and its
//! B-tree index, the flash sorted log and manifest, the clock tracker and
//! mapper, the bucket map for approx-MSC, and the compaction planner. A
//! partition also owns its virtual clocks: a foreground clock advanced by
//! client operations and a background completion time advanced by
//! compaction work, which together produce write-stall behaviour when
//! compactions cannot keep up.

use std::sync::Arc;

use prism_compaction::{
    msc_score, BucketMap, CompactionPlanner, CompactionPolicy, RangeStatsBuilder,
    ReadTriggeredController,
};
use prism_flash::{Manifest, SortedLog, SstBuilder, SstEntry, SstFile};
use prism_index::BTreeIndex;
use prism_nvm::{NvmAddress, SlabConfig, SlabStore};
use prism_storage::{CpuCosts, Device, TieredStorage};
use prism_tracker::{ClockTracker, Mapper, PinDecision};
use prism_types::{CompactionStats, Key, Lookup, Nanos, PrismError, ReadSource, Result, Value};

use crate::cache::LruCache;
use crate::options::Options;

/// Entry in the partition's B-tree index describing the NVM-resident
/// version of a key.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndexEntry {
    addr: NvmAddress,
    timestamp: u64,
    tombstone: bool,
}

/// Per-partition counters merged into [`prism_types::EngineStats`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PartitionStats {
    pub reads_from_dram: u64,
    pub reads_from_nvm: u64,
    pub reads_from_flash: u64,
    pub reads_not_found: u64,
    pub user_bytes_written: u64,
    pub compaction: CompactionStats,
}

/// Result of one compaction job.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct CompactionOutcome {
    pub duration: Nanos,
    pub flash_time: Nanos,
    pub demoted: u64,
    pub promoted: u64,
}

pub(crate) struct Partition {
    options: Arc<Options>,
    cpu: CpuCosts,
    nvm_dev: Arc<Device>,
    flash_dev: Arc<Device>,
    slab: SlabStore,
    index: BTreeIndex<Key, IndexEntry>,
    log: SortedLog,
    manifest: Manifest,
    tracker: ClockTracker,
    mapper: Mapper,
    buckets: BucketMap,
    planner: CompactionPlanner,
    read_trigger: Option<ReadTriggeredController>,
    cache: LruCache,
    next_timestamp: u64,
    fg: Nanos,
    busy_until: Nanos,
    flash_reads_since_promotion: u64,
    stats: PartitionStats,
}

impl Partition {
    pub(crate) fn new(id: usize, options: Arc<Options>, storage: &TieredStorage) -> Result<Self> {
        let partitions = options.num_partitions as u64;
        let slab_config = SlabConfig {
            slot_sizes: options.slab_slot_sizes.clone(),
            capacity_bytes: (options.nvm_capacity_bytes / partitions).max(4096),
        };
        let slab = SlabStore::new(slab_config, storage.nvm.clone())?;
        let tracker_capacity = (options.tracker_capacity() / options.num_partitions).max(8);
        let mut compaction_config = options.compaction;
        // Give each partition its own deterministic-but-distinct seed.
        compaction_config.seed = compaction_config.seed.wrapping_add(id as u64);
        let planner = CompactionPlanner::new(compaction_config)?;
        Ok(Partition {
            cpu: storage.cpu,
            nvm_dev: storage.nvm.clone(),
            flash_dev: storage.flash.clone(),
            slab,
            index: BTreeIndex::new(),
            log: SortedLog::new(),
            manifest: Manifest::new(),
            tracker: ClockTracker::new(tracker_capacity),
            mapper: Mapper::new(),
            buckets: BucketMap::new(options.compaction.bucket_size_keys),
            planner,
            read_trigger: options.read_trigger.map(ReadTriggeredController::new),
            cache: LruCache::new(options.dram_cache_bytes / partitions),
            next_timestamp: 1,
            fg: Nanos::ZERO,
            busy_until: Nanos::ZERO,
            flash_reads_since_promotion: 0,
            stats: PartitionStats::default(),
            options,
        })
    }

    pub(crate) fn elapsed(&self) -> Nanos {
        self.fg.max(self.busy_until)
    }

    pub(crate) fn stats(&self) -> PartitionStats {
        self.stats
    }

    pub(crate) fn nvm_object_count(&self) -> usize {
        self.slab.object_count()
    }

    pub(crate) fn flash_object_count(&self) -> usize {
        self.log.total_entries()
    }

    pub(crate) fn nvm_utilization(&self) -> f64 {
        self.slab.usage().utilization()
    }

    pub(crate) fn clock_histogram(&self) -> [u64; 4] {
        self.mapper.histogram()
    }

    fn next_ts(&mut self) -> u64 {
        let ts = self.next_timestamp;
        self.next_timestamp += 1;
        ts
    }

    /// Track an access and update the popularity structures; returns the
    /// CPU cost charged for it.
    fn observe_access(&mut self, key: &Key, on_flash: bool) -> Nanos {
        let event = self.tracker.access(key, on_flash);
        self.mapper.apply(&event);
        self.buckets.on_access(key.id());
        if let Some((evicted, _)) = &event.evicted {
            self.buckets.on_tracker_evict(evicted.id());
        }
        self.cpu.tracker_op
    }

    fn observe_for_read_trigger(&mut self, is_read: bool, source: ReadSource) {
        let promote_now = if let Some(ctrl) = &mut self.read_trigger {
            ctrl.observe_op(
                is_read,
                source == ReadSource::Nvm,
                source == ReadSource::Flash,
            );
            if source == ReadSource::Flash {
                self.flash_reads_since_promotion += 1;
            }
            ctrl.promotions_enabled()
                && self.options.promotions_enabled
                && self.flash_reads_since_promotion >= self.options.promotion_batch_flash_reads
        } else {
            false
        };
        if promote_now {
            self.flash_reads_since_promotion = 0;
            if let Ok(outcome) = self.run_promotion_compaction() {
                self.busy_until = self.busy_until.max(self.fg) + outcome.duration;
            }
        }
    }

    // ------------------------------------------------------------------
    // Client operations
    // ------------------------------------------------------------------

    pub(crate) fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let ts = self.next_ts();
        let key_id = key.id();
        let value_len = value.len() as u64;

        let existing = self.index.get(&key).copied();
        let write_result = self.write_to_slab(existing, &key, value.clone(), ts);
        let (addr, write_cost) = match write_result {
            Ok(ok) => ok,
            Err(PrismError::CapacityExceeded { .. }) => {
                // Free space with forced compactions, then retry once.
                let freed = self.free_space_forcibly()?;
                self.busy_until = self.busy_until.max(self.fg) + freed;
                let existing = self.index.get(&key).copied();
                self.write_to_slab(existing, &key, value.clone(), ts)?
            }
            Err(err) => return Err(err),
        };
        cost += write_cost;

        let was_new = existing.is_none();
        self.index.insert(
            key.clone(),
            IndexEntry {
                addr,
                timestamp: ts,
                tombstone: false,
            },
        );
        if was_new {
            self.buckets.on_nvm_insert(key_id);
        }
        cost += self.observe_access(&key, false);
        self.cache.remove(&key);
        self.stats.user_bytes_written += value_len;

        // Watermark check: demote cold data if NVM is (nearly) full.
        let stall = self.maybe_demote()?;
        cost += stall;

        self.observe_for_read_trigger(false, ReadSource::NotFound);
        self.fg += cost;
        Ok(cost)
    }

    fn write_to_slab(
        &mut self,
        existing: Option<IndexEntry>,
        key: &Key,
        value: Value,
        ts: u64,
    ) -> Result<(NvmAddress, Nanos)> {
        match existing {
            Some(entry) if !entry.tombstone => self.slab.update(entry.addr, key, value, ts),
            Some(entry) => {
                // The key currently has a tombstone on NVM: write the new
                // value first, then reclaim the tombstone slot, so a failed
                // insert cannot leave a dangling index entry.
                let inserted = self.slab.insert(key.clone(), value, ts)?;
                self.slab.remove(entry.addr)?;
                Ok(inserted)
            }
            None => self.slab.insert(key.clone(), value, ts),
        }
    }

    pub(crate) fn get(&mut self, key: &Key) -> Result<Lookup> {
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let mut source = ReadSource::NotFound;
        let mut value: Option<Value> = None;

        if let Some(cached) = self.cache.get(key) {
            cost += self.cpu.dram_hit;
            source = ReadSource::Dram;
            value = Some(cached);
        } else if let Some(entry) = self.index.get(key).copied() {
            if !entry.tombstone {
                let (slot, read_cost) = self.slab.read(entry.addr)?;
                let found = slot.value.clone();
                cost += read_cost;
                source = ReadSource::Nvm;
                self.cache.insert(key.clone(), found.clone());
                value = Some(found);
            }
        } else {
            // Flash path: the SST index and bloom filter live on NVM.
            cost += self.cpu.bloom_probe;
            if let Some(file) = self.log.lookup(key) {
                let probe = file.probe(key);
                if probe.may_contain {
                    cost += self.nvm_dev.read_random(512);
                    if probe.data_block_bytes > 0 {
                        cost += self.flash_dev.read_random(probe.data_block_bytes);
                    }
                }
                if let Some(entry) = probe.entry {
                    if let Some(found) = entry.value {
                        source = ReadSource::Flash;
                        self.cache.insert(key.clone(), found.clone());
                        value = Some(found);
                    }
                }
            }
        }

        match source {
            ReadSource::Dram => self.stats.reads_from_dram += 1,
            ReadSource::Nvm => self.stats.reads_from_nvm += 1,
            ReadSource::Flash => self.stats.reads_from_flash += 1,
            ReadSource::NotFound => self.stats.reads_not_found += 1,
        }
        if value.is_some() {
            cost += self.observe_access(key, source == ReadSource::Flash);
        }
        self.observe_for_read_trigger(true, source);
        self.fg += cost;
        Ok(Lookup {
            value,
            latency: cost,
            source,
        })
    }

    pub(crate) fn delete(&mut self, key: &Key) -> Result<Nanos> {
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let ts = self.next_ts();
        let key_id = key.id();

        let existing = self.index.get(key).copied();
        // Does any version of this key exist on flash?
        cost += self.cpu.bloom_probe;
        let on_flash = self
            .log
            .lookup(key)
            .map(|file| file.probe(key).entry.is_some())
            .unwrap_or(false);

        if let Some(entry) = existing {
            // Reclaim the key's current NVM slot whether it holds a value
            // or an old tombstone: deleting an already-tombstoned key must
            // not orphan the previous tombstone slot, or a recovery slab
            // scan could later resurrect it and shadow a newer flash
            // version (a fresh tombstone is re-written below if a flash
            // version still needs shadowing).
            self.slab.remove(entry.addr)?;
            self.buckets.on_nvm_remove(key_id);
            self.index.remove(key);
        }

        if on_flash {
            // Write a tombstone to NVM so the flash version is hidden until
            // a compaction merges and drops both.
            let (addr, write_cost) = match self.slab.insert(key.clone(), Value::empty(), ts) {
                Ok(ok) => ok,
                Err(PrismError::CapacityExceeded { .. }) => {
                    let freed = self.free_space_forcibly()?;
                    self.busy_until = self.busy_until.max(self.fg) + freed;
                    self.slab.insert(key.clone(), Value::empty(), ts)?
                }
                Err(err) => return Err(err),
            };
            cost += write_cost;
            self.index.insert(
                key.clone(),
                IndexEntry {
                    addr,
                    timestamp: ts,
                    tombstone: true,
                },
            );
            self.buckets.on_nvm_insert(key_id);
        }

        self.cache.remove(key);
        let stall = self.maybe_demote()?;
        cost += stall;
        self.fg += cost;
        Ok(cost)
    }

    /// Collect up to `limit` live key-value pairs with keys `>= start` from
    /// this partition, in key order, merging the NVM and flash views.
    pub(crate) fn scan_collect(
        &mut self,
        start: &Key,
        limit: usize,
    ) -> Result<(Vec<(Key, Value)>, Nanos)> {
        let mut cost = self.cpu.request_overhead + self.cpu.index_op;
        let mut out: Vec<(Key, Value)> = Vec::with_capacity(limit);
        if limit == 0 {
            self.fg += cost;
            return Ok((out, cost));
        }

        let mut nvm_iter = self.index.range_from(start).peekable();
        // Flash iterator: walk files in key order starting from the first
        // file that can contain `start`.
        let files = self.log.files();
        let mut file_idx = files.partition_point(|f| f.max_key() < start);
        let mut flash_buf: Vec<(Key, SstEntry)> = Vec::new();
        let mut flash_pos = 0usize;
        let mut flash_bytes_consumed = 0u64;
        let max_key = Key::from_id(u64::MAX);

        let refill = |idx: &mut usize, buf: &mut Vec<(Key, SstEntry)>, pos: &mut usize| {
            while *pos >= buf.len() && *idx < files.len() {
                *buf = files[*idx]
                    .range(start, &max_key)
                    .map(|(k, e)| (k.clone(), e.clone()))
                    .collect();
                *pos = 0;
                *idx += 1;
            }
        };

        let mut nvm_reads = 0u64;
        while out.len() < limit {
            refill(&mut file_idx, &mut flash_buf, &mut flash_pos);
            let nvm_next = nvm_iter.peek().map(|(k, _)| (*k).clone());
            let flash_next = flash_buf.get(flash_pos).map(|(k, _)| k.clone());
            let take_nvm = match (&nvm_next, &flash_next) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(nk), Some(fk)) => nk <= fk,
            };
            if take_nvm {
                let nk = nvm_next.expect("take_nvm implies an NVM key");
                let (_, entry) = nvm_iter.next().expect("peeked");
                if flash_next.as_ref() == Some(&nk) {
                    // The flash version of this key is stale: skip it.
                    flash_pos += 1;
                }
                if !entry.tombstone {
                    if let Some(slot) = self.slab.peek(entry.addr) {
                        out.push((nk, slot.value.clone()));
                        nvm_reads += 1;
                    }
                }
            } else {
                let (fk, entry) = &flash_buf[flash_pos];
                flash_pos += 1;
                if let Some(v) = &entry.value {
                    flash_bytes_consumed += v.len() as u64 + fk.len() as u64;
                    out.push((fk.clone(), v.clone()));
                }
            }
        }
        drop(nvm_iter);

        if nvm_reads > 0 {
            cost += self.nvm_dev.read_random(4096) * nvm_reads.div_ceil(4);
        }
        if flash_bytes_consumed > 0 {
            cost += self.flash_dev.read_sequential(flash_bytes_consumed);
        }
        cost += self.cpu.merge_per_object * out.len() as u64;
        self.fg += cost;
        Ok((out, cost))
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// If NVM is above the high watermark, run demotion compactions until it
    /// drops below the low watermark. Returns the foreground stall charged
    /// to the triggering operation.
    fn maybe_demote(&mut self) -> Result<Nanos> {
        if self.slab.usage().utilization() < self.options.high_watermark {
            return Ok(Nanos::ZERO);
        }
        // If a previous compaction is still "running" in the background, the
        // write has to wait for it before space can be freed.
        let stall = self.busy_until.saturating_sub(self.fg);
        let mut background = Nanos::ZERO;
        let mut rounds = 0;
        while self.slab.usage().utilization() > self.options.low_watermark {
            let outcome = self.run_demotion_compaction(false)?;
            background += outcome.duration;
            if outcome.demoted == 0 {
                let forced = self.run_demotion_compaction(true)?;
                background += forced.duration;
                if forced.demoted == 0 {
                    break;
                }
            }
            rounds += 1;
            if rounds > 128 {
                break;
            }
        }
        self.stats.compaction.stall_time += stall;
        self.busy_until = self.busy_until.max(self.fg) + background;
        Ok(stall)
    }

    /// Forced space reclamation used when a write hits a full slab store
    /// before the watermark machinery had a chance to run. Returns the
    /// background time spent.
    fn free_space_forcibly(&mut self) -> Result<Nanos> {
        let mut background = Nanos::ZERO;
        for _ in 0..8 {
            let outcome = self.run_demotion_compaction(true)?;
            background += outcome.duration;
            if outcome.demoted > 0 && self.slab.usage().utilization() < self.options.low_watermark {
                return Ok(background);
            }
            if outcome.demoted == 0 {
                break;
            }
        }
        // Safety valve: sampled candidates may all have been empty of NVM
        // objects. Compact the whole key space once, ignoring popularity,
        // so the write can proceed.
        let outcome = self.compact_range(&Key::min(), &Key::from_id(u64::MAX), true, false)?;
        self.record_compaction(&outcome);
        background += outcome.duration;
        Ok(background)
    }

    /// Candidate compaction key ranges: the key ranges of consecutive SST
    /// file windows, extended at both ends to cover NVM keys outside any
    /// flash file.
    fn candidate_ranges(&self) -> Vec<(Key, Key)> {
        if self.log.is_empty() {
            if self.index.is_empty() {
                return Vec::new();
            }
            return vec![(Key::min(), Key::from_id(u64::MAX))];
        }
        let files = self.log.files();
        let width = self.options.compaction.range_width_files.max(1);
        let mut ranges = Vec::new();
        // Chain the ranges so together they cover the entire key space:
        // NVM keys that fall in the gap between two flash files belong to
        // the range on their left and can still be demoted.
        let mut prev_end = Key::min();
        let mut i = 0;
        while i < files.len() {
            let window_end = (i + width).min(files.len());
            let start = prev_end.clone();
            let end = if window_end >= files.len() {
                Key::from_id(u64::MAX)
            } else {
                files[window_end - 1].max_key().clone()
            };
            prev_end = end.clone();
            ranges.push((start, end));
            i = window_end;
        }
        ranges
    }

    /// Score one candidate range according to the configured policy, adding
    /// the planning CPU time to `planning_cost`.
    fn score_candidate(&self, start: &Key, end: &Key, planning_cost: &mut Nanos) -> f64 {
        match self.options.compaction.policy {
            CompactionPolicy::Random => 0.0,
            CompactionPolicy::ApproxMsc => {
                *planning_cost += self.cpu.index_op;
                let stats = self.buckets.estimate(start.id(), end.id(), 0.25);
                msc_score(&stats)
            }
            CompactionPolicy::PreciseMsc => {
                let mut builder = RangeStatsBuilder::new();
                let tracked = self.tracker.len();
                for (key, _entry) in self.index.range_from(start).take_while(|(k, _)| *k <= end) {
                    let clock = self.tracker.clock_of(key);
                    let pinned = matches!(
                        self.mapper
                            .pin_decision(clock, self.options.pinning_threshold, tracked),
                        PinDecision::Pin
                    );
                    builder.add_nvm_object(clock, pinned);
                }
                for file in self.log.overlapping(start, end) {
                    for (key, _) in file.range(start, end) {
                        builder.add_flash_object(self.index.contains_key(key));
                    }
                }
                *planning_cost += self.cpu.merge_per_object * builder.objects_examined();
                msc_score(&builder.build())
            }
        }
    }

    fn run_demotion_compaction(&mut self, force: bool) -> Result<CompactionOutcome> {
        let candidates = self.candidate_ranges();
        if candidates.is_empty() {
            return Ok(CompactionOutcome::default());
        }
        let picked = self.planner.pick_candidate_indices(candidates.len());
        let mut planning_cost = Nanos::ZERO;
        let scored: Vec<(usize, f64)> = picked
            .iter()
            .map(|&i| {
                (
                    i,
                    self.score_candidate(&candidates[i].0, &candidates[i].1, &mut planning_cost),
                )
            })
            .collect();
        let Some(best) = self.planner.select_best(&scored) else {
            return Ok(CompactionOutcome::default());
        };
        let (start, end) = candidates[best].clone();
        let mut outcome =
            self.compact_range(&start, &end, force, self.options.promotions_enabled)?;
        outcome.duration += planning_cost;
        self.record_compaction(&outcome);
        Ok(outcome)
    }

    /// A promotion-oriented compaction: pick the range with the most popular
    /// flash-only objects and rewrite it, pulling those objects up to NVM.
    fn run_promotion_compaction(&mut self) -> Result<CompactionOutcome> {
        if self.log.is_empty() {
            return Ok(CompactionOutcome::default());
        }
        let candidates = self.candidate_ranges();
        let picked = self.planner.pick_candidate_indices(candidates.len());
        let scored: Vec<(usize, f64)> = picked
            .iter()
            .map(|&i| {
                let (start, end) = &candidates[i];
                (
                    i,
                    self.buckets
                        .popular_flash_only_objects(start.id(), end.id()),
                )
            })
            .collect();
        let Some(best) = scored
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| *i)
        else {
            return Ok(CompactionOutcome::default());
        };
        let (start, end) = candidates[best].clone();
        let outcome = self.compact_range(&start, &end, false, true)?;
        self.record_compaction(&outcome);
        Ok(outcome)
    }

    fn record_compaction(&mut self, outcome: &CompactionOutcome) {
        if outcome.duration.is_zero() {
            return;
        }
        self.stats.compaction.jobs += 1;
        self.stats.compaction.total_time += outcome.duration;
        self.stats.compaction.slow_tier_time += outcome.flash_time;
        self.stats.compaction.fast_tier_time += outcome.duration.saturating_sub(outcome.flash_time);
        self.stats.compaction.demoted_objects += outcome.demoted;
        self.stats.compaction.promoted_objects += outcome.promoted;
    }

    /// Merge the NVM objects in `[start, end]` with the overlapping SST
    /// files: demote unpopular NVM objects, drop stale flash versions and
    /// tombstoned keys, and optionally promote hot flash objects to NVM.
    fn compact_range(
        &mut self,
        start: &Key,
        end: &Key,
        force: bool,
        allow_promote: bool,
    ) -> Result<CompactionOutcome> {
        let mut duration = Nanos::ZERO;
        let mut flash_time = Nanos::ZERO;
        let tracked = self.tracker.len();
        let pin_threshold = self.options.pinning_threshold;

        // 1. Select the NVM objects to demote (unpopular ones, or everything
        //    in forced mode). Tombstones always participate so they can be
        //    merged away.
        let in_range: Vec<(Key, IndexEntry)> = self
            .index
            .range_from(start)
            .take_while(|(k, _)| *k <= end)
            .map(|(k, e)| (k.clone(), *e))
            .collect();
        let mut demote: Vec<(Key, IndexEntry)> = Vec::new();
        for (key, entry) in in_range {
            let pinned = if force || entry.tombstone {
                false
            } else {
                let clock = self.tracker.clock_of(&key);
                let decision = self.mapper.pin_decision(clock, pin_threshold, tracked);
                decision.should_pin(self.planner.draw())
            };
            if !pinned {
                demote.push((key, entry));
            }
        }

        // 2. Read the overlapping SST files from flash.
        let files = self.log.overlapping(start, end);
        let flash_bytes: u64 = files.iter().map(|f| f.size_bytes()).sum();
        if flash_bytes > 0 {
            let t = self.flash_dev.read_sequential(flash_bytes);
            duration += t;
            flash_time += t;
        }
        let flash_entries: Vec<(Key, SstEntry)> = files
            .iter()
            .flat_map(|f| f.iter().map(|(k, e)| (k.clone(), e.clone())))
            .collect();

        if demote.is_empty() && flash_entries.is_empty() {
            return Ok(CompactionOutcome::default());
        }

        // 3. Merge-sort the two sorted streams.
        duration += self.cpu.merge_per_object * (demote.len() as u64 + flash_entries.len() as u64);
        let mut merged: Vec<(Key, SstEntry)> = Vec::new();
        let mut promoted = 0u64;
        let mut demoted = 0u64;
        let mut removed_from_flash: Vec<u64> = Vec::new();
        let mut di = 0usize;
        let mut fi = 0usize;
        let nvm_headroom = self.options.low_watermark;

        while di < demote.len() || fi < flash_entries.len() {
            let take_nvm = match (demote.get(di), flash_entries.get(fi)) {
                (Some((nk, _)), Some((fk, _))) => nk <= fk,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_nvm {
                let (key, entry) = &demote[di];
                let same_key_on_flash = flash_entries
                    .get(fi)
                    .map(|(fk, _)| fk == key)
                    .unwrap_or(false);
                if same_key_on_flash {
                    // The flash version is stale: it is dropped by simply
                    // advancing past it.
                    fi += 1;
                }
                if entry.tombstone {
                    // Key is deleted everywhere once the merge completes.
                    removed_from_flash.push(key.id());
                } else if let Some(slot) = self.slab.peek(entry.addr) {
                    merged.push((
                        key.clone(),
                        SstEntry::value(slot.value.clone(), entry.timestamp),
                    ));
                }
                di += 1;
            } else {
                let (key, entry) = &flash_entries[fi];
                fi += 1;
                if entry.is_tombstone() {
                    // Single-level log: a tombstone with no newer version can
                    // be dropped entirely.
                    removed_from_flash.push(key.id());
                    continue;
                }
                let promote = allow_promote
                    && !self.index.contains_key(key)
                    && self.slab.usage().utilization() < nvm_headroom
                    && matches!(
                        self.mapper.pin_decision(
                            self.tracker.clock_of(key),
                            pin_threshold,
                            tracked
                        ),
                        PinDecision::Pin
                    );
                if promote {
                    let ts = self.next_ts();
                    match self.slab.insert(
                        key.clone(),
                        entry.value.clone().expect("not a tombstone"),
                        ts,
                    ) {
                        Ok((addr, cost)) => {
                            duration += cost;
                            self.index.insert(
                                key.clone(),
                                IndexEntry {
                                    addr,
                                    timestamp: ts,
                                    tombstone: false,
                                },
                            );
                            self.buckets.on_nvm_insert(key.id());
                            self.buckets.on_flash_remove(key.id());
                            self.tracker.set_location(key, false);
                            removed_from_flash.push(key.id());
                            promoted += 1;
                        }
                        Err(PrismError::CapacityExceeded { .. }) => {
                            merged.push((key.clone(), entry.clone()));
                        }
                        Err(err) => return Err(err),
                    }
                } else {
                    merged.push((key.clone(), entry.clone()));
                }
            }
        }

        // 4. Write the merged output as new SST files.
        let (new_files, write_cost) = self.write_sst_files(&merged)?;
        duration += write_cost;
        flash_time += write_cost;

        // 5. Apply metadata updates: demoted keys leave NVM, new flash keys
        //    are recorded, old files are retired.
        for (key, entry) in &demote {
            self.slab.remove(entry.addr)?;
            self.index.remove(key);
            self.buckets.on_nvm_remove(key.id());
            if !entry.tombstone {
                self.tracker.set_location(key, true);
                demoted += 1;
            }
        }
        for (key, _) in &merged {
            self.buckets.on_flash_insert(key.id());
        }
        for key_id in removed_from_flash {
            self.buckets.on_flash_remove(key_id);
        }
        let old_ids: Vec<u64> = files.iter().map(|f| f.id()).collect();
        for id in &old_ids {
            self.manifest.remove_file(*id)?;
        }
        let _retired = self.log.install(&old_ids, new_files.clone());
        for file in &new_files {
            self.manifest.add_file(file.clone())?;
        }
        drop(files);
        self.manifest.collect_garbage(&self.flash_dev);

        Ok(CompactionOutcome {
            duration,
            flash_time,
            demoted,
            promoted,
        })
    }

    fn write_sst_files(
        &mut self,
        merged: &[(Key, SstEntry)],
    ) -> Result<(Vec<Arc<SstFile>>, Nanos)> {
        let mut files = Vec::new();
        let mut cost = Nanos::ZERO;
        if merged.is_empty() {
            return Ok((files, cost));
        }
        let target = self.options.sst_target_bytes;
        let mut builder = SstBuilder::new(self.manifest.allocate_file_id());
        for (key, entry) in merged {
            builder.add(key.clone(), entry.clone());
            if builder.size_bytes() >= target {
                let (file, c) = builder.finish(&self.flash_dev);
                cost += c;
                files.push(Arc::new(file));
                builder = SstBuilder::new(self.manifest.allocate_file_id());
            }
        }
        if !builder.is_empty() {
            let (file, c) = builder.finish(&self.flash_dev);
            cost += c;
            files.push(Arc::new(file));
        }
        Ok((files, cost))
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Simulate a crash (losing all DRAM state) followed by recovery: the
    /// B-tree index is rebuilt from a scan of the NVM slabs, keeping only
    /// the newest timestamp per key, and the bucket map is reconstructed
    /// from the slab scan plus the flash manifest. Returns the simulated
    /// recovery time.
    pub(crate) fn crash_and_recover(&mut self) -> Nanos {
        self.cache.clear();
        self.index.clear();
        let tracker_capacity =
            (self.options.tracker_capacity() / self.options.num_partitions).max(8);
        self.tracker = ClockTracker::new(tracker_capacity);
        self.mapper = Mapper::new();
        self.buckets = BucketMap::new(self.options.compaction.bucket_size_keys);

        let cost = self.slab.recovery_scan_cost();
        let mut newest: std::collections::HashMap<Key, (NvmAddress, u64, bool)> =
            std::collections::HashMap::new();
        let mut stale: Vec<NvmAddress> = Vec::new();
        let mut max_ts = 0u64;
        for (addr, slot) in self.slab.scan() {
            max_ts = max_ts.max(slot.timestamp);
            let tombstone = slot.value.is_empty();
            match newest.get(&slot.key) {
                Some((_, ts, _)) if *ts >= slot.timestamp => stale.push(addr),
                _ => {
                    if let Some((old, _, _)) =
                        newest.insert(slot.key.clone(), (addr, slot.timestamp, tombstone))
                    {
                        stale.push(old);
                    }
                }
            }
        }
        // Garbage-collect superseded duplicate slots (e.g. slots orphaned
        // by a bug or torn multi-slot sequence): recovery must leave
        // exactly one slot per key, or the next recovery could pick a
        // different winner.
        for addr in stale {
            self.slab
                .remove(addr)
                .expect("recovery GC: a slot just seen by the slab scan must be removable");
        }
        for (key, (addr, timestamp, tombstone)) in newest {
            self.buckets.on_nvm_insert(key.id());
            self.index.insert(
                key,
                IndexEntry {
                    addr,
                    timestamp,
                    tombstone,
                },
            );
        }
        for (key, _) in self.log.iter() {
            self.buckets.on_flash_insert(key.id());
        }
        self.next_timestamp = max_ts + 1;
        self.fg += cost;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_storage::DeviceProfile;

    fn small_options(keys: u64) -> Arc<Options> {
        let mut options = Options::scaled_default(keys);
        options.num_partitions = 1;
        options.compaction.bucket_size_keys = 256;
        options.sst_target_bytes = 32 * 1024;
        Arc::new(options)
    }

    fn storage_for(options: &Options) -> TieredStorage {
        TieredStorage::new(
            DeviceProfile::optane_nvm(options.nvm_capacity_bytes),
            options.flash_profile,
        )
    }

    fn partition(keys: u64) -> Partition {
        let options = small_options(keys);
        let storage = storage_for(&options);
        Partition::new(0, options, &storage).unwrap()
    }

    #[test]
    fn put_get_roundtrip_served_from_nvm_then_dram() {
        let mut p = partition(1000);
        p.put(Key::from_id(1), Value::filled(500, 7)).unwrap();
        // First read comes from NVM, second from the DRAM cache.
        let first = p.get(&Key::from_id(1)).unwrap();
        assert_eq!(first.source, ReadSource::Nvm);
        assert_eq!(first.value.unwrap().len(), 500);
        let second = p.get(&Key::from_id(1)).unwrap();
        assert_eq!(second.source, ReadSource::Dram);
        assert!(second.latency < first.latency);
        let missing = p.get(&Key::from_id(999)).unwrap();
        assert!(missing.value.is_none());
        assert_eq!(missing.source, ReadSource::NotFound);
    }

    #[test]
    fn updates_are_in_place_and_latest_version_wins() {
        let mut p = partition(1000);
        p.put(Key::from_id(5), Value::filled(200, 1)).unwrap();
        p.put(Key::from_id(5), Value::filled(210, 2)).unwrap();
        let got = p.get(&Key::from_id(5)).unwrap();
        assert_eq!(got.value.unwrap().as_bytes()[0], 2);
        assert_eq!(p.nvm_object_count(), 1);
    }

    #[test]
    fn filling_nvm_triggers_demotion_to_flash() {
        let keys = 4_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        assert!(
            p.flash_object_count() > 0,
            "cold objects must have been demoted to flash"
        );
        assert!(p.nvm_utilization() <= 1.0);
        assert!(p.stats().compaction.jobs > 0);
        assert!(p.stats().compaction.demoted_objects > 0);
        // Every key must still be readable (from NVM or flash).
        for id in (0..keys).step_by(97) {
            let got = p.get(&Key::from_id(id)).unwrap();
            assert!(got.value.is_some(), "key {id} lost after compaction");
        }
    }

    #[test]
    fn hot_keys_stay_on_nvm_after_compactions() {
        let keys = 4_000u64;
        let mut p = partition(keys);
        // Load everything once.
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Make keys 0..50 hot with repeated reads and updates.
        for _ in 0..20 {
            for id in 0..50u64 {
                p.get(&Key::from_id(id)).unwrap();
                p.put(Key::from_id(id), Value::filled(1000, 2)).unwrap();
            }
            // Interleave cold inserts to force more compactions.
            for id in 0..200u64 {
                p.put(Key::from_id(keys + id), Value::filled(1000, 3))
                    .unwrap();
            }
        }
        let mut hot_from_fast = 0;
        for id in 0..50u64 {
            let got = p.get(&Key::from_id(id)).unwrap();
            if got.source != ReadSource::Flash {
                hot_from_fast += 1;
            }
        }
        assert!(
            hot_from_fast >= 40,
            "most hot keys should be served from DRAM/NVM, got {hot_from_fast}/50"
        );
    }

    #[test]
    fn delete_hides_flash_versions_via_tombstones() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        assert!(p.flash_object_count() > 0);
        // Delete a key that was demoted to flash.
        let victim = (0..keys)
            .find(|id| !p.index.contains_key(&Key::from_id(*id)))
            .expect("some key lives only on flash");
        p.delete(&Key::from_id(victim)).unwrap();
        let got = p.get(&Key::from_id(victim)).unwrap();
        assert!(got.value.is_none(), "deleted key must not be readable");
        // Deleting an NVM-only key removes it immediately.
        let nvm_key = (0..keys)
            .find(|id| {
                p.index
                    .get(&Key::from_id(*id))
                    .map(|e| !e.tombstone)
                    .unwrap_or(false)
            })
            .expect("some key lives on NVM");
        p.delete(&Key::from_id(nvm_key)).unwrap();
        assert!(p.get(&Key::from_id(nvm_key)).unwrap().value.is_none());
    }

    #[test]
    fn scan_merges_nvm_and_flash_in_order() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(500, (id % 251) as u8))
                .unwrap();
        }
        let (entries, cost) = p.scan_collect(&Key::from_id(100), 50).unwrap();
        assert_eq!(entries.len(), 50);
        let ids: Vec<u64> = entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (100..150).collect();
        assert_eq!(ids, expected);
        assert!(cost > Nanos::ZERO);
    }

    #[test]
    fn crash_recovery_rebuilds_index_from_slabs() {
        let keys = 2_000u64;
        let mut p = partition(keys);
        for id in 0..keys {
            p.put(Key::from_id(id), Value::filled(800, 1)).unwrap();
        }
        p.put(Key::from_id(3), Value::filled(800, 42)).unwrap();
        let nvm_before = p.nvm_object_count();
        let flash_before = p.flash_object_count();
        let cost = p.crash_and_recover();
        assert!(cost > Nanos::ZERO);
        assert_eq!(p.nvm_object_count(), nvm_before);
        assert_eq!(p.flash_object_count(), flash_before);
        for id in (0..keys).step_by(53) {
            assert!(p.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        assert_eq!(
            p.get(&Key::from_id(3)).unwrap().value.unwrap().as_bytes()[0],
            42
        );
    }

    #[test]
    fn compaction_stats_and_write_stalls_accumulate_under_pressure() {
        let keys = 3_000u64;
        let mut p = partition(keys);
        for round in 0..3u64 {
            for id in 0..keys {
                p.put(Key::from_id(id), Value::filled(1000, round as u8))
                    .unwrap();
            }
        }
        let stats = p.stats();
        assert!(stats.compaction.jobs > 0);
        assert!(stats.compaction.total_time > Nanos::ZERO);
        assert!(stats.user_bytes_written >= keys * 1000);
        assert!(p.elapsed() >= p.fg);
    }
}
