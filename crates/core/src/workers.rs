//! Background compaction worker pool.
//!
//! When `Options::compaction_workers > 0`, the engine spawns that many OS
//! worker threads sharing one [`Scheduler`]. Foreground operations that
//! trip the NVM high watermark enqueue a [`JobRequest`] and return
//! immediately; a worker picks the request up, drives the partition's
//! *plan → execute → install* pipeline (holding the partition's write lock
//! only for the plan and install phases), and repeats until the partition
//! drops below its low watermark. At most one worker operates on a given
//! partition at a time, so jobs for a partition are serialised and a job's
//! victim files can never be retired underneath it (the install-time epoch
//! and file-liveness checks make even that race safe by construction).
//!
//! Virtual-time accounting mirrors the real thread structure: the
//! scheduler keeps one virtual clock per worker, and each installed job is
//! assigned to the least-loaded virtual worker starting no earlier than
//! the foreground time that triggered it and the partition's previous
//! background completion. The busiest virtual worker becomes the third
//! term of the benchmark harness's makespan lower bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use prism_compaction::execute_job;
use prism_types::Nanos;

use crate::engine::EngineShared;
use crate::partition::CompactionOutcome;

/// A request for background work on one partition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobRequest {
    /// Partition to work on.
    pub partition: usize,
    /// What to do.
    pub kind: RequestKind,
    /// Foreground virtual time when the request was raised.
    pub trigger_fg: Nanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestKind {
    /// Free NVM space (watermark tripped).
    Demote,
    /// Read-triggered promotion compaction.
    Promote,
}

/// Queued/in-flight flags per partition (dedup: at most one queued request
/// per kind, at most one worker per partition).
#[derive(Debug, Default, Clone, Copy)]
struct Pending {
    demote_queued: bool,
    promote_queued: bool,
    inflight: bool,
}

struct SchedState {
    queue: VecDeque<JobRequest>,
    pending: Vec<Pending>,
    shutdown: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    work_cv: Condvar,
    /// Progress generation: bumped after every install attempt so
    /// foreground waiters (back-pressure, capacity retries) can sleep
    /// until "some background progress happened".
    generation: Mutex<u64>,
    generation_cv: Condvar,
    /// One virtual clock per worker; compaction durations are packed onto
    /// the least-loaded clock at install time.
    virtual_clocks: Mutex<Vec<Nanos>>,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    /// Requests accepted onto the queue (after dedup), cumulatively. The
    /// batched write path's regression tests pin "at most one demotion
    /// enqueue per touched partition per batch" against this counter.
    enqueued_total: AtomicU64,
}

impl Scheduler {
    pub(crate) fn new(partitions: usize, workers: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                pending: vec![Pending::default(); partitions],
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            generation: Mutex::new(0),
            generation_cv: Condvar::new(),
            virtual_clocks: Mutex::new(vec![Nanos::ZERO; workers.max(1)]),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            enqueued_total: AtomicU64::new(0),
        }
    }

    /// Enqueue a request unless an identical one is already queued.
    pub(crate) fn enqueue(&self, req: JobRequest) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.shutdown {
            return;
        }
        let pending = &mut state.pending[req.partition];
        let already = match req.kind {
            RequestKind::Demote => pending.demote_queued,
            RequestKind::Promote => pending.promote_queued,
        };
        if already {
            return;
        }
        match req.kind {
            RequestKind::Demote => pending.demote_queued = true,
            RequestKind::Promote => pending.promote_queued = true,
        }
        state.queue.push_back(req);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        self.enqueued_total.fetch_add(1, Ordering::Relaxed);
        self.work_cv.notify_one();
    }

    /// Block until a request for a partition nobody else is working on is
    /// available; `None` on shutdown.
    fn next_request(&self) -> Option<JobRequest> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if state.shutdown {
                return None;
            }
            let pos = state
                .queue
                .iter()
                .position(|r| !state.pending[r.partition].inflight);
            if let Some(pos) = pos {
                let req = state.queue.remove(pos).expect("position just found");
                let pending = &mut state.pending[req.partition];
                match req.kind {
                    RequestKind::Demote => pending.demote_queued = false,
                    RequestKind::Promote => pending.promote_queued = false,
                }
                pending.inflight = true;
                self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                return Some(req);
            }
            state = self.work_cv.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Mark a partition's in-flight work finished and wake a worker in
    /// case requests for that partition were skipped while it ran.
    fn finish(&self, partition: usize) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.pending[partition].inflight = false;
        if state.queue.iter().any(|r| r.partition == partition) {
            self.work_cv.notify_one();
        }
    }

    pub(crate) fn shutdown(&self) {
        {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            state.shutdown = true;
        }
        self.work_cv.notify_all();
        self.bump_generation();
    }

    pub(crate) fn generation(&self) -> u64 {
        *self.generation.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn bump_generation(&self) {
        let mut gen = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        *gen += 1;
        self.generation_cv.notify_all();
    }

    /// Wait (bounded) until the progress generation moves past `seen`.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut gen = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        while *gen <= seen {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .generation_cv
                .wait_timeout(gen, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            gen = guard;
        }
    }

    /// Charge `duration` of compaction work to the least-loaded virtual
    /// worker. The clocks are pure load tallies: with `W` workers the
    /// busiest clock approaches `total compaction work / W`, which is the
    /// schedule lower bound the benchmark harness folds into its makespan.
    /// Partition-local ordering (jobs of one partition serialise) is
    /// expressed on the partition's own `busy_until` timeline instead —
    /// mixing per-partition virtual instants onto shared clocks would
    /// compare unsynchronised timelines.
    fn tally_virtual(&self, duration: Nanos) {
        let mut clocks = self
            .virtual_clocks
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let idx = clocks
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .expect("at least one virtual worker");
        clocks[idx] += duration;
    }

    /// Cumulative virtual time per background worker.
    pub(crate) fn worker_times(&self) -> Vec<Nanos> {
        self.virtual_clocks
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    pub(crate) fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn enqueued_total(&self) -> u64 {
        self.enqueued_total.load(Ordering::Relaxed)
    }
}

/// Execute and install one planned job; returns the outcome, or `None` if
/// the partition discarded it (stale epoch / retired files).
fn execute_and_install(
    shared: &EngineShared,
    partition: usize,
    job: prism_compaction::CompactionJob,
) -> Option<CompactionOutcome> {
    let trigger_fg = job.trigger_fg;
    let exec = execute_job(job, &shared.storage.cpu, &shared.storage.flash);
    let mut guard = shared.write_partition(partition);
    let installed = guard
        .install_compaction(exec)
        .expect("background install must not corrupt partition state");
    installed.map(|outcome| {
        // The partition's background completion time chains on its own
        // virtual timeline, exactly like inline mode: a job starts no
        // earlier than the foreground instant that triggered it and the
        // partition's previous job.
        let end = trigger_fg.max(guard.busy_until()) + outcome.duration;
        guard.set_busy_until(end);
        guard.note_overlap(outcome.duration);
        shared.scheduler().tally_virtual(outcome.duration);
        outcome
    })
}

/// Demote until the partition drops below its low watermark (with the same
/// natural→forced escalation as inline mode).
fn run_demotions(shared: &EngineShared, req: JobRequest) {
    let sched = shared.scheduler();
    let p = req.partition;
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > 128 {
            break;
        }
        let job = shared
            .write_partition(p)
            .plan_demotion(false, req.trigger_fg);
        let Some(job) = job else { break };
        let outcome = execute_and_install(shared, p, job);
        sched.bump_generation();
        let Some(outcome) = outcome else { break };
        if outcome.demoted == 0 {
            let job = shared
                .write_partition(p)
                .plan_demotion(true, req.trigger_fg);
            let Some(job) = job else { break };
            let forced = execute_and_install(shared, p, job);
            sched.bump_generation();
            match forced {
                Some(f) if f.demoted > 0 => {}
                _ => break,
            }
        }
        if shared.read_partition(p).nvm_utilization() <= shared.options.low_watermark {
            break;
        }
    }
}

fn run_promotion(shared: &EngineShared, req: JobRequest) {
    let sched = shared.scheduler();
    let job = shared
        .write_partition(req.partition)
        .plan_promotion(req.trigger_fg);
    if let Some(job) = job {
        execute_and_install(shared, req.partition, job);
    }
    sched.bump_generation();
}

/// Clears a partition's in-flight flag (and wakes waiters) when dropped,
/// so even a panicking job cannot leave the partition permanently marked
/// busy — which would silently disable background compaction for it.
struct FinishGuard<'a> {
    sched: &'a Scheduler,
    partition: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.sched.finish(self.partition);
        self.sched.bump_generation();
    }
}

/// Main loop of one background worker thread.
pub(crate) fn worker_loop(shared: Arc<EngineShared>) {
    let sched = shared.scheduler();
    while let Some(req) = sched.next_request() {
        let finish = FinishGuard {
            sched,
            partition: req.partition,
        };
        match req.kind {
            RequestKind::Demote => run_demotions(&shared, req),
            RequestKind::Promote => run_promotion(&shared, req),
        }
        drop(finish);
        // Requests raised while this partition was in flight were deduped
        // away; re-check the watermark so pressure is never dropped.
        let (util, fg) = {
            let p = shared.read_partition(req.partition);
            (p.nvm_utilization(), p.fg())
        };
        if util >= shared.options.high_watermark {
            sched.enqueue(JobRequest {
                partition: req.partition,
                kind: RequestKind::Demote,
                trigger_fg: fg,
            });
        }
    }
}
