//! Background compaction worker pool.
//!
//! When `Options::compaction_workers > 0`, the engine spawns that many OS
//! worker threads sharing one [`Scheduler`]. Foreground operations that
//! trip the NVM high watermark enqueue a [`JobRequest`] and return
//! immediately; a worker picks the request up, drives the partition's
//! *plan → execute → install* pipeline (holding the partition's write lock
//! only for the plan and install phases), and repeats until the partition
//! drops below its low watermark. At most one worker operates on a given
//! partition at a time, so jobs for a partition are serialised and a job's
//! victim files can never be retired underneath it (the install-time epoch
//! and file-liveness checks make even that race safe by construction).
//!
//! Virtual-time accounting mirrors the real thread structure: the
//! scheduler keeps one virtual clock per worker, and each installed job is
//! assigned to the least-loaded virtual worker starting no earlier than
//! the foreground time that triggered it and the partition's previous
//! background completion. The busiest virtual worker becomes the third
//! term of the benchmark harness's makespan lower bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use prism_compaction::execute_job;
use prism_obs::trace::category;
use prism_types::Nanos;

use crate::engine::EngineShared;
use crate::partition::CompactionOutcome;

/// A request for background work on one partition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobRequest {
    /// Partition to work on.
    pub partition: usize,
    /// What to do.
    pub kind: RequestKind,
    /// Foreground virtual time when the request was raised.
    pub trigger_fg: Nanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequestKind {
    /// Free NVM space (watermark tripped).
    Demote,
    /// Read-triggered promotion compaction.
    Promote,
    /// Integrity scrub walk (corruption detected, or periodic repair).
    Scrub,
}

/// Queued/in-flight flags per partition (dedup: at most one queued request
/// per kind, at most one worker per partition).
#[derive(Debug, Default, Clone, Copy)]
struct Pending {
    demote_queued: bool,
    promote_queued: bool,
    scrub_queued: bool,
    inflight: bool,
}

struct SchedState {
    queue: VecDeque<JobRequest>,
    pending: Vec<Pending>,
    /// Number of partitions currently being worked on.
    inflight: usize,
    shutdown: bool,
}

impl SchedState {
    /// The adaptive worker-pool target: enough workers for the demand the
    /// scheduler can see (queued requests plus in-flight jobs), clamped to
    /// `1..=workers`. Worker `w` only dequeues while `w < effective`, so a
    /// drained queue keeps surplus workers parked and a deepening queue
    /// grows the effective pool one wakeup at a time.
    fn effective_pool(&self, workers: usize) -> usize {
        (self.queue.len() + self.inflight).clamp(1, workers.max(1))
    }
}

pub(crate) struct Scheduler {
    /// Size of the configured worker pool (the adaptive ceiling).
    workers: usize,
    state: Mutex<SchedState>,
    work_cv: Condvar,
    /// Number of worker threads currently parked waiting for work (either
    /// no eligible request, or the adaptive pool target excludes them).
    parked: AtomicU64,
    /// Progress generation: bumped after every install attempt so
    /// foreground waiters (back-pressure, capacity retries) can sleep
    /// until "some background progress happened".
    generation: Mutex<u64>,
    generation_cv: Condvar,
    /// One virtual clock per worker; compaction durations are packed onto
    /// the least-loaded clock at install time.
    virtual_clocks: Mutex<Vec<Nanos>>,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    /// Requests accepted onto the queue (after dedup), cumulatively. The
    /// batched write path's regression tests pin "at most one demotion
    /// enqueue per touched partition per batch" against this counter.
    enqueued_total: AtomicU64,
}

impl Scheduler {
    pub(crate) fn new(partitions: usize, workers: usize) -> Self {
        Scheduler {
            workers,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                pending: vec![Pending::default(); partitions],
                inflight: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            parked: AtomicU64::new(0),
            generation: Mutex::new(0),
            generation_cv: Condvar::new(),
            virtual_clocks: Mutex::new(vec![Nanos::ZERO; workers.max(1)]),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            enqueued_total: AtomicU64::new(0),
        }
    }

    /// Enqueue a request unless an identical one is already queued.
    pub(crate) fn enqueue(&self, req: JobRequest) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.shutdown {
            return;
        }
        let pending = &mut state.pending[req.partition];
        let already = match req.kind {
            RequestKind::Demote => pending.demote_queued,
            RequestKind::Promote => pending.promote_queued,
            RequestKind::Scrub => pending.scrub_queued,
        };
        if already {
            return;
        }
        match req.kind {
            RequestKind::Demote => pending.demote_queued = true,
            RequestKind::Promote => pending.promote_queued = true,
            RequestKind::Scrub => pending.scrub_queued = true,
        }
        state.queue.push_back(req);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        self.enqueued_total.fetch_add(1, Ordering::Relaxed);
        // A deeper queue may have grown the effective pool, making workers
        // that were adaptively parked eligible again — wake them all and
        // let `next_request`'s eligibility check sort it out.
        self.work_cv.notify_all();
    }

    /// Block until a request for a partition nobody else is working on is
    /// available *and* the adaptive pool target admits this worker;
    /// `None` on shutdown.
    fn next_request(&self, worker_id: usize) -> Option<JobRequest> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if state.shutdown {
                return None;
            }
            if worker_id < state.effective_pool(self.workers) {
                let pos = state
                    .queue
                    .iter()
                    .position(|r| !state.pending[r.partition].inflight);
                if let Some(pos) = pos {
                    let req = state.queue.remove(pos).expect("position just found");
                    let pending = &mut state.pending[req.partition];
                    match req.kind {
                        RequestKind::Demote => pending.demote_queued = false,
                        RequestKind::Promote => pending.promote_queued = false,
                        RequestKind::Scrub => pending.scrub_queued = false,
                    }
                    pending.inflight = true;
                    state.inflight += 1;
                    self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    return Some(req);
                }
            }
            self.parked.fetch_add(1, Ordering::Relaxed);
            state = self.work_cv.wait(state).unwrap_or_else(|p| p.into_inner());
            self.parked.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Mark a partition's in-flight work finished and wake workers in
    /// case requests for that partition were skipped while it ran.
    fn finish(&self, partition: usize) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.pending[partition].inflight = false;
        state.inflight = state.inflight.saturating_sub(1);
        if state.queue.iter().any(|r| r.partition == partition) {
            self.work_cv.notify_all();
        }
    }

    /// The adaptive worker-pool target right now (see
    /// [`SchedState::effective_pool`]).
    pub(crate) fn effective_pool(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .effective_pool(self.workers)
    }

    /// Number of worker threads currently parked in [`Scheduler::next_request`].
    pub(crate) fn parked_workers(&self) -> u64 {
        self.parked.load(Ordering::Relaxed)
    }

    pub(crate) fn shutdown(&self) {
        {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            state.shutdown = true;
        }
        self.work_cv.notify_all();
        self.bump_generation();
    }

    pub(crate) fn generation(&self) -> u64 {
        *self.generation.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn bump_generation(&self) {
        let mut gen = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        *gen += 1;
        self.generation_cv.notify_all();
    }

    /// Wait (bounded) until the progress generation moves past `seen`.
    pub(crate) fn wait_past(&self, seen: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut gen = self.generation.lock().unwrap_or_else(|p| p.into_inner());
        while *gen <= seen {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .generation_cv
                .wait_timeout(gen, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            gen = guard;
        }
    }

    /// Charge `duration` of compaction work to the least-loaded virtual
    /// worker *within the adaptive pool target at install time*. The
    /// clocks are pure load tallies: with an effective pool of `k` the
    /// busiest clock approaches `total compaction work / k`, which is the
    /// schedule lower bound the benchmark harness folds into its makespan
    /// — and matches what the adaptive scaling really allows (surplus
    /// workers the demand never woke must not absorb virtual work).
    /// Partition-local ordering (jobs of one partition serialise) is
    /// expressed on the partition's own `busy_until` timeline instead —
    /// mixing per-partition virtual instants onto shared clocks would
    /// compare unsynchronised timelines.
    fn tally_virtual(&self, duration: Nanos) {
        let effective = self.effective_pool();
        let mut clocks = self
            .virtual_clocks
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let pool = effective.min(clocks.len()).max(1);
        let idx = clocks[..pool]
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .expect("at least one virtual worker");
        clocks[idx] += duration;
    }

    /// Cumulative virtual time per background worker.
    pub(crate) fn worker_times(&self) -> Vec<Nanos> {
        self.virtual_clocks
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    pub(crate) fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn enqueued_total(&self) -> u64 {
        self.enqueued_total.load(Ordering::Relaxed)
    }
}

/// Execute and install one planned job; returns the outcome, or `None` if
/// the partition discarded it (stale epoch / retired files).
fn execute_and_install(
    shared: &EngineShared,
    partition: usize,
    job: prism_compaction::CompactionJob,
    job_id: u64,
) -> Option<CompactionOutcome> {
    let trigger_fg = job.trigger_fg;
    shared.obs.trace().record(
        category::COMPACTION_EXECUTE,
        Some(partition as u32),
        job_id,
        "executing planned job",
    );
    let exec = execute_job(job, &shared.storage.cpu, &shared.storage.flash);
    let mut guard = shared.write_partition(partition);
    let installed = guard
        .install_compaction(exec)
        .expect("background install must not corrupt partition state");
    if installed.is_none() {
        shared.obs.install_discards.inc();
        shared.obs.trace().record(
            category::COMPACTION_DISCARD,
            Some(partition as u32),
            job_id,
            "stale epoch or retired victim files",
        );
    }
    installed.map(|outcome| {
        // The partition's background completion time chains on its own
        // virtual timeline, exactly like inline mode: a job starts no
        // earlier than the foreground instant that triggered it and the
        // partition's previous job.
        let end = trigger_fg.max(guard.busy_until()) + outcome.duration;
        guard.set_busy_until(end);
        guard.note_overlap(outcome.duration);
        shared.scheduler().tally_virtual(outcome.duration);
        shared
            .obs
            .compaction_job
            .record(outcome.duration.as_nanos());
        shared.obs.trace().record(
            category::COMPACTION_INSTALL,
            Some(partition as u32),
            job_id,
            format!(
                "demoted={} promoted={} duration_ns={}",
                outcome.demoted,
                outcome.promoted,
                outcome.duration.as_nanos()
            ),
        );
        outcome
    })
}

/// Demote until the partition drops below its low watermark (with the same
/// natural→forced escalation as inline mode).
fn run_demotions(shared: &EngineShared, req: JobRequest) {
    let sched = shared.scheduler();
    let p = req.partition;
    let mut rounds = 0;
    loop {
        rounds += 1;
        if rounds > 128 {
            break;
        }
        let job = shared
            .write_partition(p)
            .plan_demotion(false, req.trigger_fg);
        let Some(job) = job else { break };
        let job_id = shared.obs.next_job_id();
        shared.obs.trace().record(
            category::COMPACTION_PLAN,
            Some(p as u32),
            job_id,
            "kind=demote",
        );
        let outcome = execute_and_install(shared, p, job, job_id);
        sched.bump_generation();
        let Some(outcome) = outcome else { break };
        if outcome.demoted == 0 {
            let job = shared
                .write_partition(p)
                .plan_demotion(true, req.trigger_fg);
            let Some(job) = job else { break };
            let job_id = shared.obs.next_job_id();
            shared.obs.trace().record(
                category::COMPACTION_PLAN,
                Some(p as u32),
                job_id,
                "kind=forced-demote",
            );
            let forced = execute_and_install(shared, p, job, job_id);
            sched.bump_generation();
            match forced {
                Some(f) if f.demoted > 0 => {}
                _ => break,
            }
        }
        if shared.read_partition(p).nvm_utilization() <= shared.options.low_watermark {
            break;
        }
    }
}

fn run_promotion(shared: &EngineShared, req: JobRequest) {
    let sched = shared.scheduler();
    let job = shared
        .write_partition(req.partition)
        .plan_promotion(req.trigger_fg);
    if let Some(job) = job {
        let job_id = shared.obs.next_job_id();
        shared.obs.trace().record(
            category::COMPACTION_PLAN,
            Some(req.partition as u32),
            job_id,
            "kind=promote",
        );
        execute_and_install(shared, req.partition, job, job_id);
    }
    sched.bump_generation();
}

/// Run one budgeted scrub slice and keep the pass going: a parked cursor
/// (budget exhausted mid-walk) or a completed pass that still found
/// corruption re-enqueues, so the partition keeps scrubbing until a full
/// pass comes back clean (which re-arms a degraded partition).
fn run_scrub(shared: &EngineShared, req: JobRequest) {
    let sched = shared.scheduler();
    let budget = shared.options.scrub_io_budget_bytes.max(1);
    let report = shared.scrub_pass_traced(req.partition, budget);
    sched.bump_generation();
    if !report.completed || report.corrupt_found > 0 {
        let fg = shared.read_partition(req.partition).fg();
        sched.enqueue(JobRequest {
            partition: req.partition,
            kind: RequestKind::Scrub,
            trigger_fg: fg,
        });
    }
}

/// Clears a partition's in-flight flag (and wakes waiters) when dropped,
/// so even a panicking job cannot leave the partition permanently marked
/// busy — which would silently disable background compaction for it.
struct FinishGuard<'a> {
    sched: &'a Scheduler,
    partition: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.sched.finish(self.partition);
        self.sched.bump_generation();
    }
}

/// Main loop of one background worker thread. `worker_id` feeds the
/// adaptive pool gate: low-id workers serve steady light load alone while
/// high-id workers stay parked until queue depth demands them.
pub(crate) fn worker_loop(shared: Arc<EngineShared>, worker_id: usize) {
    let sched = shared.scheduler();
    while let Some(req) = sched.next_request(worker_id) {
        let finish = FinishGuard {
            sched,
            partition: req.partition,
        };
        match req.kind {
            RequestKind::Demote => run_demotions(&shared, req),
            RequestKind::Promote => run_promotion(&shared, req),
            RequestKind::Scrub => run_scrub(&shared, req),
        }
        drop(finish);
        // Requests raised while this partition was in flight were deduped
        // away; re-check the watermark so pressure is never dropped.
        let (util, fg) = {
            let p = shared.read_partition(req.partition);
            (p.nvm_utilization(), p.fg())
        };
        if util >= shared.options.high_watermark {
            sched.enqueue(JobRequest {
                partition: req.partition,
                kind: RequestKind::Demote,
                trigger_fg: fg,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demote(partition: usize) -> JobRequest {
        JobRequest {
            partition,
            kind: RequestKind::Demote,
            trigger_fg: Nanos::ZERO,
        }
    }

    /// The adaptive pool target follows queue depth + in-flight jobs,
    /// clamped to `1..=workers`.
    #[test]
    fn effective_pool_tracks_demand() {
        let sched = Scheduler::new(8, 4);
        assert_eq!(sched.effective_pool(), 1, "idle pool shrinks to one");
        sched.enqueue(demote(0));
        assert_eq!(sched.effective_pool(), 1);
        sched.enqueue(demote(1));
        sched.enqueue(demote(2));
        assert_eq!(sched.effective_pool(), 3);
        for p in 3..8 {
            sched.enqueue(demote(p));
        }
        assert_eq!(sched.effective_pool(), 4, "target is clamped to workers");
        // Dequeuing keeps the in-flight jobs in the demand signal.
        let req = sched.next_request(0).expect("request available");
        assert_eq!(sched.effective_pool(), 4);
        sched.finish(req.partition);
        // Draining everything shrinks the target back to one.
        for id in 0..4 {
            while let Some(req) = {
                let drained = sched.queue_depth() == 0;
                (!drained).then(|| sched.next_request(id)).flatten()
            } {
                sched.finish(req.partition);
            }
        }
        assert_eq!(sched.queue_depth(), 0);
        assert_eq!(sched.effective_pool(), 1);
    }

    /// With demand for a single worker, a surplus (high-id) worker parks
    /// even though the queue is non-empty, while worker 0 gets the job; a
    /// deepening queue then wakes the surplus worker.
    #[test]
    fn surplus_workers_park_until_queue_depth_demands_them() {
        let sched = Arc::new(Scheduler::new(4, 2));
        sched.enqueue(demote(0));
        assert_eq!(sched.effective_pool(), 1);

        let surplus = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.next_request(1))
        };
        // The surplus worker must park, not grab the only request. The
        // spin reaching a parked count is itself the assertion: `parked`
        // transiently dips on (possibly spurious) condvar wakeups, so an
        // equality re-read after the loop would be racy.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sched.parked_workers() == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            Instant::now() < deadline,
            "worker 1 must park on light load"
        );
        let req = sched.next_request(0).expect("worker 0 takes the job");
        assert_eq!(req.partition, 0);

        // Two more queued requests push the target past 1: worker 1 wakes
        // and dequeues.
        sched.enqueue(demote(1));
        sched.enqueue(demote(2));
        let woken = surplus.join().expect("surplus worker");
        assert!(woken.is_some(), "deep queue must wake the surplus worker");
        sched.finish(req.partition);
        sched.finish(woken.expect("request").partition);

        // Shutdown releases any parked worker with `None`.
        let parked = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || sched.next_request(1))
        };
        // (worker 1 is over the drained queue's target again, so it parks
        // until shutdown — exactly the "drained queue parks surplus
        // workers" contract.)
        while sched.parked_workers() == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        sched.shutdown();
        assert!(parked.join().expect("parked worker").is_none());
    }

    /// Virtual compaction time only spreads across the clocks the
    /// adaptive pool target admits: serial light load lands on one clock.
    #[test]
    fn virtual_time_packs_onto_the_effective_pool() {
        let sched = Scheduler::new(4, 4);
        // Idle scheduler: target 1, so repeated tallies pile onto clock 0.
        sched.tally_virtual(Nanos::from_micros(5));
        sched.tally_virtual(Nanos::from_micros(5));
        let clocks = sched.worker_times();
        assert_eq!(clocks[0], Nanos::from_micros(10));
        assert!(clocks[1..].iter().all(|c| c.is_zero()));
        // Deep queue: target grows, the next tally takes the least-loaded
        // clock inside the wider pool.
        sched.enqueue(demote(0));
        sched.enqueue(demote(1));
        sched.enqueue(demote(2));
        sched.tally_virtual(Nanos::from_micros(5));
        let clocks = sched.worker_times();
        assert_eq!(clocks[0], Nanos::from_micros(10));
        assert_eq!(clocks[1], Nanos::from_micros(5));
    }
}
