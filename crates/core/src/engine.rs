//! The PrismDB engine: partition routing, per-partition locking, the
//! background compaction worker pool and the [`KvStore`] /
//! [`ConcurrentKvStore`] implementations.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use prism_obs::{trace::category, Counter, LatencyHistogram, ObsHub, TraceBuffer};
use prism_storage::{group_digest, CommitLog, CommitPart, TieredStorage};
use prism_types::{
    BatchOp, ConcurrentKvStore, EngineStats, Key, KvStore, Lookup, Nanos, PartitionHealth,
    PrismError, ReadSource, Result, ScanResult, SnapshotId, TxnStats, Value, WriteBatch,
};

use crate::options::{Options, Partitioning};
use crate::partition::{Partition, ScrubReport};
use crate::sequence::CommitSequencer;
use crate::workers::{worker_loop, JobRequest, RequestKind, Scheduler};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How many times a write retries after `CapacityExceeded` by waiting on
/// the background workers before falling back to an inline forced
/// compaction.
const CAPACITY_RETRIES: usize = 4;
/// How many background progress generations a back-pressured write waits
/// for before falling back to an inline forced compaction.
const BACKPRESSURE_WAITS: usize = 64;
/// Bound on each individual wait, so a stuck worker can never hang the
/// foreground (the waiter re-checks and eventually compacts inline).
const WAIT_SLICE: Duration = Duration::from_millis(100);

/// Monotone transaction-layer counters (engine-lifetime, like device
/// counters; they survive `crash_and_recover`).
#[derive(Debug, Default)]
struct TxnCounters {
    snapshots: AtomicU64,
    commits: AtomicU64,
    conflicts: AtomicU64,
}

/// Engine-level integrity counters (engine-lifetime, like device counters;
/// they survive `crash_and_recover`). Per-partition detection/quarantine
/// counters live in the partitions; these cover events the engine observes
/// above the partition layer.
#[derive(Debug, Default)]
struct IntegrityCounters {
    /// Injected I/O errors surfaced to callers as [`PrismError::Io`].
    io_faults: AtomicU64,
    /// Snapshot pins force-expired by the history caps.
    snapshots_expired: AtomicU64,
}

/// Steady-cadence scrubber state (background-compaction mode): a
/// foreground-operation counter that paces scrub enqueues and a
/// round-robin cursor over partitions so every partition gets scrubbed in
/// turn.
#[derive(Debug, Default)]
struct ScrubCadence {
    ops: AtomicU64,
    next_partition: AtomicU64,
}

/// Engine-side observability: per-tier read and per-op-class latency
/// histograms (simulated-nanosecond domain, unlike the front-end's
/// wall-clock stage timers), compaction/scrub duration histograms, the
/// install-discard counter and the shared trace buffer. Instruments live
/// in the hub's registry, so an admin plane over the same hub serves
/// them by name.
pub(crate) struct EngineObs {
    pub(crate) hub: Arc<ObsHub>,
    get_dram: Arc<LatencyHistogram>,
    get_nvm: Arc<LatencyHistogram>,
    get_flash: Arc<LatencyHistogram>,
    put: Arc<LatencyHistogram>,
    scan: Arc<LatencyHistogram>,
    batch: Arc<LatencyHistogram>,
    txn_commit: Arc<LatencyHistogram>,
    /// Simulated duration of each installed compaction job.
    pub(crate) compaction_job: Arc<LatencyHistogram>,
    /// Wall-clock duration of each scrub pass slice.
    pub(crate) scrub_pass: Arc<LatencyHistogram>,
    /// Compaction results discarded at install (stale epoch / retired
    /// inputs); each discard means the work is re-planned.
    pub(crate) install_discards: Arc<Counter>,
    /// Allocates job ids tying a compaction's plan → execute → install
    /// trace events together.
    job_ids: AtomicU64,
}

impl EngineObs {
    fn new(hub: Arc<ObsHub>) -> Self {
        let h = |name: &str| hub.registry.histogram(name);
        EngineObs {
            get_dram: h("engine_get_dram_ns"),
            get_nvm: h("engine_get_nvm_ns"),
            get_flash: h("engine_get_flash_ns"),
            put: h("engine_put_ns"),
            scan: h("engine_scan_ns"),
            batch: h("engine_batch_ns"),
            txn_commit: h("engine_txn_commit_ns"),
            compaction_job: h("engine_compaction_job_ns"),
            scrub_pass: h("engine_scrub_pass_ns"),
            install_discards: hub.registry.counter("engine_compaction_install_discards"),
            job_ids: AtomicU64::new(0),
            hub,
        }
    }

    fn record_get(&self, lookup: &Lookup) {
        let hist = match lookup.source {
            ReadSource::Dram => &self.get_dram,
            ReadSource::Nvm => &self.get_nvm,
            ReadSource::Flash => &self.get_flash,
            ReadSource::NotFound => return,
        };
        hist.record(lookup.latency.as_nanos());
    }

    /// Allocate the next compaction job id (1-based; 0 means "no job").
    pub(crate) fn next_job_id(&self) -> u64 {
        self.job_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn trace(&self) -> &TraceBuffer {
        &self.hub.trace
    }
}

/// Engine state shared between client handles and background worker
/// threads.
pub(crate) struct EngineShared {
    pub(crate) options: Arc<Options>,
    pub(crate) storage: TieredStorage,
    partitions: Vec<RwLock<Partition>>,
    /// Key-id span covered by each partition.
    partition_span: u64,
    sched: Option<Scheduler>,
    /// Global commit sequencer: allocates version timestamps and tracks
    /// pinned snapshots (shared with every partition).
    seq: Arc<CommitSequencer>,
    /// NVM-resident intent log making multi-partition batches atomic.
    commit_log: CommitLog,
    txn: TxnCounters,
    integrity: IntegrityCounters,
    scrub: ScrubCadence,
    pub(crate) obs: EngineObs,
}

impl EngineShared {
    /// Lock one partition for reading. A poisoned lock (a client thread
    /// panicked while holding it) is entered anyway: partition state is
    /// append/replace structured, and [`PrismDb::crash_and_recover`]
    /// exists precisely to rebuild DRAM state from the persistent layers.
    pub(crate) fn read_partition(&self, idx: usize) -> RwLockReadGuard<'_, Partition> {
        self.partitions[idx]
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Lock one partition for writing (same poison policy).
    pub(crate) fn write_partition(&self, idx: usize) -> RwLockWriteGuard<'_, Partition> {
        self.partitions[idx]
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub(crate) fn scheduler(&self) -> &Scheduler {
        self.sched
            .as_ref()
            .expect("scheduler exists in background-compaction mode")
    }

    fn background(&self) -> bool {
        self.sched.is_some()
    }

    /// Run one budgeted scrub slice against a partition, recording its
    /// wall duration, a `scrub_pass` trace event, and — when a clean
    /// completed pass returns a degraded partition to healthy — the
    /// `rearm` flip. Every scrub path (inline and background) funnels
    /// through here so the trace sees all of them.
    pub(crate) fn scrub_pass_traced(&self, idx: usize, budget_bytes: u64) -> ScrubReport {
        let start = Instant::now();
        let (was, report, now) = {
            let mut p = self.write_partition(idx);
            let was = p.health();
            let report = p.scrub_pass(budget_bytes);
            (was, report, p.health())
        };
        let wall = start.elapsed().as_nanos();
        self.obs
            .scrub_pass
            .record(wall.min(u64::MAX as u128) as u64);
        self.obs.trace().record(
            category::SCRUB_PASS,
            Some(idx as u32),
            0,
            format!(
                "examined={} corrupt={} repaired={} quarantined={} completed={}",
                report.examined,
                report.corrupt_found,
                report.repaired,
                report.quarantined,
                report.completed
            ),
        );
        if was == PartitionHealth::Degraded && now == PartitionHealth::Healthy {
            self.obs.trace().record(
                category::REARM,
                Some(idx as u32),
                0,
                "clean scrub pass re-armed the partition",
            );
        }
        report
    }

    /// Aggregate engine statistics (also served through the hub's engine
    /// source, so `GET /stats.json` and [`ConcurrentKvStore::stats`] read
    /// the same numbers).
    pub(crate) fn stats_snapshot(&self) -> EngineStats {
        let mut stats = EngineStats {
            nvm_io: self.storage.nvm_io(),
            flash_io: self.storage.flash_io(),
            ..EngineStats::default()
        };
        for i in 0..self.partitions.len() {
            let part = self.read_partition(i);
            let integrity = part.integrity_stats();
            let p = part.stats();
            drop(part);
            stats.integrity = stats.integrity.merged(integrity);
            stats.reads_from_dram += p.reads_from_dram;
            stats.reads_from_nvm += p.reads_from_nvm;
            stats.reads_from_flash += p.reads_from_flash;
            stats.reads_not_found += p.reads_not_found;
            stats.user_bytes_written += p.user_bytes_written;
            stats.batch_groups += p.batch_groups;
            stats.batch_entries += p.batch_entries;
            stats.batch_merged_writes += p.batch_merged_writes;
            stats.compaction.jobs += p.compaction.jobs;
            stats.compaction.total_time += p.compaction.total_time;
            stats.compaction.fast_tier_time += p.compaction.fast_tier_time;
            stats.compaction.slow_tier_time += p.compaction.slow_tier_time;
            stats.compaction.demoted_objects += p.compaction.demoted_objects;
            stats.compaction.promoted_objects += p.compaction.promoted_objects;
            stats.compaction.stall_time += p.compaction.stall_time;
            stats.compaction.overlap_time += p.compaction.overlap_time;
            stats.compaction.backpressure_stalls += p.compaction.backpressure_stalls;
        }
        if let Some(sched) = &self.sched {
            stats.compaction.queue_depth = sched.queue_depth();
            stats.compaction.max_queue_depth = sched.max_queue_depth();
            stats.compaction.enqueued_jobs = sched.enqueued_total();
        }
        let log = self.commit_log.counters();
        stats.txn = TxnStats {
            snapshots: self.txn.snapshots.load(Ordering::Relaxed),
            txn_commits: self.txn.commits.load(Ordering::Relaxed),
            txn_conflicts: self.txn.conflicts.load(Ordering::Relaxed),
            commit_intents: log.intents,
            commit_seals: log.seals,
            commit_replayed: log.replayed,
            commit_rolled_back: log.rolled_back,
        };
        stats.integrity.io_errors += self.integrity.io_faults.load(Ordering::Relaxed);
        stats.integrity.snapshots_expired +=
            self.integrity.snapshots_expired.load(Ordering::Relaxed);
        stats
    }
}

/// PrismDB: a two-tier key-value store with popularity-aware multi-tiered
/// storage compaction.
///
/// The engine is partitioned: each partition owns a contiguous slice of the
/// key-id space along with its NVM slab store, B-tree index, flash sorted
/// log, popularity tracker and compaction state (Figure 3 of the paper).
/// All client operations are routed by key; scans walk partitions in key
/// order because partitioning is range-based.
///
/// # Concurrency
///
/// Every partition sits behind its own [`RwLock`], so an `Arc<PrismDb>` can
/// be driven from many OS threads through the [`ConcurrentKvStore`] trait:
/// operations on different partitions proceed in parallel, writes on the
/// same partition serialise, and *reads on the same partition overlap with
/// each other* — the read path defers its tracker/clock updates into a
/// buffer that the next writer drains. Single-key operations take exactly
/// one partition lock. Scans read through a pinned snapshot sequence and
/// visit partitions one short read lock at a time, so a long scan never
/// serialises writers; the only multi-lock paths are the cross-partition
/// commit protocols (`apply_batch` over several partitions and
/// `txn_commit`), which acquire write locks in ascending partition order —
/// a single global order, so lock-order deadlocks are ruled out. The
/// legacy [`KvStore`] (`&mut self`) impl is a thin adapter over the
/// shared-reference path, so existing single-threaded callers are
/// unaffected.
///
/// # Snapshots and transactions
///
/// [`ConcurrentKvStore::snapshot`] pins the engine's global commit
/// sequence; `snapshot_get`/`snapshot_scan` then see exactly the versions
/// committed at pin time, regardless of concurrent writes or compactions
/// (writers preserve superseded versions in a per-partition history buffer
/// while pins are live). [`ConcurrentKvStore::txn_commit`] adds optimistic
/// multi-key transactions on top: reads are validated against the snapshot
/// sequence at commit, and cross-partition write sets run the commit-log
/// protocol so they are atomic even across a crash.
///
/// # Background compaction
///
/// With `Options::compaction_workers > 0` the engine spawns a pool of
/// worker threads. A write that pushes NVM past the high watermark
/// enqueues a demotion job and returns immediately; the worker clones the
/// victim state out under the partition lock, merges without the lock and
/// installs the result with per-object version checks, so foreground
/// progress overlaps with compaction. The foreground only stalls when NVM
/// reaches `Options::backpressure_ceiling`. With `compaction_workers == 0`
/// (the default) compactions run inline on the triggering client thread,
/// reproducing the paper's write-stall behaviour.
///
/// # Example
///
/// ```
/// use prism_db::{Options, PrismDb};
/// use prism_types::{Key, KvStore, Value};
///
/// let options = Options::builder(10_000).partitions(2).build().unwrap();
/// let mut db = PrismDb::open(options).unwrap();
/// db.put(Key::from_id(7), Value::filled(256, 1)).unwrap();
/// let found = db.get(&Key::from_id(7)).unwrap();
/// assert_eq!(found.value.unwrap().len(), 256);
/// ```
///
/// Driving the same engine from multiple threads:
///
/// ```
/// use std::sync::Arc;
/// use prism_db::{Options, PrismDb};
/// use prism_types::{ConcurrentKvStore, Key, Value};
///
/// let db = Arc::new(PrismDb::open(Options::scaled_default(1_000)).unwrap());
/// std::thread::scope(|scope| {
///     for t in 0..2u64 {
///         let db = Arc::clone(&db);
///         scope.spawn(move || {
///             for i in 0..20 {
///                 db.put(Key::from_id(t * 100 + i), Value::filled(64, t as u8)).unwrap();
///             }
///         });
///     }
/// });
/// assert_eq!(db.scan(&Key::min(), 100).unwrap().entries.len(), 40);
/// ```
pub struct PrismDb {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

// `Arc<PrismDb>` handles are shared across client threads; fail the build
// rather than a downstream user if a non-Send type ever sneaks into a
// partition.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PrismDb>();
};

impl PrismDb {
    /// Open a database with the given options, creating the simulated
    /// storage devices from the configured profiles.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open(options: Options) -> Result<Self> {
        options.validate()?;
        // A configured fault plan is threaded through the devices (latency
        // spikes) and the data-owning layers (torn writes, bit flips, I/O
        // errors) so the whole stack shares one deterministic schedule.
        let storage = match &options.fault_plan {
            Some(plan) => TieredStorage::with_fault_plan(
                options.nvm_profile,
                options.flash_profile,
                Arc::clone(plan),
            ),
            None => TieredStorage::new(options.nvm_profile, options.flash_profile),
        };
        Self::open_with_storage(options, storage)
    }

    /// Open a database on an existing pair of simulated devices (used by
    /// the benchmark harness so all engines in one experiment share device
    /// profiles).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open_with_storage(options: Options, storage: TieredStorage) -> Result<Self> {
        options.validate()?;
        let options = Arc::new(options);
        let seq = Arc::new(CommitSequencer::new());
        let mut partitions = Vec::with_capacity(options.num_partitions);
        for id in 0..options.num_partitions {
            partitions.push(RwLock::new(Partition::new(
                id,
                options.clone(),
                &storage,
                seq.clone(),
            )?));
        }
        // Leave headroom above the expected key count so freshly inserted
        // keys (YCSB-D style) still route to the last partition's range
        // rather than overflowing.
        let span = (options.expected_keys * 2 / options.num_partitions as u64).max(1);
        let sched = (options.compaction_workers > 0)
            .then(|| Scheduler::new(options.num_partitions, options.compaction_workers));
        let commit_log = CommitLog::new(storage.nvm.clone());
        let shared = Arc::new(EngineShared {
            storage,
            partitions,
            partition_span: span,
            sched,
            seq,
            commit_log,
            txn: TxnCounters::default(),
            integrity: IntegrityCounters::default(),
            scrub: ScrubCadence::default(),
            obs: EngineObs::new(options.obs.clone().unwrap_or_default()),
            options: options.clone(),
        });
        // The hub serves typed engine stats through a weak handle, so a
        // long-lived hub never keeps a dropped engine alive.
        let weak = Arc::downgrade(&shared);
        shared.obs.hub.registry.set_engine_source(Box::new(move || {
            weak.upgrade().map(|shared| shared.stats_snapshot())
        }));
        let workers = (0..options.compaction_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("prism-compact-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawning a compaction worker thread")
            })
            .collect();
        Ok(PrismDb { shared, workers })
    }

    /// The engine's configuration.
    pub fn options(&self) -> &Options {
        &self.shared.options
    }

    /// The simulated storage devices backing the engine.
    pub fn storage(&self) -> &TieredStorage {
        &self.shared.storage
    }

    /// Blended storage cost per gigabyte of the configured tiers.
    pub fn cost_per_gb(&self) -> f64 {
        self.shared.storage.cost_per_gb()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.shared.partitions.len()
    }

    /// Total live objects currently resident on NVM across partitions.
    pub fn nvm_object_count(&self) -> usize {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).nvm_object_count())
            .sum()
    }

    /// Total objects currently resident on flash across partitions
    /// (including stale versions not yet compacted away).
    pub fn flash_object_count(&self) -> usize {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).flash_object_count())
            .sum()
    }

    /// Aggregate clock-value histogram across partitions (index = clock
    /// value), as plotted in Figure 5 of the paper.
    pub fn clock_histogram(&self) -> [u64; 4] {
        let mut total = [0u64; 4];
        for i in 0..self.partition_count() {
            let h = self.shared.read_partition(i).clock_histogram();
            for (slot, value) in total.iter_mut().zip(h.iter()) {
                *slot += value;
            }
        }
        total
    }

    /// NVM utilisation of one partition (`0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn partition_utilization(&self, idx: usize) -> f64 {
        self.shared.read_partition(idx).nvm_utilization()
    }

    /// Watermark-relative write pressure of one partition: the partition's
    /// NVM utilisation divided by the compaction high watermark, so `1.0`
    /// means "the next write trips (or queues behind) a demotion
    /// compaction". Submission front-ends use this as a back-pressure
    /// hint; it is also the engine's [`ConcurrentKvStore::shard_write_pressure`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn partition_write_pressure(&self, idx: usize) -> f64 {
        self.partition_utilization(idx) / self.shared.options.high_watermark
    }

    /// Number of background compaction worker threads currently parked
    /// waiting for work (0 in inline-compaction mode). The worker pool is
    /// adaptive: a drained queue parks every worker, and light steady
    /// load keeps all but the first parked — see
    /// `Options::compaction_workers`.
    pub fn parked_compaction_workers(&self) -> u64 {
        self.shared
            .sched
            .as_ref()
            .map_or(0, |sched| sched.parked_workers())
    }

    /// Mean NVM utilisation across partitions.
    pub fn nvm_utilization(&self) -> f64 {
        let sum: f64 = (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).nvm_utilization())
            .sum();
        sum / self.partition_count() as f64
    }

    /// Simulate a crash that loses all DRAM state, then recover every
    /// partition in parallel (recovery time is the maximum over partitions,
    /// since partitions recover independently, §6 of the paper), and
    /// finally replay the NVM-resident commit log: sealed records are
    /// acknowledged (their batches are durable), while an unsealed record
    /// marks a batch torn mid-install — its pre-images are restored so
    /// the batch disappears atomically. Returns the total recovery time.
    ///
    /// Takes `&self` so recovery can be exercised on a shared
    /// `Arc<PrismDb>`. Every partition's write lock is acquired (in
    /// ascending order, like the cross-partition commit protocol) and
    /// held from before the first partition's recovery through the
    /// commit-log replay: concurrent operations observe either pre-crash
    /// or post-recovery state, never a half-rebuilt one, and a
    /// multi-partition commit can never be caught mid-protocol — it
    /// holds its touched locks from persisted intent to seal, so by the
    /// time recovery drains the log every record is either sealed
    /// (durable, kept) or genuinely torn by the simulated power cut
    /// (rolled back). Without the continuous hold, recovery could drain
    /// an in-flight record as "torn", then block on the committer's
    /// locks and roll back a batch that sealed — and was acknowledged —
    /// in the meantime. Each partition's epoch bump aborts any
    /// background compaction job in flight against it: the job's install
    /// becomes a no-op, exactly as if the crash had interrupted it, so
    /// recovery always lands on the last installed (old or new) state —
    /// never a half-compacted one.
    pub fn crash_and_recover(&self) -> Nanos {
        let mut guards: Vec<RwLockWriteGuard<'_, Partition>> = (0..self.partition_count())
            .map(|i| self.shared.write_partition(i))
            .collect();
        // Recovery time is still max-over-partitions: the serial loop is
        // an artefact of the simulation, not of the modelled hardware.
        let per_partition = guards
            .iter_mut()
            .map(|p| p.crash_and_recover())
            .fold(Nanos::ZERO, Nanos::max);
        per_partition + self.replay_commit_log(&mut guards)
    }

    /// Drain the commit log after per-partition recovery: roll torn
    /// records back newest-first by restoring their pre-images into the
    /// still-locked partitions. Restoring a group that never installed
    /// re-writes identical state (a no-op for readers), so rollback needs
    /// no knowledge of how far the torn batch got.
    fn replay_commit_log(&self, guards: &mut [RwLockWriteGuard<'_, Partition>]) -> Nanos {
        let (_sealed, torn) = self.shared.commit_log.drain_for_recovery();
        let mut cost = Nanos::ZERO;
        for record in torn {
            for part in &record.parts {
                let ops: Vec<BatchOp> = part
                    .pre_images
                    .iter()
                    .map(|(key, image)| match image {
                        Some(value) => BatchOp::Put(key.clone(), value.clone()),
                        None => BatchOp::Delete(key.clone()),
                    })
                    .collect();
                if ops.is_empty() {
                    continue;
                }
                cost += guards[part.partition].apply_group(ops, false).expect(
                    "rollback restores values that fit before; \
                     the group path reclaims space inline",
                );
            }
        }
        cost
    }

    /// Fault-injection hook for crash testing: run the cross-partition
    /// commit protocol for `batch` but "lose power" mid-install — the
    /// commit intent is persisted, only the first `install_groups`
    /// partition groups are installed, and the record is left unsealed.
    /// The engine is deliberately left in the torn state; the next
    /// [`PrismDb::crash_and_recover`] must make the batch disappear
    /// atomically by restoring the record's pre-images. (The real commit
    /// path cannot be observed torn — every touched write lock is held
    /// from intent to seal — so recovery's rollback is only reachable
    /// through a simulated power cut like this one.)
    ///
    /// Returns the commit-log batch id.
    ///
    /// # Errors
    ///
    /// Forwards partition write errors; nothing is rolled back (that is
    /// the point).
    ///
    /// # Panics
    ///
    /// Panics if the batch touches fewer than two partitions — a
    /// single-partition group installs under one lock hold and cannot be
    /// torn.
    pub fn apply_batch_leaving_torn(
        &self,
        batch: WriteBatch,
        install_groups: usize,
    ) -> Result<u64> {
        let mut groups: Vec<Vec<BatchOp>> = vec![Vec::new(); self.partition_count()];
        for op in batch {
            groups[self.partition_for(op.key())].push(op);
        }
        let touched: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(idx, _)| idx)
            .collect();
        assert!(
            touched.len() >= 2,
            "a torn commit needs at least two partition groups"
        );
        let mut guards: Vec<(usize, RwLockWriteGuard<'_, Partition>)> = touched
            .iter()
            .map(|&idx| (idx, self.shared.write_partition(idx)))
            .collect();
        let (batch_id, _cost) =
            self.install_groups_with_intent(&mut groups, &mut guards, false, install_groups)?;
        Ok(batch_id)
    }

    /// Number of unsealed (in-flight or torn) commit-log records.
    pub fn torn_commit_records(&self) -> usize {
        self.shared.commit_log.unsealed()
    }

    /// Number of currently pinned snapshots.
    pub fn active_snapshots(&self) -> u64 {
        self.shared.seq.active_pins()
    }

    /// The most recently allocated commit sequence (0 before any write).
    pub fn commit_sequence(&self) -> u64 {
        self.shared.seq.current()
    }

    /// Approximate DRAM bytes currently held by snapshot version history
    /// across all partitions. Bounded by `Options::max_history_bytes`
    /// when that cap is set.
    pub fn snapshot_history_bytes(&self) -> u64 {
        self.shared.seq.history_bytes()
    }

    /// Occupancy and hit/miss counters of the DRAM object caches,
    /// aggregated across partitions (`shards` sums every partition's
    /// independently locked sub-shards). The hit rate here is the
    /// cache-level complement of `EngineStats`' tier read counters: a
    /// sharded and a mutexed cache configuration must converge to the
    /// same rate on the same trace — only their lock contention differs —
    /// which is what the read-path scalability sweep relies on.
    pub fn dram_cache_stats(&self) -> crate::cache::CacheStats {
        let mut stats = crate::cache::CacheStats::default();
        for i in 0..self.partition_count() {
            stats.merge(self.shared.read_partition(i).cache_stats());
        }
        stats
    }

    /// Health of one partition under corruption pressure.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn partition_health(&self, idx: usize) -> PartitionHealth {
        self.shared.read_partition(idx).health()
    }

    /// Total objects currently quarantined (tombstoned-with-error after a
    /// checksum failure) across partitions.
    pub fn quarantined_object_count(&self) -> usize {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).quarantined_len())
            .sum()
    }

    /// Run one budgeted scrub slice against a partition. A report with
    /// `completed == false` parked its cursor mid-walk; call again to
    /// resume. A completed pass with `corrupt_found == 0` re-arms a
    /// degraded partition.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn scrub_partition(&self, idx: usize, budget_bytes: u64) -> ScrubReport {
        self.shared.scrub_pass_traced(idx, budget_bytes)
    }

    /// Drive one complete scrub pass over every partition (in budget
    /// slices of `Options::scrub_io_budget_bytes`), returning the
    /// aggregated report. A pass that still found corruption usually
    /// warrants a second call: the follow-up pass coming back clean is
    /// what returns a degraded partition to [`PartitionHealth::Healthy`].
    pub fn scrub(&self) -> ScrubReport {
        let budget = self.shared.options.scrub_io_budget_bytes.max(1);
        let mut total = ScrubReport {
            completed: true,
            ..ScrubReport::default()
        };
        for idx in 0..self.partition_count() {
            loop {
                let report = self.shared.scrub_pass_traced(idx, budget);
                total.examined += report.examined;
                total.examined_bytes += report.examined_bytes;
                total.corrupt_found += report.corrupt_found;
                total.repaired += report.repaired;
                total.quarantined += report.quarantined;
                if report.completed {
                    break;
                }
            }
        }
        total
    }

    /// Reject writes routed to a degraded (read-only) partition with the
    /// retryable [`PrismError::Degraded`] before taking its write lock.
    /// The check is advisory — a partition degrading between the check
    /// and the write is indistinguishable from the write racing ahead of
    /// the degradation, which is fine either way.
    fn check_writable(&self, idx: usize) -> Result<()> {
        let p = self.shared.read_partition(idx);
        if p.health() == PartitionHealth::Degraded {
            p.note_degraded_refusal();
            return Err(PrismError::Degraded { partition: idx });
        }
        Ok(())
    }

    /// Ask the background pool to scrub a partition after corruption was
    /// detected (no-op in inline mode, where callers scrub explicitly via
    /// [`PrismDb::scrub`]).
    fn request_scrub(&self, idx: usize) {
        if self.shared.background() {
            let fg = self.shared.read_partition(idx).fg();
            self.shared.scheduler().enqueue(JobRequest {
                partition: idx,
                kind: RequestKind::Scrub,
                trigger_fg: fg,
            });
        }
    }

    /// Steady background scrubber cadence: every
    /// `Options::scrub_interval_ops` foreground operations, enqueue one
    /// scrub job for the next partition in round-robin order — but only
    /// when the compaction pool's queue is idle, so scrubbing spends
    /// spare background budget and never queues ahead of (or behind)
    /// demotion work the foreground is waiting on. The idle check runs
    /// *after* the interval fires: a busy pool slips that interval's
    /// scrub entirely rather than accumulating debt. Inline-compaction
    /// mode has no pool; there, callers scrub explicitly via
    /// [`PrismDb::scrub`].
    fn tick_scrub_cadence(&self) {
        let interval = self.shared.options.scrub_interval_ops;
        if interval == 0 || !self.shared.background() {
            return;
        }
        let n = self.shared.scrub.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n % interval != 0 {
            return;
        }
        let sched = self.shared.scheduler();
        if sched.queue_depth() != 0 {
            return;
        }
        let idx = (self
            .shared
            .scrub
            .next_partition
            .fetch_add(1, Ordering::Relaxed)
            % self.partition_count() as u64) as usize;
        let fg = self.shared.read_partition(idx).fg();
        sched.enqueue(JobRequest {
            partition: idx,
            kind: RequestKind::Scrub,
            trigger_fg: fg,
        });
    }

    /// Count an injected I/O error surfaced to a caller.
    fn note_io_fault(&self, err: &PrismError) {
        if matches!(err, PrismError::Io(_)) {
            self.shared
                .integrity
                .io_faults
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Post-write bookkeeping shared by every write path: successful
    /// writes enforce the snapshot-history caps, failed ones feed the
    /// I/O-fault counter.
    fn finish_write(&self, result: Result<Nanos>) -> Result<Nanos> {
        match &result {
            Ok(_) => {
                self.enforce_snapshot_caps();
                self.tick_scrub_cadence();
            }
            Err(err) => self.note_io_fault(err),
        }
        result
    }

    /// Enforce `Options::{max_pin_age_ops, max_history_bytes}`: while the
    /// oldest pinned snapshot is older than the age cap or the preserved
    /// history exceeds the byte cap, force-expire the oldest pin (its
    /// handles fail with [`PrismError::SnapshotExpired`]) and prune every
    /// partition's history down to what the surviving pins can reach.
    fn enforce_snapshot_caps(&self) {
        let age_cap = self.shared.options.max_pin_age_ops;
        let bytes_cap = self.shared.options.max_history_bytes;
        if age_cap == 0 && bytes_cap == 0 {
            return;
        }
        loop {
            let Some(oldest) = self.shared.seq.oldest_pin() else {
                return;
            };
            let over_age =
                age_cap > 0 && self.shared.seq.current().saturating_sub(oldest) > age_cap;
            let over_bytes = bytes_cap > 0 && self.shared.seq.history_bytes() > bytes_cap;
            if !over_age && !over_bytes {
                return;
            }
            let Some((seq, count)) = self.shared.seq.expire_oldest() else {
                return;
            };
            self.shared.obs.trace().record(
                category::SNAPSHOT_EXPIRED,
                None,
                seq,
                format!("handles={count}"),
            );
            self.shared
                .integrity
                .snapshots_expired
                .fetch_add(count, Ordering::Relaxed);
            // Prune before re-checking, so the byte cap observes the
            // space the expiry actually freed.
            let survivor = self.shared.seq.oldest_pin();
            for idx in 0..self.partition_count() {
                self.shared.write_partition(idx).prune_history(survivor);
            }
        }
    }

    fn partition_for(&self, key: &Key) -> usize {
        match self.shared.options.partitioning {
            Partitioning::Hash => (splitmix64(key.id()) % self.partition_count() as u64) as usize,
            Partitioning::Range => {
                let idx = (key.id() / self.shared.partition_span) as usize;
                idx.min(self.partition_count() - 1)
            }
        }
    }

    /// Run a write op against a partition in background-compaction mode:
    /// retry `CapacityExceeded` by waiting for the worker pool (never
    /// while holding the partition lock), then handle watermark /
    /// back-pressure bookkeeping. Returns the op's full charged latency.
    fn background_write<F>(&self, idx: usize, mut op: F) -> Result<Nanos>
    where
        F: FnMut(&mut Partition) -> Result<Nanos>,
    {
        let sched = self.shared.scheduler();
        let mut attempts = 0;
        let mut cost;
        loop {
            let result = op(&mut self.shared.write_partition(idx));
            match result {
                Ok(c) => {
                    cost = c;
                    break;
                }
                Err(PrismError::CapacityExceeded { .. }) if attempts < CAPACITY_RETRIES => {
                    attempts += 1;
                    let fg = self.shared.read_partition(idx).fg();
                    let seen = sched.generation();
                    sched.enqueue(JobRequest {
                        partition: idx,
                        kind: RequestKind::Demote,
                        trigger_fg: fg,
                    });
                    sched.wait_past(seen, WAIT_SLICE);
                }
                Err(PrismError::CapacityExceeded { .. }) => {
                    // The workers could not free space in time: compact
                    // inline as a last resort (this bumps the partition
                    // epoch, discarding any in-flight job).
                    let mut p = self.shared.write_partition(idx);
                    let stall = p.force_free_inline()?;
                    cost = op(&mut p)? + stall;
                    break;
                }
                Err(err) => return Err(err),
            }
        }
        cost += self.after_background_write(idx)?;
        Ok(cost)
    }

    /// Watermark and back-pressure handling after a background-mode write.
    /// Returns the extra stall (if any) to charge to the operation.
    fn after_background_write(&self, idx: usize) -> Result<Nanos> {
        let sched = self.shared.scheduler();
        let (util, fg, promote_hint) = {
            let p = self.shared.read_partition(idx);
            (p.nvm_utilization(), p.fg(), p.promote_pending())
        };
        if promote_hint {
            let due = self.shared.write_partition(idx).take_promote_pending();
            if due {
                sched.enqueue(JobRequest {
                    partition: idx,
                    kind: RequestKind::Promote,
                    trigger_fg: fg,
                });
            }
        }
        if util >= self.shared.options.high_watermark {
            sched.enqueue(JobRequest {
                partition: idx,
                kind: RequestKind::Demote,
                trigger_fg: fg,
            });
        }
        if util < self.shared.options.backpressure_ceiling {
            return Ok(Nanos::ZERO);
        }
        self.shared.obs.trace().record(
            category::BACKPRESSURE,
            Some(idx as u32),
            0,
            format!("util={util:.3}"),
        );
        // Back-pressure: block until a worker brings utilisation back
        // under the ceiling, then charge the virtual wait as a stall.
        let mut waits = 0;
        loop {
            let seen = sched.generation();
            let util = self.shared.read_partition(idx).nvm_utilization();
            if util < self.shared.options.backpressure_ceiling {
                break;
            }
            sched.enqueue(JobRequest {
                partition: idx,
                kind: RequestKind::Demote,
                trigger_fg: fg,
            });
            if waits >= BACKPRESSURE_WAITS {
                // Workers are not keeping up (or died): reclaim inline.
                return self.shared.write_partition(idx).force_free_inline();
            }
            sched.wait_past(seen, WAIT_SLICE);
            waits += 1;
        }
        Ok(self.shared.write_partition(idx).charge_backpressure_stall())
    }

    /// Apply one partition's sub-batch and run the engine-level
    /// after-write bookkeeping once for the whole group (watermark
    /// enqueue / back-pressure in background mode). Returns the group's
    /// charged latency.
    fn apply_partition_group(&self, idx: usize, entries: Vec<BatchOp>) -> Result<Nanos> {
        let merge = self.shared.options.merge_batch_duplicates;
        // The sub-batch applies under one continuous write-lock hold;
        // capacity shortfalls mid-group are reclaimed inline by the
        // partition (never by unlocking and waiting), which preserves the
        // all-or-nothing contract per partition.
        let mut cost = self
            .shared
            .write_partition(idx)
            .apply_group(entries, merge)?;
        if self.shared.background() {
            // One watermark check per partition per batch → at most one
            // demotion enqueue per touched partition.
            cost += self.after_background_write(idx)?;
        }
        Ok(cost)
    }

    /// The multi-partition half of [`ConcurrentKvStore::apply_batch`]:
    /// run the commit-log protocol over ascending write locks, then the
    /// per-partition watermark/back-pressure bookkeeping (which re-locks
    /// partitions, so it must run after the multi-lock hold is released).
    fn apply_batch_multi(&self, groups: &mut [Vec<BatchOp>], touched: &[usize]) -> Result<Nanos> {
        let mut guards: Vec<(usize, RwLockWriteGuard<'_, Partition>)> = touched
            .iter()
            .map(|&idx| (idx, self.shared.write_partition(idx)))
            .collect();
        let result = self.install_groups_with_intent(groups, &mut guards, true, usize::MAX);
        drop(guards);
        let (_batch_id, mut total) = result?;
        if self.shared.background() {
            for &idx in touched {
                total += self.after_background_write(idx)?;
            }
        }
        Ok(total)
    }

    /// The cross-partition commit protocol, run under an already-held set
    /// of ascending partition write `guards` covering every non-empty
    /// group of `groups` (read-only guards with empty groups are allowed
    /// and ignored):
    ///
    /// 1. capture pre-images and persist a [`CommitLog`] intent record,
    /// 2. allocate **one** commit sequence for the whole batch,
    /// 3. install every group on the held guards (stopping after
    ///    `install_limit` groups — the fault-injection hook's lever),
    /// 4. seal the record (skipped when `seal` is false).
    ///
    /// Because every touched lock stays held from intent to seal, no
    /// reader or snapshot can observe a partially installed batch. A
    /// runtime error mid-install rolls the already-installed groups back
    /// to their pre-images (locks still held) and seals the record as
    /// resolved, so the failed batch is all-or-nothing too.
    ///
    /// Returns the commit-log batch id and the total charged latency.
    fn install_groups_with_intent(
        &self,
        groups: &mut [Vec<BatchOp>],
        guards: &mut [(usize, RwLockWriteGuard<'_, Partition>)],
        seal: bool,
        install_limit: usize,
    ) -> Result<(u64, Nanos)> {
        let active: Vec<usize> = guards
            .iter()
            .enumerate()
            .filter(|(_, (idx, _))| !groups[*idx].is_empty())
            .map(|(pos, _)| pos)
            .collect();

        let mut parts = Vec::with_capacity(active.len());
        let mut rollback: Vec<Vec<(Key, Option<Value>)>> = Vec::with_capacity(active.len());
        for &pos in &active {
            let (idx, guard) = &guards[pos];
            let entries = &groups[*idx];
            let mut seen: HashSet<u64> = HashSet::with_capacity(entries.len());
            let mut pre_images = Vec::new();
            for op in entries {
                if seen.insert(op.key().id()) {
                    pre_images.push((op.key().clone(), guard.current_visible(op.key())));
                }
            }
            let digest = group_digest(entries.iter().map(|op| match op {
                BatchOp::Put(key, value) => (key, Some(value.len() as u64)),
                BatchOp::Delete(key) => (key, None),
            }));
            rollback.push(pre_images.clone());
            parts.push(CommitPart {
                partition: *idx,
                entries: entries.len() as u64,
                digest,
                pre_images,
            });
        }
        let (batch_id, mut total) = self.shared.commit_log.begin(parts);

        // One sequence for the whole batch: a pinned snapshot sees every
        // group or none (it cannot observe mid-install state either way,
        // since all touched write locks are held until the seal).
        let seq = self.shared.seq.allocate();
        let merge = self.shared.options.merge_batch_duplicates;
        let mut installed = 0usize;
        let mut failure: Option<PrismError> = None;
        for (step, &pos) in active.iter().enumerate() {
            if step >= install_limit {
                break;
            }
            let (idx, guard) = &mut guards[pos];
            let entries = std::mem::take(&mut groups[*idx]);
            match guard.apply_group_with_seq(entries, merge, seq) {
                Ok(cost) => {
                    total += cost;
                    installed = step + 1;
                }
                Err(err) => {
                    failure = Some(err);
                    break;
                }
            }
        }

        if let Some(err) = failure {
            // Restore the pre-images of every installed group newest-
            // first while all locks are still held, then seal the record
            // as resolved: recovery must not roll it back again.
            for step in (0..installed).rev() {
                let ops: Vec<BatchOp> = rollback[step]
                    .iter()
                    .map(|(key, image)| match image {
                        Some(value) => BatchOp::Put(key.clone(), value.clone()),
                        None => BatchOp::Delete(key.clone()),
                    })
                    .collect();
                if !ops.is_empty() {
                    let (_, guard) = &mut guards[active[step]];
                    guard.apply_group(ops, false)?;
                }
            }
            self.shared.commit_log.seal(batch_id);
            return Err(err);
        }

        if seal {
            total += self.shared.commit_log.seal(batch_id);
        }
        Ok((batch_id, total))
    }

    /// Collect a scan as of a pinned sequence, visiting partitions one at
    /// a time (one short read lock each — never a multi-lock hold).
    fn snapshot_scan_parts(
        &self,
        pinned: u64,
        start: &Key,
        count: usize,
    ) -> Result<(Vec<(Key, Value)>, Nanos)> {
        match self.shared.options.partitioning {
            Partitioning::Range => {
                // Partitions hold contiguous key ranges: walk them in
                // order until enough entries are collected.
                let mut entries = Vec::with_capacity(count);
                let mut latency = Nanos::ZERO;
                let mut cursor = start.clone();
                for idx in self.partition_for(start)..self.partition_count() {
                    if entries.len() >= count {
                        break;
                    }
                    let (mut chunk, cost) = self.shared.read_partition(idx).snapshot_scan_collect(
                        &cursor,
                        count - entries.len(),
                        pinned,
                    )?;
                    latency += cost;
                    entries.append(&mut chunk);
                    cursor = Key::min();
                }
                Ok((entries, latency))
            }
            Partitioning::Hash => {
                // Keys are scattered: every partition may hold part of
                // the range, so collect `count` candidates from each and
                // merge.
                let mut entries: Vec<(Key, Value)> = Vec::with_capacity(count * 2);
                let mut latency = Nanos::ZERO;
                for idx in 0..self.partition_count() {
                    let (mut chunk, cost) = self
                        .shared
                        .read_partition(idx)
                        .snapshot_scan_collect(start, count, pinned)?;
                    latency += cost;
                    entries.append(&mut chunk);
                }
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                entries.truncate(count);
                Ok((entries, latency))
            }
        }
    }

    /// Drain read-side pressure on a partition after a read: apply the
    /// buffered tracker updates and run (inline) or enqueue (background)
    /// any due promotion compaction.
    fn drain_reads(&self, idx: usize) -> Result<()> {
        if self.shared.background() {
            let (due, fg) = {
                let mut p = self.shared.write_partition(idx);
                p.apply_read_side();
                (p.take_promote_pending(), p.fg())
            };
            if due {
                self.shared.scheduler().enqueue(JobRequest {
                    partition: idx,
                    kind: RequestKind::Promote,
                    trigger_fg: fg,
                });
            }
        } else {
            self.shared.write_partition(idx).absorb_reads()?;
        }
        Ok(())
    }
}

impl Drop for PrismDb {
    fn drop(&mut self) {
        if let Some(sched) = &self.shared.sched {
            sched.shutdown();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ConcurrentKvStore for PrismDb {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        if value.len() > prism_nvm::MAX_OBJECT_SIZE {
            return Err(PrismError::ObjectTooLarge {
                size: value.len(),
                max: prism_nvm::MAX_OBJECT_SIZE,
            });
        }
        let idx = self.partition_for(&key);
        self.check_writable(idx)?;
        let result = if !self.shared.background() {
            self.shared.write_partition(idx).put(key, value)
        } else {
            self.background_write(idx, move |p| p.put(key.clone(), value.clone()))
        };
        let result = self.finish_write(result);
        if let Ok(latency) = &result {
            self.shared.obs.put.record(latency.as_nanos());
        }
        result
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        let idx = self.partition_for(key);
        // Bind before matching: a match on the locking expression would
        // keep the read guard alive into the Corruption arm, which needs
        // the write lock on the same partition.
        let result = self.shared.read_partition(idx).get_with_pressure(key);
        let (lookup, pressure) = match result {
            Ok(found) => found,
            Err(PrismError::Corruption(_)) => {
                // Escalate: quarantine the key so the corrupt version can
                // never be served again, and get a scrub pass going.
                let (err, was, now) = {
                    let mut p = self.shared.write_partition(idx);
                    let was = p.health();
                    let err = p.quarantine_on_read(key);
                    (err, was, p.health())
                };
                self.shared.obs.trace().record(
                    category::QUARANTINE,
                    Some(idx as u32),
                    key.id(),
                    "checksum failure on read",
                );
                if was != now && now == PartitionHealth::Degraded {
                    self.shared.obs.trace().record(
                        category::DEGRADED,
                        Some(idx as u32),
                        0,
                        "quarantine threshold crossed",
                    );
                }
                self.request_scrub(idx);
                return Err(err);
            }
            Err(err) => {
                self.note_io_fault(&err);
                return Err(err);
            }
        };
        if pressure {
            self.drain_reads(idx)?;
        }
        self.tick_scrub_cadence();
        self.shared.obs.record_get(&lookup);
        Ok(lookup)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        let idx = self.partition_for(key);
        self.check_writable(idx)?;
        let result = if !self.shared.background() {
            self.shared.write_partition(idx).delete(key)
        } else {
            let key = key.clone();
            self.background_write(idx, move |p| p.delete(&key))
        };
        let result = self.finish_write(result);
        if let Ok(latency) = &result {
            self.shared.obs.put.record(latency.as_nanos());
        }
        result
    }

    /// Apply a [`WriteBatch`] with per-partition group commit.
    ///
    /// Entries are grouped by partition (preserving their relative order,
    /// so a later entry for the same key wins) and each group installs
    /// under a single continuous write-lock hold: one read-side
    /// tracker/CLOCK drain, one request overhead, merged slab writes for
    /// duplicate keys, and one watermark check — hence at most one
    /// compaction run (inline) or demotion enqueue (background) per
    /// touched partition per batch.
    ///
    /// # Atomicity
    ///
    /// The whole batch is all-or-nothing, across partitions. A
    /// single-partition batch installs under one continuous write-lock
    /// hold (recovery takes the same lock, so it observes the group
    /// either fully applied — and durable, writes persist to NVM
    /// synchronously — or not at all). A multi-partition batch runs the
    /// commit-log protocol: every touched partition's write lock is
    /// acquired in ascending order and held from the persisted commit
    /// intent through group installation to the seal, and all groups
    /// share one commit sequence — so concurrent readers, pinned
    /// snapshots and [`PrismDb::crash_and_recover`] (which rolls unsealed
    /// records back to their pre-images) never observe a torn batch.
    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        if batch.is_empty() {
            return Ok(Nanos::ZERO);
        }
        // Validate every entry before applying anything, so an oversized
        // value cannot leave a batch half-applied. The bound is the
        // engine's *configured* largest slot class, which may be tighter
        // than the global object cap.
        let max_slot = self
            .shared
            .options
            .slab_slot_sizes
            .iter()
            .copied()
            .max()
            .unwrap_or(0) as usize;
        let max_value = max_slot.min(prism_nvm::MAX_OBJECT_SIZE);
        for op in batch.entries() {
            if let BatchOp::Put(_, value) = op {
                if value.len() > max_value {
                    return Err(PrismError::ObjectTooLarge {
                        size: value.len(),
                        max: max_value,
                    });
                }
            }
        }
        let mut groups: Vec<Vec<BatchOp>> = vec![Vec::new(); self.partition_count()];
        for op in batch {
            groups[self.partition_for(op.key())].push(op);
        }
        let touched: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(idx, _)| idx)
            .collect();
        // Degraded partitions refuse writes up front, so a batch touching
        // one rejects whole (all-or-nothing) with the retryable error.
        for &idx in &touched {
            self.check_writable(idx)?;
        }
        // A single-partition batch is already atomic under its one
        // write-lock hold; skip the commit-log round trip.
        if touched.len() <= 1 {
            let result = touched.into_iter().try_fold(Nanos::ZERO, |acc, idx| {
                Ok(acc + self.apply_partition_group(idx, std::mem::take(&mut groups[idx]))?)
            });
            let result = self.finish_write(result);
            if let Ok(latency) = &result {
                self.shared.obs.batch.record(latency.as_nanos());
            }
            return result;
        }
        let result = self.apply_batch_multi(&mut groups, &touched);
        let result = self.finish_write(result);
        if let Ok(latency) = &result {
            self.shared.obs.batch.record(latency.as_nanos());
        }
        result
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        // Scans read through a pinned snapshot sequence instead of
        // holding partition locks for their whole duration: the pin
        // freezes which versions are visible, each partition is then
        // visited with a short per-partition read lock, and writers on
        // partitions the scan is not currently touching proceed
        // unimpeded (they preserve superseded versions for the pin).
        // This removes the engine's former ordered-lock scan hold — a
        // long scan no longer serialises the write path.
        let pinned = self.shared.seq.pin();
        let result = self.snapshot_scan_parts(pinned, start, count);
        self.shared.seq.release(pinned);
        let (entries, latency) = result?;
        self.shared.obs.scan.record(latency.as_nanos());
        Ok(ScanResult { entries, latency })
    }

    fn stats(&self) -> EngineStats {
        self.shared.stats_snapshot()
    }

    fn elapsed(&self) -> Nanos {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).elapsed())
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn engine_name(&self) -> &str {
        "prismdb"
    }

    fn shard_count(&self) -> usize {
        self.partition_count()
    }

    fn shard_of(&self, key: &Key) -> usize {
        self.partition_for(key)
    }

    fn shards_for_scan(&self, start: &Key) -> std::ops::Range<usize> {
        match self.shared.options.partitioning {
            // A hash-partitioned scan visits every partition.
            Partitioning::Hash => 0..self.partition_count(),
            // A range-partitioned scan walks ascending partitions from the
            // start key's partition; it may stop early once `count`
            // entries are found, so this is a conservative superset.
            Partitioning::Range => self.partition_for(start)..self.partition_count(),
        }
    }

    fn concurrent_reads(&self) -> bool {
        // Partitions sit behind reader-writer locks: point reads and scans
        // on the same partition overlap with each other.
        true
    }

    fn background_worker_times(&self) -> Vec<Nanos> {
        match &self.shared.sched {
            Some(sched) => sched.worker_times(),
            None => Vec::new(),
        }
    }

    fn shard_read_serial_times(&self) -> Vec<Nanos> {
        // Even with reader-writer partition locks, each read serialises
        // briefly inside one DRAM-cache sub-shard mutex; expose the
        // busiest sub-shard's cumulative time per partition so harness
        // queueing models can charge that residue to the shard.
        (0..self.partition_count())
            .map(|i| Nanos::from_nanos(self.shared.read_partition(i).read_serial_busiest_ns()))
            .collect()
    }

    fn shard_write_pressure(&self, shard: usize) -> f64 {
        self.partition_write_pressure(shard)
    }

    /// Pin a read snapshot at the current commit sequence. Until the
    /// snapshot is released, writers preserve any version they supersede
    /// so snapshot reads stay frozen at pin time.
    fn snapshot(&self) -> Result<SnapshotId> {
        self.shared.txn.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(SnapshotId(self.shared.seq.pin()))
    }

    fn release_snapshot(&self, snapshot: SnapshotId) {
        self.shared.seq.release(snapshot.0);
    }

    fn snapshot_get(&self, snapshot: SnapshotId, key: &Key) -> Result<Option<Value>> {
        if self.shared.seq.is_expired(snapshot.sequence()) {
            return Err(PrismError::SnapshotExpired);
        }
        let idx = self.partition_for(key);
        let (value, _cost) = self
            .shared
            .read_partition(idx)
            .snapshot_get(key, snapshot.sequence())?;
        Ok(value)
    }

    fn snapshot_scan(
        &self,
        snapshot: SnapshotId,
        start: &Key,
        count: usize,
    ) -> Result<Vec<(Key, Value)>> {
        if self.shared.seq.is_expired(snapshot.sequence()) {
            return Err(PrismError::SnapshotExpired);
        }
        let (entries, _cost) = self.snapshot_scan_parts(snapshot.sequence(), start, count)?;
        Ok(entries)
    }

    /// Optimistic multi-key commit: lock the union of read and write
    /// partitions in ascending order, validate that no key in the read
    /// set changed after the snapshot was pinned, then install the write
    /// set — through the commit-log protocol when it spans partitions,
    /// so the transaction is atomic even across a crash.
    fn txn_commit(&self, snapshot: SnapshotId, reads: &[Key], writes: WriteBatch) -> Result<Nanos> {
        if self.shared.seq.is_expired(snapshot.sequence()) {
            return Err(PrismError::SnapshotExpired);
        }
        // Validate value sizes up front so an oversized value cannot
        // leave the transaction half-applied (mirrors `apply_batch`).
        let max_slot = self
            .shared
            .options
            .slab_slot_sizes
            .iter()
            .copied()
            .max()
            .unwrap_or(0) as usize;
        let max_value = max_slot.min(prism_nvm::MAX_OBJECT_SIZE);
        for op in writes.entries() {
            if let BatchOp::Put(_, value) = op {
                if value.len() > max_value {
                    return Err(PrismError::ObjectTooLarge {
                        size: value.len(),
                        max: max_value,
                    });
                }
            }
        }
        let mut groups: Vec<Vec<BatchOp>> = vec![Vec::new(); self.partition_count()];
        for op in writes {
            groups[self.partition_for(op.key())].push(op);
        }
        let write_parts: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(idx, _)| idx)
            .collect();
        let mut touched: Vec<usize> = write_parts.clone();
        touched.extend(reads.iter().map(|key| self.partition_for(key)));
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() {
            // Nothing read, nothing written: a trivially successful commit.
            self.shared.txn.commits.fetch_add(1, Ordering::Relaxed);
            return Ok(Nanos::ZERO);
        }
        for &idx in &write_parts {
            self.check_writable(idx)?;
        }
        let mut guards: Vec<(usize, RwLockWriteGuard<'_, Partition>)> = touched
            .iter()
            .map(|&idx| (idx, self.shared.write_partition(idx)))
            .collect();
        // First-committer-wins validation: any read key whose newest
        // version (live or preserved-for-snapshots) postdates the pinned
        // sequence means a concurrent commit overlapped — abort.
        for key in reads {
            let idx = self.partition_for(key);
            let pos = touched
                .binary_search(&idx)
                .expect("read partitions are in the touched set");
            let newest = guards[pos].1.newest_seq(key);
            if newest.is_some_and(|seq| seq > snapshot.sequence()) {
                self.shared.txn.conflicts.fetch_add(1, Ordering::Relaxed);
                return Err(PrismError::TxnConflict { key: key.id() });
            }
        }
        let result = if write_parts.is_empty() {
            // Read-only transaction: validation alone commits it.
            Ok(Nanos::ZERO)
        } else if write_parts.len() == 1 {
            // One write partition: its single write-lock hold is already
            // atomic, skip the commit-log round trip.
            let idx = write_parts[0];
            let pos = touched
                .binary_search(&idx)
                .expect("write partitions are in the touched set");
            guards[pos]
                .1
                .apply_group(std::mem::take(&mut groups[idx]), true)
        } else {
            self.install_groups_with_intent(&mut groups, &mut guards, true, usize::MAX)
                .map(|(_, cost)| cost)
        };
        drop(guards);
        let mut total = match result {
            Ok(cost) => cost,
            Err(err) => return self.finish_write(Err(err)),
        };
        if self.shared.background() {
            // Watermark/back-pressure bookkeeping re-locks partitions, so
            // it must run after the multi-lock hold is released.
            for idx in write_parts {
                match self.after_background_write(idx) {
                    Ok(cost) => total += cost,
                    Err(err) => return self.finish_write(Err(err)),
                }
            }
        }
        self.shared.txn.commits.fetch_add(1, Ordering::Relaxed);
        let result = self.finish_write(Ok(total));
        if let Ok(latency) = &result {
            self.shared.obs.txn_commit.record(latency.as_nanos());
        }
        result
    }

    fn shard_health(&self, shard: usize) -> PartitionHealth {
        self.partition_health(shard)
    }

    fn quarantined_objects(&self) -> u64 {
        self.quarantined_object_count() as u64
    }
}

/// The single-threaded API, kept as a thin adapter over the
/// [`ConcurrentKvStore`] impl so every existing caller (tests, benches,
/// experiments) works unchanged.
impl KvStore for PrismDb {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        ConcurrentKvStore::put(self, key, value)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        ConcurrentKvStore::get(self, key)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        ConcurrentKvStore::delete(self, key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        ConcurrentKvStore::scan(self, start, count)
    }

    fn apply_batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        ConcurrentKvStore::apply_batch(self, batch)
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(self)
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(self)
    }

    fn engine_name(&self) -> &str {
        ConcurrentKvStore::engine_name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::ReadSource;

    fn small_db(keys: u64, partitions: usize) -> PrismDb {
        PrismDb::open(small_options(keys, partitions)).unwrap()
    }

    fn small_options(keys: u64, partitions: usize) -> Options {
        let mut options = Options::scaled_default(keys);
        options.num_partitions = partitions;
        options.compaction.bucket_size_keys = 512;
        options.sst_target_bytes = 32 * 1024;
        options
    }

    fn background_db(keys: u64, partitions: usize, workers: usize) -> PrismDb {
        let mut options = small_options(keys, partitions);
        options.compaction_workers = workers;
        PrismDb::open(options).unwrap()
    }

    #[test]
    fn routing_covers_all_partitions() {
        let db = small_db(10_000, 4);
        for id in (0..10_000u64).step_by(101) {
            db.put(Key::from_id(id), Value::filled(200, 1)).unwrap();
        }
        for id in (0..10_000u64).step_by(101) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        assert_eq!(db.partition_count(), 4);
        assert!(db.nvm_object_count() > 0);
    }

    #[test]
    fn oversized_values_are_rejected_at_the_engine_boundary() {
        let db = small_db(1_000, 2);
        let err = db.put(Key::from_id(1), Value::filled(8192, 0)).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
    }

    #[test]
    fn cross_partition_scan_returns_keys_in_order() {
        let db = small_db(4_000, 4);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(300, 1)).unwrap();
        }
        // Start near the end of one partition so the scan must spill into
        // the next partition.
        let span = 4_000 * 2 / 4;
        let start = span - 20;
        let result = db.scan(&Key::from_id(start), 60).unwrap();
        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (start..start + 60).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn stats_aggregate_partitions_and_devices() {
        let db = small_db(5_000, 2);
        for id in 0..5_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        for id in (0..5_000u64).step_by(7) {
            db.get(&Key::from_id(id)).unwrap();
        }
        let stats = KvStore::stats(&db);
        assert!(stats.user_bytes_written >= 5_000 * 1000);
        assert!(stats.nvm_io.bytes_written > 0);
        assert!(stats.reads_found() > 0);
        assert!(KvStore::elapsed(&db) > Nanos::ZERO);
        assert!(db.cost_per_gb() > 0.0);
        assert_eq!(KvStore::engine_name(&db), "prismdb");
        // The inline engine reports no virtual background workers and the
        // compaction time identity holds.
        assert!(db.background_worker_times().is_empty());
        assert_eq!(
            stats.compaction.total_time,
            stats.compaction.fast_tier_time + stats.compaction.slow_tier_time
        );
        // Stalls are summed across partitions while elapsed is the max
        // over partitions, so the aggregate bound is per-partition.
        assert!(stats.compaction.stall_time <= KvStore::elapsed(&db) * 2);
    }

    #[test]
    fn engine_crash_recovery_preserves_data() {
        let db = small_db(3_000, 2);
        for id in 0..3_000u64 {
            db.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        db.put(Key::from_id(11), Value::filled(900, 99)).unwrap();
        db.delete(&Key::from_id(12)).unwrap();
        let recovery = db.crash_and_recover();
        assert!(recovery > Nanos::ZERO);
        assert_eq!(
            db.get(&Key::from_id(11)).unwrap().value.unwrap().as_bytes()[0],
            99
        );
        assert!(db.get(&Key::from_id(12)).unwrap().value.is_none());
        for id in (0..3_000u64).step_by(41) {
            if id == 12 {
                continue;
            }
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
    }

    #[test]
    fn read_heavy_workload_keeps_hot_reads_fast() {
        let db = small_db(4_000, 2);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Zipf-like hot set: read keys 0..100 repeatedly.
        for _ in 0..30 {
            for id in 0..100u64 {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        let mut fast = 0;
        for id in 0..100u64 {
            let got = db.get(&Key::from_id(id)).unwrap();
            if matches!(got.source, ReadSource::Dram | ReadSource::Nvm) {
                fast += 1;
            }
        }
        assert!(fast >= 90, "hot reads should avoid flash, {fast}/100 fast");
    }

    #[test]
    fn shared_handles_drive_the_engine_from_many_threads() {
        let db = Arc::new(small_db(6_000, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..300u64 {
                        let id = t * 1_500 + i;
                        db.put(Key::from_id(id), Value::filled(256, t as u8))
                            .unwrap();
                        if i % 3 == 0 {
                            let got = db.get(&Key::from_id(id)).unwrap();
                            assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
                        }
                    }
                });
            }
        });
        let db = Arc::into_inner(db).expect("all worker handles dropped");
        for t in 0..4u64 {
            let got = ConcurrentKvStore::get(&db, &Key::from_id(t * 1_500)).unwrap();
            assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
        }
        assert_eq!(ConcurrentKvStore::engine_name(&db), "prismdb");
        assert_eq!(db.shard_count(), 4);
        assert!(db.concurrent_reads());
    }

    #[test]
    fn concurrent_scans_and_writes_do_not_deadlock() {
        let mut options = Options::scaled_default(4_000);
        options.num_partitions = 4;
        options.partitioning = Partitioning::Range;
        let db = Arc::new(PrismDb::open(options).unwrap());
        for id in 0..4_000u64 {
            ConcurrentKvStore::put(&db, Key::from_id(id), Value::filled(128, 1)).unwrap();
        }
        std::thread::scope(|scope| {
            // Scanners repeatedly cross partition boundaries while writers
            // mutate every partition.
            for s in 0..2u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for round in 0..60u64 {
                        let start = (s * 900 + round * 37) % 3_500;
                        let result =
                            ConcurrentKvStore::scan(&db, &Key::from_id(start), 200).unwrap();
                        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
                        assert!(ids.windows(2).all(|w| w[0] < w[1]), "scan out of order");
                    }
                });
            }
            for t in 0..2u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..600u64 {
                        let id = (t * 2_000 + i * 7) % 4_000;
                        ConcurrentKvStore::put(&db, Key::from_id(id), Value::filled(128, 2))
                            .unwrap();
                    }
                });
            }
        });
        assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let db = small_db(2_000, 4);
        for id in 0..2_000u64 {
            let shard = db.shard_of(&Key::from_id(id));
            assert!(shard < db.shard_count());
            assert_eq!(shard, db.shard_of(&Key::from_id(id)));
        }
    }

    #[test]
    fn background_engine_keeps_all_data_and_reports_worker_time() {
        let keys = 6_000u64;
        let db = background_db(keys, 4, 2);
        for round in 0..2u8 {
            for id in 0..keys {
                db.put(Key::from_id(id), Value::filled(1000, round))
                    .unwrap();
            }
        }
        for id in (0..keys).step_by(53) {
            let got = db.get(&Key::from_id(id)).unwrap();
            assert_eq!(
                got.value
                    .unwrap_or_else(|| panic!("key {id} lost"))
                    .as_bytes()[0],
                1
            );
        }
        let worker_times = db.background_worker_times();
        assert_eq!(worker_times.len(), 2);
        assert!(
            worker_times.iter().any(|t| *t > Nanos::ZERO),
            "sustained writes must have produced background compactions"
        );
        let stats = KvStore::stats(&db);
        assert!(stats.compaction.jobs > 0);
        assert!(stats.compaction.overlap_time > Nanos::ZERO);
        assert_eq!(
            stats.compaction.total_time,
            stats.compaction.fast_tier_time + stats.compaction.slow_tier_time
        );
        // Stalls are summed across the 4 partitions; elapsed is the max.
        assert!(stats.compaction.stall_time <= KvStore::elapsed(&db) * 4);
        assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn background_engine_survives_crash_recovery_mid_queue() {
        let keys = 4_000u64;
        let db = background_db(keys, 4, 2);
        for id in 0..keys {
            db.put(Key::from_id(id), Value::filled(1000, 7)).unwrap();
        }
        // Crash while the queue/workers are likely mid-job, then verify
        // and keep writing.
        db.crash_and_recover();
        for id in (0..keys).step_by(31) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        for id in 0..keys / 2 {
            db.put(Key::from_id(id), Value::filled(1000, 8)).unwrap();
        }
        db.crash_and_recover();
        for id in (0..keys / 2).step_by(17) {
            assert_eq!(
                db.get(&Key::from_id(id)).unwrap().value.unwrap().as_bytes()[0],
                8
            );
        }
    }

    #[test]
    fn apply_batch_groups_by_partition_and_matches_per_op_semantics() {
        let db = small_db(2_000, 4);
        let mut batch = WriteBatch::new();
        for id in 0..200u64 {
            batch.put(Key::from_id(id * 7 % 2_000), Value::filled(256, id as u8));
        }
        batch.delete(Key::from_id(7));
        let cost = ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        assert!(cost > Nanos::ZERO);
        assert!(db.get(&Key::from_id(7)).unwrap().value.is_none());
        assert!(db.get(&Key::from_id(14)).unwrap().value.is_some());
        let stats = KvStore::stats(&db);
        assert!(stats.batch_groups >= 1 && stats.batch_groups <= 4);
        assert_eq!(stats.batch_entries, 201);
        // An empty batch is free; an oversized value rejects the whole
        // batch before anything applies.
        assert_eq!(
            ConcurrentKvStore::apply_batch(&db, WriteBatch::new()).unwrap(),
            Nanos::ZERO
        );
        let mut bad = WriteBatch::new();
        bad.put(Key::from_id(1_999), Value::filled(100, 1));
        bad.put(Key::from_id(1_998), Value::filled(8192, 1));
        let err = ConcurrentKvStore::apply_batch(&db, bad).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
        assert!(
            db.get(&Key::from_id(1_999)).unwrap().value.is_none(),
            "a rejected batch must not be half-applied"
        );
        // The pre-validation bound is the engine's *configured* largest
        // slot class, not just the global object cap: a value that fits
        // the cap but no configured slot must reject the whole batch up
        // front rather than fail mid-group.
        let mut options = small_options(500, 2);
        options.slab_slot_sizes = vec![128, 256];
        let narrow = PrismDb::open(options).unwrap();
        let mut bad = WriteBatch::new();
        bad.put(Key::from_id(1), Value::filled(100, 1));
        bad.put(Key::from_id(2), Value::filled(1_000, 1));
        let err = ConcurrentKvStore::apply_batch(&narrow, bad).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { max: 256, .. }));
        assert!(
            narrow.get(&Key::from_id(1)).unwrap().value.is_none(),
            "config-oversized batches must reject before applying anything"
        );
    }

    /// The batched-path stall-accounting identities: even when batches
    /// trip the back-pressure ceiling (or exhaust NVM mid-group and
    /// reclaim inline), compaction time still splits exactly into tier
    /// times and foreground stalls never exceed elapsed virtual time.
    #[test]
    fn batched_backpressure_keeps_stall_accounting_identities() {
        let mut options = small_options(2_000, 1);
        options.compaction_workers = 1;
        options.nvm_capacity_bytes = 128 * 1024;
        options.nvm_profile.capacity_bytes = 128 * 1024;
        options.high_watermark = 0.6;
        options.low_watermark = 0.5;
        options.backpressure_ceiling = 0.8;
        let db = PrismDb::open(options).unwrap();
        for round in 0..8u64 {
            let mut batch = WriteBatch::new();
            for i in 0..50u64 {
                batch.put(
                    Key::from_id(round * 50 + i),
                    Value::filled(1000, round as u8),
                );
            }
            ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        }
        let stats = KvStore::stats(&db);
        assert!(
            stats.compaction.backpressure_stalls > 0,
            "the batches must have hit the ceiling or reclaimed inline"
        );
        assert!(stats.compaction.stall_time > Nanos::ZERO);
        assert_eq!(
            stats.compaction.total_time,
            stats.compaction.fast_tier_time + stats.compaction.slow_tier_time,
            "compaction time must split exactly into tier times"
        );
        // One partition: the engine's elapsed is that partition's elapsed.
        assert!(
            stats.compaction.stall_time <= KvStore::elapsed(&db),
            "stalls ({:?}) cannot exceed elapsed ({:?})",
            stats.compaction.stall_time,
            KvStore::elapsed(&db)
        );
        // All 400 keys must still be readable after the pressure.
        for id in (0..400u64).step_by(23) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
    }

    /// Regression: one batch runs one watermark check per touched
    /// partition, so it accepts at most one demotion enqueue per touched
    /// partition — never one per entry.
    #[test]
    fn a_batch_enqueues_at_most_one_compaction_job_per_touched_partition() {
        let mut options = small_options(400, 2);
        options.partitioning = Partitioning::Range;
        options.compaction_workers = 1;
        options.nvm_capacity_bytes = 512 * 1024; // 256 KB per partition
        options.nvm_profile.capacity_bytes = 512 * 1024;
        options.high_watermark = 0.9;
        options.low_watermark = 0.7;
        let db = PrismDb::open(options).unwrap();
        // Load partition 0 (ids 0..400 under range partitioning) to ~78 %
        // utilisation: below the high watermark, so nothing enqueues.
        for id in 0..200u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        assert_eq!(KvStore::stats(&db).compaction.enqueued_jobs, 0);
        // One 40-entry batch into the same partition pushes it past the
        // high watermark (~94 %) but below the ceiling.
        let mut batch = WriteBatch::new();
        for id in 200..240u64 {
            batch.put(Key::from_id(id), Value::filled(1000, 2));
        }
        ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        let enqueued = KvStore::stats(&db).compaction.enqueued_jobs;
        assert!(
            enqueued <= 1,
            "a single-partition batch must accept at most one demotion \
             enqueue, got {enqueued}"
        );
        assert_eq!(enqueued, 1, "crossing the watermark must enqueue the job");
    }

    /// The adaptive-pool contract at engine level: once the compaction
    /// queue drains, every background worker parks (none spins), and an
    /// inline engine reports no workers at all.
    #[test]
    fn a_drained_compaction_queue_parks_all_workers() {
        let db = background_db(3_000, 4, 3);
        for id in 0..3_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Workers may still be draining demotions; once the queue and the
        // in-flight jobs are done, all 3 workers must be parked.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.parked_compaction_workers() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers failed to park after the queue drained \
                 (parked {}, queue depth {})",
                db.parked_compaction_workers(),
                KvStore::stats(&db).compaction.queue_depth
            );
            std::thread::yield_now();
        }
        // Reaching 3 above is the assertion; `parked` transiently dips on
        // spurious condvar wakeups, so an equality re-read would be racy.
        assert_eq!(KvStore::stats(&db).compaction.queue_depth, 0);
        // Inline engines have no workers to park.
        assert_eq!(small_db(500, 2).parked_compaction_workers(), 0);
    }

    #[test]
    fn background_workers_shut_down_cleanly_on_drop() {
        let db = background_db(1_000, 2, 3);
        for id in 0..1_000u64 {
            db.put(Key::from_id(id), Value::filled(800, 1)).unwrap();
        }
        drop(db); // must not hang joining the worker threads
    }

    #[test]
    fn torn_multi_partition_batch_rolls_back_on_recovery() {
        let db = small_db(4_000, 4);
        // One baseline key per partition quadrant; the batch overwrites
        // two of them, deletes one and inserts one fresh key.
        let span = 1_000u64;
        for q in 0..4u64 {
            db.put(Key::from_id(q * span), Value::filled(300, q as u8 + 1))
                .unwrap();
        }
        let mut batch = WriteBatch::new();
        batch.put(Key::from_id(0), Value::filled(400, 101));
        batch.put(Key::from_id(span), Value::filled(400, 102));
        batch.delete(Key::from_id(2 * span));
        batch.put(Key::from_id(3 * span + 7), Value::filled(400, 103));
        // Crash after installing only the first of four groups.
        db.apply_batch_leaving_torn(batch, 1).unwrap();
        assert_eq!(db.torn_commit_records(), 1);
        db.crash_and_recover();
        assert_eq!(db.torn_commit_records(), 0);
        // Every key is back to its pre-batch state: the batch vanished
        // atomically.
        for q in 0..4u64 {
            let got = db.get(&Key::from_id(q * span)).unwrap();
            let value = got.value.expect("baseline keys survive rollback");
            assert_eq!(value.len(), 300);
            assert_eq!(value.as_bytes()[0], q as u8 + 1);
        }
        assert!(db.get(&Key::from_id(3 * span + 7)).unwrap().value.is_none());
        let stats = ConcurrentKvStore::stats(&db);
        assert_eq!(stats.txn.commit_intents, 1);
        assert_eq!(stats.txn.commit_rolled_back, 1);
        assert_eq!(stats.txn.commit_seals, 0);
    }

    #[test]
    fn sealed_multi_partition_batch_survives_recovery() {
        let db = small_db(4_000, 4);
        let mut batch = WriteBatch::new();
        for q in 0..4u64 {
            batch.put(Key::from_id(q * 1_000), Value::filled(256, 7));
        }
        ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        assert_eq!(db.torn_commit_records(), 0);
        db.crash_and_recover();
        for q in 0..4u64 {
            let got = db.get(&Key::from_id(q * 1_000)).unwrap();
            assert_eq!(got.value.expect("sealed batch is durable").len(), 256);
        }
        let stats = ConcurrentKvStore::stats(&db);
        assert_eq!(stats.txn.commit_seals, 1);
        assert_eq!(stats.txn.commit_replayed, 1);
        assert_eq!(stats.txn.commit_rolled_back, 0);
    }

    #[test]
    fn snapshot_reads_are_frozen_at_pin_time() {
        let db = small_db(2_000, 2);
        db.put(Key::from_id(5), Value::filled(100, 1)).unwrap();
        db.put(Key::from_id(1_500), Value::filled(100, 2)).unwrap();
        let snap = db.snapshot().unwrap();
        assert_eq!(db.active_snapshots(), 1);
        // Overwrite, delete and insert behind the snapshot's back.
        db.put(Key::from_id(5), Value::filled(200, 9)).unwrap();
        db.delete(&Key::from_id(1_500)).unwrap();
        db.put(Key::from_id(42), Value::filled(100, 3)).unwrap();
        // The snapshot still sees exactly the pin-time state.
        let v5 = db.snapshot_get(snap, &Key::from_id(5)).unwrap();
        assert_eq!(v5.expect("key 5 existed at pin time").len(), 100);
        let v1500 = db.snapshot_get(snap, &Key::from_id(1_500)).unwrap();
        assert_eq!(v1500.expect("key 1500 existed at pin time").len(), 100);
        assert!(db.snapshot_get(snap, &Key::from_id(42)).unwrap().is_none());
        let scan = db.snapshot_scan(snap, &Key::min(), 10).unwrap();
        let ids: Vec<u64> = scan.iter().map(|(k, _)| k.id()).collect();
        assert_eq!(ids, vec![5, 1_500]);
        // Live reads see the new state all along.
        assert_eq!(db.get(&Key::from_id(5)).unwrap().value.unwrap().len(), 200);
        assert!(db.get(&Key::from_id(1_500)).unwrap().value.is_none());
        db.release_snapshot(snap);
        assert_eq!(db.active_snapshots(), 0);
        let stats = ConcurrentKvStore::stats(&db);
        assert_eq!(stats.txn.snapshots, 1);
    }

    #[test]
    fn txn_commit_validates_reads_and_installs_writes() {
        let db = small_db(4_000, 4);
        db.put(Key::from_id(10), Value::filled(100, 1)).unwrap();
        db.put(Key::from_id(2_010), Value::filled(100, 2)).unwrap();

        // A clean transaction: read both keys, write across partitions.
        let snap = db.snapshot().unwrap();
        let mut writes = WriteBatch::new();
        writes.put(Key::from_id(10), Value::filled(150, 3));
        writes.put(Key::from_id(3_010), Value::filled(150, 4));
        let reads = [Key::from_id(10), Key::from_id(2_010)];
        db.txn_commit(snap, &reads, writes).unwrap();
        db.release_snapshot(snap);
        assert_eq!(db.get(&Key::from_id(10)).unwrap().value.unwrap().len(), 150);

        // A conflicted transaction: the read key changes after the pin.
        let snap = db.snapshot().unwrap();
        db.put(Key::from_id(2_010), Value::filled(120, 5)).unwrap();
        let mut writes = WriteBatch::new();
        writes.put(Key::from_id(10), Value::filled(175, 6));
        let err = db
            .txn_commit(snap, &[Key::from_id(2_010)], writes)
            .unwrap_err();
        assert!(matches!(err, PrismError::TxnConflict { key: 2_010 }));
        db.release_snapshot(snap);
        // The conflicted write set must not have installed.
        assert_eq!(db.get(&Key::from_id(10)).unwrap().value.unwrap().len(), 150);

        let stats = ConcurrentKvStore::stats(&db);
        assert_eq!(stats.txn.txn_commits, 1);
        assert_eq!(stats.txn.txn_conflicts, 1);
    }

    /// The steady scrubber cadence: with a short `scrub_interval_ops`, a
    /// read-only workload against an idle background pool keeps enqueuing
    /// scrub jobs, and the workers complete passes without any corruption
    /// having been detected.
    #[test]
    fn scrub_cadence_runs_steady_passes_on_idle_background_pool() {
        let mut options = small_options(2_000, 2);
        options.compaction_workers = 2;
        options.scrub_interval_ops = 100;
        let db = PrismDb::open(options).unwrap();
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(500, 1)).unwrap();
        }
        // Drive reads until the cadence has fired and a worker has
        // finished at least one pass per partition (round-robin covers
        // both partitions well within the deadline).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut reads = 0u64;
        loop {
            let scrubs = ConcurrentKvStore::stats(&db).integrity.scrub_passes;
            if scrubs >= 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "cadence produced only {scrubs} scrub passes after {reads} reads"
            );
            for id in 0..500u64 {
                db.get(&Key::from_id(id)).unwrap();
                reads += 1;
            }
        }
        // Cadence scrubbing is maintenance, not corruption response: the
        // store stays healthy and nothing was quarantined.
        assert_eq!(db.quarantined_object_count(), 0);
        for idx in 0..db.partition_count() {
            assert_eq!(db.partition_health(idx), PartitionHealth::Healthy);
        }
    }

    /// `scrub_interval_ops == 0` disables the cadence entirely, and the
    /// inline engine (no pool) never schedules cadence scrubs regardless
    /// of the interval.
    #[test]
    fn scrub_cadence_can_be_disabled() {
        let mut options = small_options(1_000, 2);
        options.compaction_workers = 2;
        options.scrub_interval_ops = 0;
        let db = PrismDb::open(options).unwrap();
        for id in 0..1_000u64 {
            db.put(Key::from_id(id), Value::filled(400, 1)).unwrap();
        }
        for _ in 0..5 {
            for id in 0..1_000u64 {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        assert_eq!(ConcurrentKvStore::stats(&db).integrity.scrub_passes, 0);

        let mut options = small_options(1_000, 2);
        options.scrub_interval_ops = 10;
        let inline = PrismDb::open(options).unwrap();
        for id in 0..1_000u64 {
            inline.put(Key::from_id(id), Value::filled(400, 1)).unwrap();
        }
        for id in 0..1_000u64 {
            inline.get(&Key::from_id(id)).unwrap();
        }
        assert_eq!(ConcurrentKvStore::stats(&inline).integrity.scrub_passes, 0);
    }

    /// `dram_cache_stats` aggregates real occupancy and hit/miss traffic,
    /// and — the property the read-path scalability sweep stands on — a
    /// sharded cache and a single-mutex cache converge to the *same* hit
    /// rate on the same trace: sharding changes lock contention, never
    /// what is cached at this trace's access pattern.
    #[test]
    fn dram_cache_stats_report_traffic_and_sharding_parity() {
        let run_trace = |cache_shards: usize| {
            let mut options = small_options(2_000, 2);
            options.cache_shards = cache_shards;
            let db = PrismDb::open(options).unwrap();
            for id in 0..2_000u64 {
                db.put(Key::from_id(id), Value::filled(400, 1)).unwrap();
            }
            // Two passes over a slice of the keyspace: pass one fills the
            // cache (misses), pass two hits what stayed resident.
            for _ in 0..2 {
                for id in 0..500u64 {
                    db.get(&Key::from_id(id)).unwrap();
                }
            }
            db.dram_cache_stats()
        };
        let sharded = run_trace(8);
        assert!(sharded.shards > 2, "two partitions of several sub-shards");
        assert!(sharded.hits > 0, "second pass must hit: {sharded:?}");
        assert!(sharded.misses > 0, "first pass must miss: {sharded:?}");
        assert!(sharded.objects > 0);
        assert!(sharded.used_bytes >= 400 * sharded.objects as u64);
        assert!(sharded.hit_rate() > 0.0 && sharded.hit_rate() < 1.0);

        let mutexed = run_trace(1);
        assert_eq!(mutexed.shards, 2, "one sub-shard per partition");
        assert_eq!(
            sharded.hits + sharded.misses,
            mutexed.hits + mutexed.misses,
            "identical traces probe the cache identically"
        );
        // Splitting capacity over sub-shards can shift *which* keys stay
        // resident, but at this sizing both configurations cache the whole
        // touched slice, so the rates must match exactly.
        assert_eq!(sharded.hits, mutexed.hits);
        assert_eq!(sharded.misses, mutexed.misses);
    }

    /// The per-shard serial read-time export: writes charge nothing (the
    /// write path only invalidates cache entries), reads accumulate
    /// busiest-sub-shard time in every partition they touch, and the
    /// vector always has one slot per partition.
    #[test]
    fn shard_read_serial_times_track_read_traffic() {
        let db = small_db(2_000, 2);
        for id in 0..2_000u64 {
            db.put(Key::from_id(id), Value::filled(500, 1)).unwrap();
        }
        let after_writes = db.shard_read_serial_times();
        assert_eq!(after_writes.len(), 2);
        assert!(after_writes.iter().all(|t| t.is_zero()));
        for id in 0..2_000u64 {
            db.get(&Key::from_id(id)).unwrap();
        }
        let after_reads = db.shard_read_serial_times();
        assert_eq!(after_reads.len(), 2);
        assert!(
            after_reads.iter().all(|t| *t > Nanos::ZERO),
            "every partition served reads, so every partition must have \
             accumulated serial cache time: {after_reads:?}"
        );
        // The serial residue is a small slice of each read, not the whole
        // read path: it must stay below the engine's total elapsed time.
        let busiest = after_reads.iter().copied().fold(Nanos::ZERO, Nanos::max);
        assert!(busiest < ConcurrentKvStore::elapsed(&db));
    }
}
