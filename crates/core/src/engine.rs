//! The PrismDB engine: partition routing, per-partition locking and the
//! [`KvStore`] / [`ConcurrentKvStore`] implementations.

use std::sync::{Arc, Mutex, MutexGuard};

use prism_storage::TieredStorage;
use prism_types::{
    ConcurrentKvStore, EngineStats, Key, KvStore, Lookup, Nanos, PrismError, Result, ScanResult,
    Value,
};

use crate::options::{Options, Partitioning};
use crate::partition::Partition;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// PrismDB: a two-tier key-value store with popularity-aware multi-tiered
/// storage compaction.
///
/// The engine is partitioned: each partition owns a contiguous slice of the
/// key-id space along with its NVM slab store, B-tree index, flash sorted
/// log, popularity tracker and compaction state (Figure 3 of the paper).
/// All client operations are routed by key; scans walk partitions in key
/// order because partitioning is range-based.
///
/// # Concurrency
///
/// Every partition sits behind its own [`Mutex`], so an `Arc<PrismDb>` can
/// be driven from many OS threads through the [`ConcurrentKvStore`] trait:
/// operations on different partitions proceed in parallel, operations on
/// the same partition serialise. Single-key operations take exactly one
/// partition lock. Cross-partition scans are the only multi-lock path; they
/// acquire partition locks in ascending partition order and hold them until
/// the scan completes, which makes scans atomic snapshots and rules out
/// lock-order deadlocks. The legacy [`KvStore`] (`&mut self`) impl is a
/// thin adapter over the shared-reference path, so existing single-threaded
/// callers are unaffected.
///
/// # Example
///
/// ```
/// use prism_db::{Options, PrismDb};
/// use prism_types::{Key, KvStore, Value};
///
/// let options = Options::builder(10_000).partitions(2).build().unwrap();
/// let mut db = PrismDb::open(options).unwrap();
/// db.put(Key::from_id(7), Value::filled(256, 1)).unwrap();
/// let found = db.get(&Key::from_id(7)).unwrap();
/// assert_eq!(found.value.unwrap().len(), 256);
/// ```
///
/// Driving the same engine from multiple threads:
///
/// ```
/// use std::sync::Arc;
/// use prism_db::{Options, PrismDb};
/// use prism_types::{ConcurrentKvStore, Key, Value};
///
/// let db = Arc::new(PrismDb::open(Options::scaled_default(1_000)).unwrap());
/// std::thread::scope(|scope| {
///     for t in 0..2u64 {
///         let db = Arc::clone(&db);
///         scope.spawn(move || {
///             for i in 0..20 {
///                 db.put(Key::from_id(t * 100 + i), Value::filled(64, t as u8)).unwrap();
///             }
///         });
///     }
/// });
/// assert_eq!(db.scan(&Key::min(), 100).unwrap().entries.len(), 40);
/// ```
pub struct PrismDb {
    options: Arc<Options>,
    storage: TieredStorage,
    partitions: Vec<Mutex<Partition>>,
    /// Key-id span covered by each partition.
    partition_span: u64,
}

// `Arc<PrismDb>` handles are shared across client threads; fail the build
// rather than a downstream user if a non-Send type ever sneaks into a
// partition.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PrismDb>();
};

impl PrismDb {
    /// Open a database with the given options, creating the simulated
    /// storage devices from the configured profiles.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open(options: Options) -> Result<Self> {
        options.validate()?;
        let storage = TieredStorage::new(options.nvm_profile, options.flash_profile);
        Self::open_with_storage(options, storage)
    }

    /// Open a database on an existing pair of simulated devices (used by
    /// the benchmark harness so all engines in one experiment share device
    /// profiles).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open_with_storage(options: Options, storage: TieredStorage) -> Result<Self> {
        options.validate()?;
        let options = Arc::new(options);
        let mut partitions = Vec::with_capacity(options.num_partitions);
        for id in 0..options.num_partitions {
            partitions.push(Mutex::new(Partition::new(id, options.clone(), &storage)?));
        }
        // Leave headroom above the expected key count so freshly inserted
        // keys (YCSB-D style) still route to the last partition's range
        // rather than overflowing.
        let span = (options.expected_keys * 2 / options.num_partitions as u64).max(1);
        Ok(PrismDb {
            options,
            storage,
            partitions,
            partition_span: span,
        })
    }

    /// The engine's configuration.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The simulated storage devices backing the engine.
    pub fn storage(&self) -> &TieredStorage {
        &self.storage
    }

    /// Blended storage cost per gigabyte of the configured tiers.
    pub fn cost_per_gb(&self) -> f64 {
        self.storage.cost_per_gb()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Lock one partition. A poisoned lock (a client thread panicked while
    /// holding it) is entered anyway: partition state is append/replace
    /// structured, and [`PrismDb::crash_and_recover`] exists precisely to
    /// rebuild DRAM state from the persistent layers.
    fn lock_partition(&self, idx: usize) -> MutexGuard<'_, Partition> {
        self.partitions[idx]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Total live objects currently resident on NVM across partitions.
    pub fn nvm_object_count(&self) -> usize {
        (0..self.partitions.len())
            .map(|i| self.lock_partition(i).nvm_object_count())
            .sum()
    }

    /// Total objects currently resident on flash across partitions
    /// (including stale versions not yet compacted away).
    pub fn flash_object_count(&self) -> usize {
        (0..self.partitions.len())
            .map(|i| self.lock_partition(i).flash_object_count())
            .sum()
    }

    /// Aggregate clock-value histogram across partitions (index = clock
    /// value), as plotted in Figure 5 of the paper.
    pub fn clock_histogram(&self) -> [u64; 4] {
        let mut total = [0u64; 4];
        for i in 0..self.partitions.len() {
            let h = self.lock_partition(i).clock_histogram();
            for (slot, value) in total.iter_mut().zip(h.iter()) {
                *slot += value;
            }
        }
        total
    }

    /// Mean NVM utilisation across partitions.
    pub fn nvm_utilization(&self) -> f64 {
        let sum: f64 = (0..self.partitions.len())
            .map(|i| self.lock_partition(i).nvm_utilization())
            .sum();
        sum / self.partitions.len() as f64
    }

    /// Simulate a crash that loses all DRAM state, then recover every
    /// partition in parallel (recovery time is the maximum over partitions,
    /// since partitions recover independently, §6 of the paper). Returns
    /// that recovery time.
    ///
    /// Takes `&self` so recovery can be exercised on a shared
    /// `Arc<PrismDb>`; each partition is locked for the duration of its own
    /// recovery, so concurrent operations observe either pre-crash or
    /// post-recovery state of a partition, never a half-rebuilt one.
    pub fn crash_and_recover(&self) -> Nanos {
        (0..self.partitions.len())
            .map(|i| self.lock_partition(i).crash_and_recover())
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn partition_for(&self, key: &Key) -> usize {
        match self.options.partitioning {
            Partitioning::Hash => (splitmix64(key.id()) % self.partitions.len() as u64) as usize,
            Partitioning::Range => {
                let idx = (key.id() / self.partition_span) as usize;
                idx.min(self.partitions.len() - 1)
            }
        }
    }
}

impl ConcurrentKvStore for PrismDb {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        if value.len() > prism_nvm::MAX_OBJECT_SIZE {
            return Err(PrismError::ObjectTooLarge {
                size: value.len(),
                max: prism_nvm::MAX_OBJECT_SIZE,
            });
        }
        let idx = self.partition_for(&key);
        self.lock_partition(idx).put(key, value)
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        let idx = self.partition_for(key);
        self.lock_partition(idx).get(key)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        let idx = self.partition_for(key);
        self.lock_partition(idx).delete(key)
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        // Both branches acquire partition locks in ascending partition
        // order and hold every acquired lock until the scan finishes. This
        // is the engine's only multi-lock path; the global ascending order
        // makes deadlock impossible and the hold-until-done discipline
        // makes the scan an atomic snapshot of the partitions it covers.
        match self.options.partitioning {
            Partitioning::Range => {
                // Partitions hold contiguous key ranges: walk them in order
                // until enough entries are collected.
                let mut entries = Vec::with_capacity(count);
                let mut latency = Nanos::ZERO;
                let mut cursor = start.clone();
                let mut guards: Vec<MutexGuard<'_, Partition>> = Vec::new();
                for idx in self.partition_for(start)..self.partitions.len() {
                    if entries.len() >= count {
                        break;
                    }
                    guards.push(self.lock_partition(idx));
                    let guard = guards.last_mut().expect("just pushed");
                    let (mut chunk, cost) = guard.scan_collect(&cursor, count - entries.len())?;
                    latency += cost;
                    entries.append(&mut chunk);
                    cursor = Key::min();
                }
                Ok(ScanResult { entries, latency })
            }
            Partitioning::Hash => {
                // Keys are scattered: every partition may hold part of the
                // range, so collect `count` candidates from each and merge.
                let mut guards: Vec<MutexGuard<'_, Partition>> = (0..self.partitions.len())
                    .map(|idx| self.lock_partition(idx))
                    .collect();
                let mut entries: Vec<(Key, Value)> = Vec::with_capacity(count * 2);
                let mut latency = Nanos::ZERO;
                for guard in guards.iter_mut() {
                    let (mut chunk, cost) = guard.scan_collect(start, count)?;
                    latency += cost;
                    entries.append(&mut chunk);
                }
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                entries.truncate(count);
                Ok(ScanResult { entries, latency })
            }
        }
    }

    fn stats(&self) -> EngineStats {
        let mut stats = EngineStats {
            nvm_io: self.storage.nvm_io(),
            flash_io: self.storage.flash_io(),
            ..EngineStats::default()
        };
        for i in 0..self.partitions.len() {
            let p = self.lock_partition(i).stats();
            stats.reads_from_dram += p.reads_from_dram;
            stats.reads_from_nvm += p.reads_from_nvm;
            stats.reads_from_flash += p.reads_from_flash;
            stats.reads_not_found += p.reads_not_found;
            stats.user_bytes_written += p.user_bytes_written;
            stats.compaction.jobs += p.compaction.jobs;
            stats.compaction.total_time += p.compaction.total_time;
            stats.compaction.fast_tier_time += p.compaction.fast_tier_time;
            stats.compaction.slow_tier_time += p.compaction.slow_tier_time;
            stats.compaction.demoted_objects += p.compaction.demoted_objects;
            stats.compaction.promoted_objects += p.compaction.promoted_objects;
            stats.compaction.stall_time += p.compaction.stall_time;
        }
        stats
    }

    fn elapsed(&self) -> Nanos {
        (0..self.partitions.len())
            .map(|i| self.lock_partition(i).elapsed())
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn engine_name(&self) -> &str {
        "prismdb"
    }

    fn shard_count(&self) -> usize {
        self.partitions.len()
    }

    fn shard_of(&self, key: &Key) -> usize {
        self.partition_for(key)
    }

    fn shards_for_scan(&self, start: &Key) -> std::ops::Range<usize> {
        match self.options.partitioning {
            // A hash-partitioned scan locks every partition.
            Partitioning::Hash => 0..self.partitions.len(),
            // A range-partitioned scan walks ascending partitions from the
            // start key's partition; it may stop early once `count`
            // entries are found, so this is a conservative superset.
            Partitioning::Range => self.partition_for(start)..self.partitions.len(),
        }
    }
}

/// The single-threaded API, kept as a thin adapter over the
/// [`ConcurrentKvStore`] impl so every existing caller (tests, benches,
/// experiments) works unchanged.
impl KvStore for PrismDb {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        ConcurrentKvStore::put(self, key, value)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        ConcurrentKvStore::get(self, key)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        ConcurrentKvStore::delete(self, key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        ConcurrentKvStore::scan(self, start, count)
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(self)
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(self)
    }

    fn engine_name(&self) -> &str {
        ConcurrentKvStore::engine_name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::ReadSource;

    fn small_db(keys: u64, partitions: usize) -> PrismDb {
        let mut options = Options::scaled_default(keys);
        options.num_partitions = partitions;
        options.compaction.bucket_size_keys = 512;
        options.sst_target_bytes = 32 * 1024;
        PrismDb::open(options).unwrap()
    }

    #[test]
    fn routing_covers_all_partitions() {
        let db = small_db(10_000, 4);
        for id in (0..10_000u64).step_by(101) {
            db.put(Key::from_id(id), Value::filled(200, 1)).unwrap();
        }
        for id in (0..10_000u64).step_by(101) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        assert_eq!(db.partition_count(), 4);
        assert!(db.nvm_object_count() > 0);
    }

    #[test]
    fn oversized_values_are_rejected_at_the_engine_boundary() {
        let db = small_db(1_000, 2);
        let err = db.put(Key::from_id(1), Value::filled(8192, 0)).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
    }

    #[test]
    fn cross_partition_scan_returns_keys_in_order() {
        let db = small_db(4_000, 4);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(300, 1)).unwrap();
        }
        // Start near the end of one partition so the scan must spill into
        // the next partition.
        let span = 4_000 * 2 / 4;
        let start = span - 20;
        let result = db.scan(&Key::from_id(start), 60).unwrap();
        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (start..start + 60).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn stats_aggregate_partitions_and_devices() {
        let db = small_db(5_000, 2);
        for id in 0..5_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        for id in (0..5_000u64).step_by(7) {
            db.get(&Key::from_id(id)).unwrap();
        }
        let stats = KvStore::stats(&db);
        assert!(stats.user_bytes_written >= 5_000 * 1000);
        assert!(stats.nvm_io.bytes_written > 0);
        assert!(stats.reads_found() > 0);
        assert!(KvStore::elapsed(&db) > Nanos::ZERO);
        assert!(db.cost_per_gb() > 0.0);
        assert_eq!(KvStore::engine_name(&db), "prismdb");
    }

    #[test]
    fn engine_crash_recovery_preserves_data() {
        let db = small_db(3_000, 2);
        for id in 0..3_000u64 {
            db.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        db.put(Key::from_id(11), Value::filled(900, 99)).unwrap();
        db.delete(&Key::from_id(12)).unwrap();
        let recovery = db.crash_and_recover();
        assert!(recovery > Nanos::ZERO);
        assert_eq!(
            db.get(&Key::from_id(11)).unwrap().value.unwrap().as_bytes()[0],
            99
        );
        assert!(db.get(&Key::from_id(12)).unwrap().value.is_none());
        for id in (0..3_000u64).step_by(41) {
            if id == 12 {
                continue;
            }
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
    }

    #[test]
    fn read_heavy_workload_keeps_hot_reads_fast() {
        let db = small_db(4_000, 2);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Zipf-like hot set: read keys 0..100 repeatedly.
        for _ in 0..30 {
            for id in 0..100u64 {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        let mut fast = 0;
        for id in 0..100u64 {
            let got = db.get(&Key::from_id(id)).unwrap();
            if matches!(got.source, ReadSource::Dram | ReadSource::Nvm) {
                fast += 1;
            }
        }
        assert!(fast >= 90, "hot reads should avoid flash, {fast}/100 fast");
    }

    #[test]
    fn shared_handles_drive_the_engine_from_many_threads() {
        let db = Arc::new(small_db(6_000, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..300u64 {
                        let id = t * 1_500 + i;
                        db.put(Key::from_id(id), Value::filled(256, t as u8))
                            .unwrap();
                        if i % 3 == 0 {
                            let got = db.get(&Key::from_id(id)).unwrap();
                            assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
                        }
                    }
                });
            }
        });
        let db = Arc::into_inner(db).expect("all worker handles dropped");
        for t in 0..4u64 {
            let got = ConcurrentKvStore::get(&db, &Key::from_id(t * 1_500)).unwrap();
            assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
        }
        assert_eq!(ConcurrentKvStore::engine_name(&db), "prismdb");
        assert_eq!(db.shard_count(), 4);
    }

    #[test]
    fn concurrent_scans_and_writes_do_not_deadlock() {
        let mut options = Options::scaled_default(4_000);
        options.num_partitions = 4;
        options.partitioning = Partitioning::Range;
        let db = Arc::new(PrismDb::open(options).unwrap());
        for id in 0..4_000u64 {
            ConcurrentKvStore::put(&db, Key::from_id(id), Value::filled(128, 1)).unwrap();
        }
        std::thread::scope(|scope| {
            // Scanners repeatedly cross partition boundaries while writers
            // mutate every partition.
            for s in 0..2u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for round in 0..60u64 {
                        let start = (s * 900 + round * 37) % 3_500;
                        let result =
                            ConcurrentKvStore::scan(&db, &Key::from_id(start), 200).unwrap();
                        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
                        assert!(ids.windows(2).all(|w| w[0] < w[1]), "scan out of order");
                    }
                });
            }
            for t in 0..2u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..600u64 {
                        let id = (t * 2_000 + i * 7) % 4_000;
                        ConcurrentKvStore::put(&db, Key::from_id(id), Value::filled(128, 2))
                            .unwrap();
                    }
                });
            }
        });
        assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let db = small_db(2_000, 4);
        for id in 0..2_000u64 {
            let shard = db.shard_of(&Key::from_id(id));
            assert!(shard < db.shard_count());
            assert_eq!(shard, db.shard_of(&Key::from_id(id)));
        }
    }
}
