//! The PrismDB engine: partition routing, per-partition locking, the
//! background compaction worker pool and the [`KvStore`] /
//! [`ConcurrentKvStore`] implementations.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use prism_storage::TieredStorage;
use prism_types::{
    BatchOp, ConcurrentKvStore, EngineStats, Key, KvStore, Lookup, Nanos, PrismError, Result,
    ScanResult, Value, WriteBatch,
};

use crate::options::{Options, Partitioning};
use crate::partition::Partition;
use crate::workers::{worker_loop, JobRequest, RequestKind, Scheduler};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// How many times a write retries after `CapacityExceeded` by waiting on
/// the background workers before falling back to an inline forced
/// compaction.
const CAPACITY_RETRIES: usize = 4;
/// How many background progress generations a back-pressured write waits
/// for before falling back to an inline forced compaction.
const BACKPRESSURE_WAITS: usize = 64;
/// Bound on each individual wait, so a stuck worker can never hang the
/// foreground (the waiter re-checks and eventually compacts inline).
const WAIT_SLICE: Duration = Duration::from_millis(100);

/// Engine state shared between client handles and background worker
/// threads.
pub(crate) struct EngineShared {
    pub(crate) options: Arc<Options>,
    pub(crate) storage: TieredStorage,
    partitions: Vec<RwLock<Partition>>,
    /// Key-id span covered by each partition.
    partition_span: u64,
    sched: Option<Scheduler>,
}

impl EngineShared {
    /// Lock one partition for reading. A poisoned lock (a client thread
    /// panicked while holding it) is entered anyway: partition state is
    /// append/replace structured, and [`PrismDb::crash_and_recover`]
    /// exists precisely to rebuild DRAM state from the persistent layers.
    pub(crate) fn read_partition(&self, idx: usize) -> RwLockReadGuard<'_, Partition> {
        self.partitions[idx]
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Lock one partition for writing (same poison policy).
    pub(crate) fn write_partition(&self, idx: usize) -> RwLockWriteGuard<'_, Partition> {
        self.partitions[idx]
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    pub(crate) fn scheduler(&self) -> &Scheduler {
        self.sched
            .as_ref()
            .expect("scheduler exists in background-compaction mode")
    }

    fn background(&self) -> bool {
        self.sched.is_some()
    }
}

/// PrismDB: a two-tier key-value store with popularity-aware multi-tiered
/// storage compaction.
///
/// The engine is partitioned: each partition owns a contiguous slice of the
/// key-id space along with its NVM slab store, B-tree index, flash sorted
/// log, popularity tracker and compaction state (Figure 3 of the paper).
/// All client operations are routed by key; scans walk partitions in key
/// order because partitioning is range-based.
///
/// # Concurrency
///
/// Every partition sits behind its own [`RwLock`], so an `Arc<PrismDb>` can
/// be driven from many OS threads through the [`ConcurrentKvStore`] trait:
/// operations on different partitions proceed in parallel, writes on the
/// same partition serialise, and *reads on the same partition overlap with
/// each other* — the read path defers its tracker/clock updates into a
/// buffer that the next writer drains. Single-key operations take exactly
/// one partition lock. Cross-partition scans are the only multi-lock path;
/// they acquire partition read locks in ascending partition order and hold
/// them until the scan completes, which makes scans atomic snapshots and
/// rules out lock-order deadlocks. The legacy [`KvStore`] (`&mut self`)
/// impl is a thin adapter over the shared-reference path, so existing
/// single-threaded callers are unaffected.
///
/// # Background compaction
///
/// With `Options::compaction_workers > 0` the engine spawns a pool of
/// worker threads. A write that pushes NVM past the high watermark
/// enqueues a demotion job and returns immediately; the worker clones the
/// victim state out under the partition lock, merges without the lock and
/// installs the result with per-object version checks, so foreground
/// progress overlaps with compaction. The foreground only stalls when NVM
/// reaches `Options::backpressure_ceiling`. With `compaction_workers == 0`
/// (the default) compactions run inline on the triggering client thread,
/// reproducing the paper's write-stall behaviour.
///
/// # Example
///
/// ```
/// use prism_db::{Options, PrismDb};
/// use prism_types::{Key, KvStore, Value};
///
/// let options = Options::builder(10_000).partitions(2).build().unwrap();
/// let mut db = PrismDb::open(options).unwrap();
/// db.put(Key::from_id(7), Value::filled(256, 1)).unwrap();
/// let found = db.get(&Key::from_id(7)).unwrap();
/// assert_eq!(found.value.unwrap().len(), 256);
/// ```
///
/// Driving the same engine from multiple threads:
///
/// ```
/// use std::sync::Arc;
/// use prism_db::{Options, PrismDb};
/// use prism_types::{ConcurrentKvStore, Key, Value};
///
/// let db = Arc::new(PrismDb::open(Options::scaled_default(1_000)).unwrap());
/// std::thread::scope(|scope| {
///     for t in 0..2u64 {
///         let db = Arc::clone(&db);
///         scope.spawn(move || {
///             for i in 0..20 {
///                 db.put(Key::from_id(t * 100 + i), Value::filled(64, t as u8)).unwrap();
///             }
///         });
///     }
/// });
/// assert_eq!(db.scan(&Key::min(), 100).unwrap().entries.len(), 40);
/// ```
pub struct PrismDb {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

// `Arc<PrismDb>` handles are shared across client threads; fail the build
// rather than a downstream user if a non-Send type ever sneaks into a
// partition.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PrismDb>();
};

impl PrismDb {
    /// Open a database with the given options, creating the simulated
    /// storage devices from the configured profiles.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open(options: Options) -> Result<Self> {
        options.validate()?;
        let storage = TieredStorage::new(options.nvm_profile, options.flash_profile);
        Self::open_with_storage(options, storage)
    }

    /// Open a database on an existing pair of simulated devices (used by
    /// the benchmark harness so all engines in one experiment share device
    /// profiles).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open_with_storage(options: Options, storage: TieredStorage) -> Result<Self> {
        options.validate()?;
        let options = Arc::new(options);
        let mut partitions = Vec::with_capacity(options.num_partitions);
        for id in 0..options.num_partitions {
            partitions.push(RwLock::new(Partition::new(id, options.clone(), &storage)?));
        }
        // Leave headroom above the expected key count so freshly inserted
        // keys (YCSB-D style) still route to the last partition's range
        // rather than overflowing.
        let span = (options.expected_keys * 2 / options.num_partitions as u64).max(1);
        let sched = (options.compaction_workers > 0)
            .then(|| Scheduler::new(options.num_partitions, options.compaction_workers));
        let shared = Arc::new(EngineShared {
            storage,
            partitions,
            partition_span: span,
            sched,
            options: options.clone(),
        });
        let workers = (0..options.compaction_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("prism-compact-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawning a compaction worker thread")
            })
            .collect();
        Ok(PrismDb { shared, workers })
    }

    /// The engine's configuration.
    pub fn options(&self) -> &Options {
        &self.shared.options
    }

    /// The simulated storage devices backing the engine.
    pub fn storage(&self) -> &TieredStorage {
        &self.shared.storage
    }

    /// Blended storage cost per gigabyte of the configured tiers.
    pub fn cost_per_gb(&self) -> f64 {
        self.shared.storage.cost_per_gb()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.shared.partitions.len()
    }

    /// Total live objects currently resident on NVM across partitions.
    pub fn nvm_object_count(&self) -> usize {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).nvm_object_count())
            .sum()
    }

    /// Total objects currently resident on flash across partitions
    /// (including stale versions not yet compacted away).
    pub fn flash_object_count(&self) -> usize {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).flash_object_count())
            .sum()
    }

    /// Aggregate clock-value histogram across partitions (index = clock
    /// value), as plotted in Figure 5 of the paper.
    pub fn clock_histogram(&self) -> [u64; 4] {
        let mut total = [0u64; 4];
        for i in 0..self.partition_count() {
            let h = self.shared.read_partition(i).clock_histogram();
            for (slot, value) in total.iter_mut().zip(h.iter()) {
                *slot += value;
            }
        }
        total
    }

    /// NVM utilisation of one partition (`0.0..=1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn partition_utilization(&self, idx: usize) -> f64 {
        self.shared.read_partition(idx).nvm_utilization()
    }

    /// Watermark-relative write pressure of one partition: the partition's
    /// NVM utilisation divided by the compaction high watermark, so `1.0`
    /// means "the next write trips (or queues behind) a demotion
    /// compaction". Submission front-ends use this as a back-pressure
    /// hint; it is also the engine's [`ConcurrentKvStore::shard_write_pressure`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn partition_write_pressure(&self, idx: usize) -> f64 {
        self.partition_utilization(idx) / self.shared.options.high_watermark
    }

    /// Number of background compaction worker threads currently parked
    /// waiting for work (0 in inline-compaction mode). The worker pool is
    /// adaptive: a drained queue parks every worker, and light steady
    /// load keeps all but the first parked — see
    /// `Options::compaction_workers`.
    pub fn parked_compaction_workers(&self) -> u64 {
        self.shared
            .sched
            .as_ref()
            .map_or(0, |sched| sched.parked_workers())
    }

    /// Mean NVM utilisation across partitions.
    pub fn nvm_utilization(&self) -> f64 {
        let sum: f64 = (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).nvm_utilization())
            .sum();
        sum / self.partition_count() as f64
    }

    /// Simulate a crash that loses all DRAM state, then recover every
    /// partition in parallel (recovery time is the maximum over partitions,
    /// since partitions recover independently, §6 of the paper). Returns
    /// that recovery time.
    ///
    /// Takes `&self` so recovery can be exercised on a shared
    /// `Arc<PrismDb>`; each partition is locked for the duration of its own
    /// recovery, so concurrent operations observe either pre-crash or
    /// post-recovery state of a partition, never a half-rebuilt one. Each
    /// partition's epoch bump aborts any background compaction job in
    /// flight against it: the job's install becomes a no-op, exactly as if
    /// the crash had interrupted it, so recovery always lands on the last
    /// installed (old or new) state — never a half-compacted one.
    pub fn crash_and_recover(&self) -> Nanos {
        (0..self.partition_count())
            .map(|i| self.shared.write_partition(i).crash_and_recover())
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn partition_for(&self, key: &Key) -> usize {
        match self.shared.options.partitioning {
            Partitioning::Hash => (splitmix64(key.id()) % self.partition_count() as u64) as usize,
            Partitioning::Range => {
                let idx = (key.id() / self.shared.partition_span) as usize;
                idx.min(self.partition_count() - 1)
            }
        }
    }

    /// Run a write op against a partition in background-compaction mode:
    /// retry `CapacityExceeded` by waiting for the worker pool (never
    /// while holding the partition lock), then handle watermark /
    /// back-pressure bookkeeping. Returns the op's full charged latency.
    fn background_write<F>(&self, idx: usize, mut op: F) -> Result<Nanos>
    where
        F: FnMut(&mut Partition) -> Result<Nanos>,
    {
        let sched = self.shared.scheduler();
        let mut attempts = 0;
        let mut cost;
        loop {
            let result = op(&mut self.shared.write_partition(idx));
            match result {
                Ok(c) => {
                    cost = c;
                    break;
                }
                Err(PrismError::CapacityExceeded { .. }) if attempts < CAPACITY_RETRIES => {
                    attempts += 1;
                    let fg = self.shared.read_partition(idx).fg();
                    let seen = sched.generation();
                    sched.enqueue(JobRequest {
                        partition: idx,
                        kind: RequestKind::Demote,
                        trigger_fg: fg,
                    });
                    sched.wait_past(seen, WAIT_SLICE);
                }
                Err(PrismError::CapacityExceeded { .. }) => {
                    // The workers could not free space in time: compact
                    // inline as a last resort (this bumps the partition
                    // epoch, discarding any in-flight job).
                    let mut p = self.shared.write_partition(idx);
                    let stall = p.force_free_inline()?;
                    cost = op(&mut p)? + stall;
                    break;
                }
                Err(err) => return Err(err),
            }
        }
        cost += self.after_background_write(idx)?;
        Ok(cost)
    }

    /// Watermark and back-pressure handling after a background-mode write.
    /// Returns the extra stall (if any) to charge to the operation.
    fn after_background_write(&self, idx: usize) -> Result<Nanos> {
        let sched = self.shared.scheduler();
        let (util, fg, promote_hint) = {
            let p = self.shared.read_partition(idx);
            (p.nvm_utilization(), p.fg(), p.promote_pending())
        };
        if promote_hint {
            let due = self.shared.write_partition(idx).take_promote_pending();
            if due {
                sched.enqueue(JobRequest {
                    partition: idx,
                    kind: RequestKind::Promote,
                    trigger_fg: fg,
                });
            }
        }
        if util >= self.shared.options.high_watermark {
            sched.enqueue(JobRequest {
                partition: idx,
                kind: RequestKind::Demote,
                trigger_fg: fg,
            });
        }
        if util < self.shared.options.backpressure_ceiling {
            return Ok(Nanos::ZERO);
        }
        // Back-pressure: block until a worker brings utilisation back
        // under the ceiling, then charge the virtual wait as a stall.
        let mut waits = 0;
        loop {
            let seen = sched.generation();
            let util = self.shared.read_partition(idx).nvm_utilization();
            if util < self.shared.options.backpressure_ceiling {
                break;
            }
            sched.enqueue(JobRequest {
                partition: idx,
                kind: RequestKind::Demote,
                trigger_fg: fg,
            });
            if waits >= BACKPRESSURE_WAITS {
                // Workers are not keeping up (or died): reclaim inline.
                return self.shared.write_partition(idx).force_free_inline();
            }
            sched.wait_past(seen, WAIT_SLICE);
            waits += 1;
        }
        Ok(self.shared.write_partition(idx).charge_backpressure_stall())
    }

    /// Apply one partition's sub-batch and run the engine-level
    /// after-write bookkeeping once for the whole group (watermark
    /// enqueue / back-pressure in background mode). Returns the group's
    /// charged latency.
    fn apply_partition_group(&self, idx: usize, entries: Vec<BatchOp>) -> Result<Nanos> {
        let merge = self.shared.options.merge_batch_duplicates;
        // The sub-batch applies under one continuous write-lock hold;
        // capacity shortfalls mid-group are reclaimed inline by the
        // partition (never by unlocking and waiting), which preserves the
        // all-or-nothing contract per partition.
        let mut cost = self
            .shared
            .write_partition(idx)
            .apply_group(entries, merge)?;
        if self.shared.background() {
            // One watermark check per partition per batch → at most one
            // demotion enqueue per touched partition.
            cost += self.after_background_write(idx)?;
        }
        Ok(cost)
    }

    /// Drain read-side pressure on a partition after a read: apply the
    /// buffered tracker updates and run (inline) or enqueue (background)
    /// any due promotion compaction.
    fn drain_reads(&self, idx: usize) -> Result<()> {
        if self.shared.background() {
            let (due, fg) = {
                let mut p = self.shared.write_partition(idx);
                p.apply_read_side();
                (p.take_promote_pending(), p.fg())
            };
            if due {
                self.shared.scheduler().enqueue(JobRequest {
                    partition: idx,
                    kind: RequestKind::Promote,
                    trigger_fg: fg,
                });
            }
        } else {
            self.shared.write_partition(idx).absorb_reads()?;
        }
        Ok(())
    }
}

impl Drop for PrismDb {
    fn drop(&mut self) {
        if let Some(sched) = &self.shared.sched {
            sched.shutdown();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ConcurrentKvStore for PrismDb {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        if value.len() > prism_nvm::MAX_OBJECT_SIZE {
            return Err(PrismError::ObjectTooLarge {
                size: value.len(),
                max: prism_nvm::MAX_OBJECT_SIZE,
            });
        }
        let idx = self.partition_for(&key);
        if !self.shared.background() {
            return self.shared.write_partition(idx).put(key, value);
        }
        self.background_write(idx, move |p| p.put(key.clone(), value.clone()))
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        let idx = self.partition_for(key);
        let (lookup, pressure) = self.shared.read_partition(idx).get_with_pressure(key)?;
        if pressure {
            self.drain_reads(idx)?;
        }
        Ok(lookup)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        let idx = self.partition_for(key);
        if !self.shared.background() {
            return self.shared.write_partition(idx).delete(key);
        }
        let key = key.clone();
        self.background_write(idx, move |p| p.delete(&key))
    }

    /// Apply a [`WriteBatch`] with per-partition group commit.
    ///
    /// Entries are grouped by partition (preserving their relative order,
    /// so a later entry for the same key wins) and each group installs
    /// under a single continuous write-lock hold: one read-side
    /// tracker/CLOCK drain, one request overhead, merged slab writes for
    /// duplicate keys, and one watermark check — hence at most one
    /// compaction run (inline) or demotion enqueue (background) per
    /// touched partition per batch.
    ///
    /// # Atomicity
    ///
    /// Each partition's sub-batch is all-or-nothing with respect to
    /// concurrent readers and to [`PrismDb::crash_and_recover`] (recovery
    /// takes the same write lock, so it observes the group either fully
    /// applied — and durable, writes persist to NVM synchronously — or
    /// not at all). The batch is **not** atomic across partitions:
    /// partition locks are taken one at a time in ascending order and
    /// released between groups.
    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        if batch.is_empty() {
            return Ok(Nanos::ZERO);
        }
        // Validate every entry before applying anything, so an oversized
        // value cannot leave a batch half-applied. The bound is the
        // engine's *configured* largest slot class, which may be tighter
        // than the global object cap.
        let max_slot = self
            .shared
            .options
            .slab_slot_sizes
            .iter()
            .copied()
            .max()
            .unwrap_or(0) as usize;
        let max_value = max_slot.min(prism_nvm::MAX_OBJECT_SIZE);
        for op in batch.entries() {
            if let BatchOp::Put(_, value) = op {
                if value.len() > max_value {
                    return Err(PrismError::ObjectTooLarge {
                        size: value.len(),
                        max: max_value,
                    });
                }
            }
        }
        let mut groups: Vec<Vec<BatchOp>> = vec![Vec::new(); self.partition_count()];
        for op in batch {
            groups[self.partition_for(op.key())].push(op);
        }
        let mut total = Nanos::ZERO;
        for (idx, entries) in groups.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            total += self.apply_partition_group(idx, entries)?;
        }
        Ok(total)
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        // Both branches acquire partition read locks in ascending
        // partition order and hold every acquired lock until the scan
        // finishes. This is the engine's only multi-lock path; the global
        // ascending order makes deadlock impossible and the
        // hold-until-done discipline makes the scan an atomic snapshot of
        // the partitions it covers. Read locks suffice: scans defer
        // nothing that needs the write lock.
        match self.shared.options.partitioning {
            Partitioning::Range => {
                // Partitions hold contiguous key ranges: walk them in order
                // until enough entries are collected.
                let mut entries = Vec::with_capacity(count);
                let mut latency = Nanos::ZERO;
                let mut cursor = start.clone();
                let mut guards: Vec<RwLockReadGuard<'_, Partition>> = Vec::new();
                for idx in self.partition_for(start)..self.partition_count() {
                    if entries.len() >= count {
                        break;
                    }
                    guards.push(self.shared.read_partition(idx));
                    let guard = guards.last().expect("just pushed");
                    let (mut chunk, cost) = guard.scan_collect(&cursor, count - entries.len())?;
                    latency += cost;
                    entries.append(&mut chunk);
                    cursor = Key::min();
                }
                Ok(ScanResult { entries, latency })
            }
            Partitioning::Hash => {
                // Keys are scattered: every partition may hold part of the
                // range, so collect `count` candidates from each and merge.
                let guards: Vec<RwLockReadGuard<'_, Partition>> = (0..self.partition_count())
                    .map(|idx| self.shared.read_partition(idx))
                    .collect();
                let mut entries: Vec<(Key, Value)> = Vec::with_capacity(count * 2);
                let mut latency = Nanos::ZERO;
                for guard in guards.iter() {
                    let (mut chunk, cost) = guard.scan_collect(start, count)?;
                    latency += cost;
                    entries.append(&mut chunk);
                }
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                entries.truncate(count);
                Ok(ScanResult { entries, latency })
            }
        }
    }

    fn stats(&self) -> EngineStats {
        let mut stats = EngineStats {
            nvm_io: self.shared.storage.nvm_io(),
            flash_io: self.shared.storage.flash_io(),
            ..EngineStats::default()
        };
        for i in 0..self.partition_count() {
            let p = self.shared.read_partition(i).stats();
            stats.reads_from_dram += p.reads_from_dram;
            stats.reads_from_nvm += p.reads_from_nvm;
            stats.reads_from_flash += p.reads_from_flash;
            stats.reads_not_found += p.reads_not_found;
            stats.user_bytes_written += p.user_bytes_written;
            stats.batch_groups += p.batch_groups;
            stats.batch_entries += p.batch_entries;
            stats.batch_merged_writes += p.batch_merged_writes;
            stats.compaction.jobs += p.compaction.jobs;
            stats.compaction.total_time += p.compaction.total_time;
            stats.compaction.fast_tier_time += p.compaction.fast_tier_time;
            stats.compaction.slow_tier_time += p.compaction.slow_tier_time;
            stats.compaction.demoted_objects += p.compaction.demoted_objects;
            stats.compaction.promoted_objects += p.compaction.promoted_objects;
            stats.compaction.stall_time += p.compaction.stall_time;
            stats.compaction.overlap_time += p.compaction.overlap_time;
            stats.compaction.backpressure_stalls += p.compaction.backpressure_stalls;
        }
        if let Some(sched) = &self.shared.sched {
            stats.compaction.queue_depth = sched.queue_depth();
            stats.compaction.max_queue_depth = sched.max_queue_depth();
            stats.compaction.enqueued_jobs = sched.enqueued_total();
        }
        stats
    }

    fn elapsed(&self) -> Nanos {
        (0..self.partition_count())
            .map(|i| self.shared.read_partition(i).elapsed())
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn engine_name(&self) -> &str {
        "prismdb"
    }

    fn shard_count(&self) -> usize {
        self.partition_count()
    }

    fn shard_of(&self, key: &Key) -> usize {
        self.partition_for(key)
    }

    fn shards_for_scan(&self, start: &Key) -> std::ops::Range<usize> {
        match self.shared.options.partitioning {
            // A hash-partitioned scan locks every partition.
            Partitioning::Hash => 0..self.partition_count(),
            // A range-partitioned scan walks ascending partitions from the
            // start key's partition; it may stop early once `count`
            // entries are found, so this is a conservative superset.
            Partitioning::Range => self.partition_for(start)..self.partition_count(),
        }
    }

    fn concurrent_reads(&self) -> bool {
        // Partitions sit behind reader-writer locks: point reads and scans
        // on the same partition overlap with each other.
        true
    }

    fn background_worker_times(&self) -> Vec<Nanos> {
        match &self.shared.sched {
            Some(sched) => sched.worker_times(),
            None => Vec::new(),
        }
    }

    fn shard_write_pressure(&self, shard: usize) -> f64 {
        self.partition_write_pressure(shard)
    }
}

/// The single-threaded API, kept as a thin adapter over the
/// [`ConcurrentKvStore`] impl so every existing caller (tests, benches,
/// experiments) works unchanged.
impl KvStore for PrismDb {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        ConcurrentKvStore::put(self, key, value)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        ConcurrentKvStore::get(self, key)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        ConcurrentKvStore::delete(self, key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        ConcurrentKvStore::scan(self, start, count)
    }

    fn apply_batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        ConcurrentKvStore::apply_batch(self, batch)
    }

    fn stats(&self) -> EngineStats {
        ConcurrentKvStore::stats(self)
    }

    fn elapsed(&self) -> Nanos {
        ConcurrentKvStore::elapsed(self)
    }

    fn engine_name(&self) -> &str {
        ConcurrentKvStore::engine_name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::ReadSource;

    fn small_db(keys: u64, partitions: usize) -> PrismDb {
        PrismDb::open(small_options(keys, partitions)).unwrap()
    }

    fn small_options(keys: u64, partitions: usize) -> Options {
        let mut options = Options::scaled_default(keys);
        options.num_partitions = partitions;
        options.compaction.bucket_size_keys = 512;
        options.sst_target_bytes = 32 * 1024;
        options
    }

    fn background_db(keys: u64, partitions: usize, workers: usize) -> PrismDb {
        let mut options = small_options(keys, partitions);
        options.compaction_workers = workers;
        PrismDb::open(options).unwrap()
    }

    #[test]
    fn routing_covers_all_partitions() {
        let db = small_db(10_000, 4);
        for id in (0..10_000u64).step_by(101) {
            db.put(Key::from_id(id), Value::filled(200, 1)).unwrap();
        }
        for id in (0..10_000u64).step_by(101) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        assert_eq!(db.partition_count(), 4);
        assert!(db.nvm_object_count() > 0);
    }

    #[test]
    fn oversized_values_are_rejected_at_the_engine_boundary() {
        let db = small_db(1_000, 2);
        let err = db.put(Key::from_id(1), Value::filled(8192, 0)).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
    }

    #[test]
    fn cross_partition_scan_returns_keys_in_order() {
        let db = small_db(4_000, 4);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(300, 1)).unwrap();
        }
        // Start near the end of one partition so the scan must spill into
        // the next partition.
        let span = 4_000 * 2 / 4;
        let start = span - 20;
        let result = db.scan(&Key::from_id(start), 60).unwrap();
        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (start..start + 60).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn stats_aggregate_partitions_and_devices() {
        let db = small_db(5_000, 2);
        for id in 0..5_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        for id in (0..5_000u64).step_by(7) {
            db.get(&Key::from_id(id)).unwrap();
        }
        let stats = KvStore::stats(&db);
        assert!(stats.user_bytes_written >= 5_000 * 1000);
        assert!(stats.nvm_io.bytes_written > 0);
        assert!(stats.reads_found() > 0);
        assert!(KvStore::elapsed(&db) > Nanos::ZERO);
        assert!(db.cost_per_gb() > 0.0);
        assert_eq!(KvStore::engine_name(&db), "prismdb");
        // The inline engine reports no virtual background workers and the
        // compaction time identity holds.
        assert!(db.background_worker_times().is_empty());
        assert_eq!(
            stats.compaction.total_time,
            stats.compaction.fast_tier_time + stats.compaction.slow_tier_time
        );
        // Stalls are summed across partitions while elapsed is the max
        // over partitions, so the aggregate bound is per-partition.
        assert!(stats.compaction.stall_time <= KvStore::elapsed(&db) * 2);
    }

    #[test]
    fn engine_crash_recovery_preserves_data() {
        let db = small_db(3_000, 2);
        for id in 0..3_000u64 {
            db.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        db.put(Key::from_id(11), Value::filled(900, 99)).unwrap();
        db.delete(&Key::from_id(12)).unwrap();
        let recovery = db.crash_and_recover();
        assert!(recovery > Nanos::ZERO);
        assert_eq!(
            db.get(&Key::from_id(11)).unwrap().value.unwrap().as_bytes()[0],
            99
        );
        assert!(db.get(&Key::from_id(12)).unwrap().value.is_none());
        for id in (0..3_000u64).step_by(41) {
            if id == 12 {
                continue;
            }
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
    }

    #[test]
    fn read_heavy_workload_keeps_hot_reads_fast() {
        let db = small_db(4_000, 2);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Zipf-like hot set: read keys 0..100 repeatedly.
        for _ in 0..30 {
            for id in 0..100u64 {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        let mut fast = 0;
        for id in 0..100u64 {
            let got = db.get(&Key::from_id(id)).unwrap();
            if matches!(got.source, ReadSource::Dram | ReadSource::Nvm) {
                fast += 1;
            }
        }
        assert!(fast >= 90, "hot reads should avoid flash, {fast}/100 fast");
    }

    #[test]
    fn shared_handles_drive_the_engine_from_many_threads() {
        let db = Arc::new(small_db(6_000, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..300u64 {
                        let id = t * 1_500 + i;
                        db.put(Key::from_id(id), Value::filled(256, t as u8))
                            .unwrap();
                        if i % 3 == 0 {
                            let got = db.get(&Key::from_id(id)).unwrap();
                            assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
                        }
                    }
                });
            }
        });
        let db = Arc::into_inner(db).expect("all worker handles dropped");
        for t in 0..4u64 {
            let got = ConcurrentKvStore::get(&db, &Key::from_id(t * 1_500)).unwrap();
            assert_eq!(got.value.unwrap().as_bytes()[0], t as u8);
        }
        assert_eq!(ConcurrentKvStore::engine_name(&db), "prismdb");
        assert_eq!(db.shard_count(), 4);
        assert!(db.concurrent_reads());
    }

    #[test]
    fn concurrent_scans_and_writes_do_not_deadlock() {
        let mut options = Options::scaled_default(4_000);
        options.num_partitions = 4;
        options.partitioning = Partitioning::Range;
        let db = Arc::new(PrismDb::open(options).unwrap());
        for id in 0..4_000u64 {
            ConcurrentKvStore::put(&db, Key::from_id(id), Value::filled(128, 1)).unwrap();
        }
        std::thread::scope(|scope| {
            // Scanners repeatedly cross partition boundaries while writers
            // mutate every partition.
            for s in 0..2u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for round in 0..60u64 {
                        let start = (s * 900 + round * 37) % 3_500;
                        let result =
                            ConcurrentKvStore::scan(&db, &Key::from_id(start), 200).unwrap();
                        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
                        assert!(ids.windows(2).all(|w| w[0] < w[1]), "scan out of order");
                    }
                });
            }
            for t in 0..2u64 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..600u64 {
                        let id = (t * 2_000 + i * 7) % 4_000;
                        ConcurrentKvStore::put(&db, Key::from_id(id), Value::filled(128, 2))
                            .unwrap();
                    }
                });
            }
        });
        assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let db = small_db(2_000, 4);
        for id in 0..2_000u64 {
            let shard = db.shard_of(&Key::from_id(id));
            assert!(shard < db.shard_count());
            assert_eq!(shard, db.shard_of(&Key::from_id(id)));
        }
    }

    #[test]
    fn background_engine_keeps_all_data_and_reports_worker_time() {
        let keys = 6_000u64;
        let db = background_db(keys, 4, 2);
        for round in 0..2u8 {
            for id in 0..keys {
                db.put(Key::from_id(id), Value::filled(1000, round))
                    .unwrap();
            }
        }
        for id in (0..keys).step_by(53) {
            let got = db.get(&Key::from_id(id)).unwrap();
            assert_eq!(
                got.value
                    .unwrap_or_else(|| panic!("key {id} lost"))
                    .as_bytes()[0],
                1
            );
        }
        let worker_times = db.background_worker_times();
        assert_eq!(worker_times.len(), 2);
        assert!(
            worker_times.iter().any(|t| *t > Nanos::ZERO),
            "sustained writes must have produced background compactions"
        );
        let stats = KvStore::stats(&db);
        assert!(stats.compaction.jobs > 0);
        assert!(stats.compaction.overlap_time > Nanos::ZERO);
        assert_eq!(
            stats.compaction.total_time,
            stats.compaction.fast_tier_time + stats.compaction.slow_tier_time
        );
        // Stalls are summed across the 4 partitions; elapsed is the max.
        assert!(stats.compaction.stall_time <= KvStore::elapsed(&db) * 4);
        assert!(db.nvm_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn background_engine_survives_crash_recovery_mid_queue() {
        let keys = 4_000u64;
        let db = background_db(keys, 4, 2);
        for id in 0..keys {
            db.put(Key::from_id(id), Value::filled(1000, 7)).unwrap();
        }
        // Crash while the queue/workers are likely mid-job, then verify
        // and keep writing.
        db.crash_and_recover();
        for id in (0..keys).step_by(31) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        for id in 0..keys / 2 {
            db.put(Key::from_id(id), Value::filled(1000, 8)).unwrap();
        }
        db.crash_and_recover();
        for id in (0..keys / 2).step_by(17) {
            assert_eq!(
                db.get(&Key::from_id(id)).unwrap().value.unwrap().as_bytes()[0],
                8
            );
        }
    }

    #[test]
    fn apply_batch_groups_by_partition_and_matches_per_op_semantics() {
        let db = small_db(2_000, 4);
        let mut batch = WriteBatch::new();
        for id in 0..200u64 {
            batch.put(Key::from_id(id * 7 % 2_000), Value::filled(256, id as u8));
        }
        batch.delete(Key::from_id(7));
        let cost = ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        assert!(cost > Nanos::ZERO);
        assert!(db.get(&Key::from_id(7)).unwrap().value.is_none());
        assert!(db.get(&Key::from_id(14)).unwrap().value.is_some());
        let stats = KvStore::stats(&db);
        assert!(stats.batch_groups >= 1 && stats.batch_groups <= 4);
        assert_eq!(stats.batch_entries, 201);
        // An empty batch is free; an oversized value rejects the whole
        // batch before anything applies.
        assert_eq!(
            ConcurrentKvStore::apply_batch(&db, WriteBatch::new()).unwrap(),
            Nanos::ZERO
        );
        let mut bad = WriteBatch::new();
        bad.put(Key::from_id(1_999), Value::filled(100, 1));
        bad.put(Key::from_id(1_998), Value::filled(8192, 1));
        let err = ConcurrentKvStore::apply_batch(&db, bad).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
        assert!(
            db.get(&Key::from_id(1_999)).unwrap().value.is_none(),
            "a rejected batch must not be half-applied"
        );
        // The pre-validation bound is the engine's *configured* largest
        // slot class, not just the global object cap: a value that fits
        // the cap but no configured slot must reject the whole batch up
        // front rather than fail mid-group.
        let mut options = small_options(500, 2);
        options.slab_slot_sizes = vec![128, 256];
        let narrow = PrismDb::open(options).unwrap();
        let mut bad = WriteBatch::new();
        bad.put(Key::from_id(1), Value::filled(100, 1));
        bad.put(Key::from_id(2), Value::filled(1_000, 1));
        let err = ConcurrentKvStore::apply_batch(&narrow, bad).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { max: 256, .. }));
        assert!(
            narrow.get(&Key::from_id(1)).unwrap().value.is_none(),
            "config-oversized batches must reject before applying anything"
        );
    }

    /// The batched-path stall-accounting identities: even when batches
    /// trip the back-pressure ceiling (or exhaust NVM mid-group and
    /// reclaim inline), compaction time still splits exactly into tier
    /// times and foreground stalls never exceed elapsed virtual time.
    #[test]
    fn batched_backpressure_keeps_stall_accounting_identities() {
        let mut options = small_options(2_000, 1);
        options.compaction_workers = 1;
        options.nvm_capacity_bytes = 128 * 1024;
        options.nvm_profile.capacity_bytes = 128 * 1024;
        options.high_watermark = 0.6;
        options.low_watermark = 0.5;
        options.backpressure_ceiling = 0.8;
        let db = PrismDb::open(options).unwrap();
        for round in 0..8u64 {
            let mut batch = WriteBatch::new();
            for i in 0..50u64 {
                batch.put(
                    Key::from_id(round * 50 + i),
                    Value::filled(1000, round as u8),
                );
            }
            ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        }
        let stats = KvStore::stats(&db);
        assert!(
            stats.compaction.backpressure_stalls > 0,
            "the batches must have hit the ceiling or reclaimed inline"
        );
        assert!(stats.compaction.stall_time > Nanos::ZERO);
        assert_eq!(
            stats.compaction.total_time,
            stats.compaction.fast_tier_time + stats.compaction.slow_tier_time,
            "compaction time must split exactly into tier times"
        );
        // One partition: the engine's elapsed is that partition's elapsed.
        assert!(
            stats.compaction.stall_time <= KvStore::elapsed(&db),
            "stalls ({:?}) cannot exceed elapsed ({:?})",
            stats.compaction.stall_time,
            KvStore::elapsed(&db)
        );
        // All 400 keys must still be readable after the pressure.
        for id in (0..400u64).step_by(23) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
    }

    /// Regression: one batch runs one watermark check per touched
    /// partition, so it accepts at most one demotion enqueue per touched
    /// partition — never one per entry.
    #[test]
    fn a_batch_enqueues_at_most_one_compaction_job_per_touched_partition() {
        let mut options = small_options(400, 2);
        options.partitioning = Partitioning::Range;
        options.compaction_workers = 1;
        options.nvm_capacity_bytes = 512 * 1024; // 256 KB per partition
        options.nvm_profile.capacity_bytes = 512 * 1024;
        options.high_watermark = 0.9;
        options.low_watermark = 0.7;
        let db = PrismDb::open(options).unwrap();
        // Load partition 0 (ids 0..400 under range partitioning) to ~78 %
        // utilisation: below the high watermark, so nothing enqueues.
        for id in 0..200u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        assert_eq!(KvStore::stats(&db).compaction.enqueued_jobs, 0);
        // One 40-entry batch into the same partition pushes it past the
        // high watermark (~94 %) but below the ceiling.
        let mut batch = WriteBatch::new();
        for id in 200..240u64 {
            batch.put(Key::from_id(id), Value::filled(1000, 2));
        }
        ConcurrentKvStore::apply_batch(&db, batch).unwrap();
        let enqueued = KvStore::stats(&db).compaction.enqueued_jobs;
        assert!(
            enqueued <= 1,
            "a single-partition batch must accept at most one demotion \
             enqueue, got {enqueued}"
        );
        assert_eq!(enqueued, 1, "crossing the watermark must enqueue the job");
    }

    /// The adaptive-pool contract at engine level: once the compaction
    /// queue drains, every background worker parks (none spins), and an
    /// inline engine reports no workers at all.
    #[test]
    fn a_drained_compaction_queue_parks_all_workers() {
        let db = background_db(3_000, 4, 3);
        for id in 0..3_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Workers may still be draining demotions; once the queue and the
        // in-flight jobs are done, all 3 workers must be parked.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.parked_compaction_workers() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers failed to park after the queue drained \
                 (parked {}, queue depth {})",
                db.parked_compaction_workers(),
                KvStore::stats(&db).compaction.queue_depth
            );
            std::thread::yield_now();
        }
        // Reaching 3 above is the assertion; `parked` transiently dips on
        // spurious condvar wakeups, so an equality re-read would be racy.
        assert_eq!(KvStore::stats(&db).compaction.queue_depth, 0);
        // Inline engines have no workers to park.
        assert_eq!(small_db(500, 2).parked_compaction_workers(), 0);
    }

    #[test]
    fn background_workers_shut_down_cleanly_on_drop() {
        let db = background_db(1_000, 2, 3);
        for id in 0..1_000u64 {
            db.put(Key::from_id(id), Value::filled(800, 1)).unwrap();
        }
        drop(db); // must not hang joining the worker threads
    }
}
