//! The PrismDB engine: partition routing and the [`KvStore`] implementation.

use std::sync::Arc;

use prism_storage::TieredStorage;
use prism_types::{
    EngineStats, Key, KvStore, Lookup, Nanos, PrismError, Result, ScanResult, Value,
};

use crate::options::{Options, Partitioning};
use crate::partition::Partition;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// PrismDB: a two-tier key-value store with popularity-aware multi-tiered
/// storage compaction.
///
/// The engine is partitioned: each partition owns a contiguous slice of the
/// key-id space along with its NVM slab store, B-tree index, flash sorted
/// log, popularity tracker and compaction state (Figure 3 of the paper).
/// All client operations are routed by key; scans walk partitions in key
/// order because partitioning is range-based.
///
/// # Example
///
/// ```
/// use prism_db::{Options, PrismDb};
/// use prism_types::{Key, KvStore, Value};
///
/// let options = Options::builder(10_000).partitions(2).build().unwrap();
/// let mut db = PrismDb::open(options).unwrap();
/// db.put(Key::from_id(7), Value::filled(256, 1)).unwrap();
/// let found = db.get(&Key::from_id(7)).unwrap();
/// assert_eq!(found.value.unwrap().len(), 256);
/// ```
pub struct PrismDb {
    options: Arc<Options>,
    storage: TieredStorage,
    partitions: Vec<Partition>,
    /// Key-id span covered by each partition.
    partition_span: u64,
}

impl PrismDb {
    /// Open a database with the given options, creating the simulated
    /// storage devices from the configured profiles.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open(options: Options) -> Result<Self> {
        options.validate()?;
        let storage = TieredStorage::new(options.nvm_profile, options.flash_profile);
        Self::open_with_storage(options, storage)
    }

    /// Open a database on an existing pair of simulated devices (used by
    /// the benchmark harness so all engines in one experiment share device
    /// profiles).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the options fail validation.
    pub fn open_with_storage(options: Options, storage: TieredStorage) -> Result<Self> {
        options.validate()?;
        let options = Arc::new(options);
        let mut partitions = Vec::with_capacity(options.num_partitions);
        for id in 0..options.num_partitions {
            partitions.push(Partition::new(id, options.clone(), &storage)?);
        }
        // Leave headroom above the expected key count so freshly inserted
        // keys (YCSB-D style) still route to the last partition's range
        // rather than overflowing.
        let span = (options.expected_keys * 2 / options.num_partitions as u64).max(1);
        Ok(PrismDb {
            options,
            storage,
            partitions,
            partition_span: span,
        })
    }

    /// The engine's configuration.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// The simulated storage devices backing the engine.
    pub fn storage(&self) -> &TieredStorage {
        &self.storage
    }

    /// Blended storage cost per gigabyte of the configured tiers.
    pub fn cost_per_gb(&self) -> f64 {
        self.storage.cost_per_gb()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total live objects currently resident on NVM across partitions.
    pub fn nvm_object_count(&self) -> usize {
        self.partitions
            .iter()
            .map(Partition::nvm_object_count)
            .sum()
    }

    /// Total objects currently resident on flash across partitions
    /// (including stale versions not yet compacted away).
    pub fn flash_object_count(&self) -> usize {
        self.partitions
            .iter()
            .map(Partition::flash_object_count)
            .sum()
    }

    /// Aggregate clock-value histogram across partitions (index = clock
    /// value), as plotted in Figure 5 of the paper.
    pub fn clock_histogram(&self) -> [u64; 4] {
        let mut total = [0u64; 4];
        for partition in &self.partitions {
            let h = partition.clock_histogram();
            for (slot, value) in total.iter_mut().zip(h.iter()) {
                *slot += value;
            }
        }
        total
    }

    /// Mean NVM utilisation across partitions.
    pub fn nvm_utilization(&self) -> f64 {
        let sum: f64 = self.partitions.iter().map(Partition::nvm_utilization).sum();
        sum / self.partitions.len() as f64
    }

    /// Simulate a crash that loses all DRAM state, then recover every
    /// partition in parallel (recovery time is the maximum over partitions,
    /// since partitions recover independently, §6 of the paper). Returns
    /// that recovery time.
    pub fn crash_and_recover(&mut self) -> Nanos {
        self.partitions
            .iter_mut()
            .map(Partition::crash_and_recover)
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn partition_for(&self, key: &Key) -> usize {
        match self.options.partitioning {
            Partitioning::Hash => (splitmix64(key.id()) % self.partitions.len() as u64) as usize,
            Partitioning::Range => {
                let idx = (key.id() / self.partition_span) as usize;
                idx.min(self.partitions.len() - 1)
            }
        }
    }
}

impl KvStore for PrismDb {
    fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        if value.len() > prism_nvm::MAX_OBJECT_SIZE {
            return Err(PrismError::ObjectTooLarge {
                size: value.len(),
                max: prism_nvm::MAX_OBJECT_SIZE,
            });
        }
        let idx = self.partition_for(&key);
        self.partitions[idx].put(key, value)
    }

    fn get(&mut self, key: &Key) -> Result<Lookup> {
        let idx = self.partition_for(key);
        self.partitions[idx].get(key)
    }

    fn delete(&mut self, key: &Key) -> Result<Nanos> {
        let idx = self.partition_for(key);
        self.partitions[idx].delete(key)
    }

    fn scan(&mut self, start: &Key, count: usize) -> Result<ScanResult> {
        match self.options.partitioning {
            Partitioning::Range => {
                // Partitions hold contiguous key ranges: walk them in order
                // until enough entries are collected.
                let mut entries = Vec::with_capacity(count);
                let mut latency = Nanos::ZERO;
                let mut idx = self.partition_for(start);
                let mut cursor = start.clone();
                while entries.len() < count && idx < self.partitions.len() {
                    let remaining = count - entries.len();
                    let (mut chunk, cost) =
                        self.partitions[idx].scan_collect(&cursor, remaining)?;
                    latency += cost;
                    entries.append(&mut chunk);
                    idx += 1;
                    cursor = Key::min();
                }
                Ok(ScanResult { entries, latency })
            }
            Partitioning::Hash => {
                // Keys are scattered: every partition may hold part of the
                // range, so collect `count` candidates from each and merge.
                let mut entries: Vec<(Key, Value)> = Vec::with_capacity(count * 2);
                let mut latency = Nanos::ZERO;
                for partition in &mut self.partitions {
                    let (mut chunk, cost) = partition.scan_collect(start, count)?;
                    latency += cost;
                    entries.append(&mut chunk);
                }
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                entries.truncate(count);
                Ok(ScanResult { entries, latency })
            }
        }
    }

    fn stats(&self) -> EngineStats {
        let mut stats = EngineStats {
            nvm_io: self.storage.nvm_io(),
            flash_io: self.storage.flash_io(),
            ..EngineStats::default()
        };
        for partition in &self.partitions {
            let p = partition.stats();
            stats.reads_from_dram += p.reads_from_dram;
            stats.reads_from_nvm += p.reads_from_nvm;
            stats.reads_from_flash += p.reads_from_flash;
            stats.reads_not_found += p.reads_not_found;
            stats.user_bytes_written += p.user_bytes_written;
            stats.compaction.jobs += p.compaction.jobs;
            stats.compaction.total_time += p.compaction.total_time;
            stats.compaction.fast_tier_time += p.compaction.fast_tier_time;
            stats.compaction.slow_tier_time += p.compaction.slow_tier_time;
            stats.compaction.demoted_objects += p.compaction.demoted_objects;
            stats.compaction.promoted_objects += p.compaction.promoted_objects;
            stats.compaction.stall_time += p.compaction.stall_time;
        }
        stats
    }

    fn elapsed(&self) -> Nanos {
        self.partitions
            .iter()
            .map(Partition::elapsed)
            .fold(Nanos::ZERO, Nanos::max)
    }

    fn engine_name(&self) -> &str {
        "prismdb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::ReadSource;

    fn small_db(keys: u64, partitions: usize) -> PrismDb {
        let mut options = Options::scaled_default(keys);
        options.num_partitions = partitions;
        options.compaction.bucket_size_keys = 512;
        options.sst_target_bytes = 32 * 1024;
        PrismDb::open(options).unwrap()
    }

    #[test]
    fn routing_covers_all_partitions() {
        let mut db = small_db(10_000, 4);
        for id in (0..10_000u64).step_by(101) {
            db.put(Key::from_id(id), Value::filled(200, 1)).unwrap();
        }
        for id in (0..10_000u64).step_by(101) {
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
        assert_eq!(db.partition_count(), 4);
        assert!(db.nvm_object_count() > 0);
    }

    #[test]
    fn oversized_values_are_rejected_at_the_engine_boundary() {
        let mut db = small_db(1_000, 2);
        let err = db.put(Key::from_id(1), Value::filled(8192, 0)).unwrap_err();
        assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
    }

    #[test]
    fn cross_partition_scan_returns_keys_in_order() {
        let mut db = small_db(4_000, 4);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(300, 1)).unwrap();
        }
        // Start near the end of one partition so the scan must spill into
        // the next partition.
        let span = 4_000 * 2 / 4;
        let start = span - 20;
        let result = db.scan(&Key::from_id(start), 60).unwrap();
        let ids: Vec<u64> = result.entries.iter().map(|(k, _)| k.id()).collect();
        let expected: Vec<u64> = (start..start + 60).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn stats_aggregate_partitions_and_devices() {
        let mut db = small_db(5_000, 2);
        for id in 0..5_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        for id in (0..5_000u64).step_by(7) {
            db.get(&Key::from_id(id)).unwrap();
        }
        let stats = db.stats();
        assert!(stats.user_bytes_written >= 5_000 * 1000);
        assert!(stats.nvm_io.bytes_written > 0);
        assert!(stats.reads_found() > 0);
        assert!(db.elapsed() > Nanos::ZERO);
        assert!(db.cost_per_gb() > 0.0);
        assert_eq!(db.engine_name(), "prismdb");
    }

    #[test]
    fn engine_crash_recovery_preserves_data() {
        let mut db = small_db(3_000, 2);
        for id in 0..3_000u64 {
            db.put(Key::from_id(id), Value::filled(900, 1)).unwrap();
        }
        db.put(Key::from_id(11), Value::filled(900, 99)).unwrap();
        db.delete(&Key::from_id(12)).unwrap();
        let recovery = db.crash_and_recover();
        assert!(recovery > Nanos::ZERO);
        assert_eq!(
            db.get(&Key::from_id(11)).unwrap().value.unwrap().as_bytes()[0],
            99
        );
        assert!(db.get(&Key::from_id(12)).unwrap().value.is_none());
        for id in (0..3_000u64).step_by(41) {
            if id == 12 {
                continue;
            }
            assert!(db.get(&Key::from_id(id)).unwrap().value.is_some());
        }
    }

    #[test]
    fn read_heavy_workload_keeps_hot_reads_fast() {
        let mut db = small_db(4_000, 2);
        for id in 0..4_000u64 {
            db.put(Key::from_id(id), Value::filled(1000, 1)).unwrap();
        }
        // Zipf-like hot set: read keys 0..100 repeatedly.
        for _ in 0..30 {
            for id in 0..100u64 {
                db.get(&Key::from_id(id)).unwrap();
            }
        }
        let mut fast = 0;
        for id in 0..100u64 {
            let got = db.get(&Key::from_id(id)).unwrap();
            if matches!(got.source, ReadSource::Dram | ReadSource::Nvm) {
                fast += 1;
            }
        }
        assert!(fast >= 90, "hot reads should avoid flash, {fast}/100 fast");
    }
}
