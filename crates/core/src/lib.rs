//! PrismDB: a key-value store for tiered NVM + flash storage.
//!
//! This crate is the core of the PrismDB reproduction (ASPLOS 2023,
//! "Efficient Compactions between Storage Tiers with PrismDB"). It combines
//! the substrate crates into the full engine:
//!
//! * all writes land in NVM slab files with in-place updates
//!   ([`prism_nvm`]),
//! * an in-memory B-tree indexes the NVM-resident objects
//!   ([`prism_index`]),
//! * cold objects are demoted to SST files in a sorted log on flash
//!   ([`prism_flash`]),
//! * a clock tracker and mapper decide which objects are hot enough to pin
//!   on NVM ([`prism_tracker`]),
//! * the multi-tiered storage compaction metric picks which key range to
//!   compact, balancing reclaimed cold data against flash I/O
//!   ([`prism_compaction`]),
//! * everything is partitioned share-nothing style, with virtual-time
//!   accounting of foreground work, background compactions and write
//!   stalls ([`prism_storage`]).
//!
//! The engine implements [`prism_types::KvStore`], the same trait as the
//! LSM baseline family in `prism-lsm`, so the benchmark harness can compare
//! them directly.
//!
//! # Quick start
//!
//! ```
//! use prism_db::{Options, PrismDb};
//! use prism_types::{Key, KvStore, Value};
//!
//! let options = Options::builder(10_000).partitions(2).build()?;
//! let mut db = PrismDb::open(options)?;
//! for id in 0..100u64 {
//!     db.put(Key::from_id(id), Value::filled(512, id as u8))?;
//! }
//! let hit = db.get(&Key::from_id(42))?;
//! assert!(hit.value.is_some());
//! let scan = db.scan(&Key::from_id(90), 5)?;
//! assert_eq!(scan.entries.len(), 5);
//! # Ok::<(), prism_types::PrismError>(())
//! ```

mod cache;
mod engine;
mod options;
mod partition;
mod sequence;
mod workers;

pub use cache::{CacheStats, LruCache};
pub use engine::PrismDb;
pub use options::{Options, OptionsBuilder, Partitioning};
pub use partition::ScrubReport;
// Fault-injection and integrity vocabulary, re-exported so engine users
// can configure a plan and read health/integrity state without depending
// on the substrate crates directly.
pub use prism_storage::{
    FaultCountersSnapshot, FaultMode, FaultOp, FaultPlan, FaultTier, TargetedFault, TierFaultRates,
};
pub use prism_types::{IntegrityStats, PartitionHealth};

#[cfg(test)]
mod proptests {
    use super::*;
    use prism_types::{Key, KvStore, Value};
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// PrismDB behaves like a plain map under arbitrary interleavings of
        /// puts, gets and deletes, including across compactions.
        #[test]
        fn engine_matches_model(
            ops in prop::collection::vec((0u8..3, 0u64..300, 1usize..1200), 1..400)
        ) {
            let mut options = Options::scaled_default(300);
            options.num_partitions = 2;
            options.compaction.bucket_size_keys = 128;
            options.sst_target_bytes = 16 * 1024;
            // Keep NVM tiny so compactions actually happen mid-test.
            options.nvm_capacity_bytes = 96 * 1024;
            options.nvm_profile.capacity_bytes = 96 * 1024;
            let mut db = PrismDb::open(options).unwrap();
            let mut model: HashMap<u64, usize> = HashMap::new();

            for (op, id, size) in ops {
                let key = Key::from_id(id);
                match op {
                    0 => {
                        db.put(key, Value::filled(size, id as u8)).unwrap();
                        model.insert(id, size);
                    }
                    1 => {
                        db.delete(&key).unwrap();
                        model.remove(&id);
                    }
                    _ => {
                        let got = db.get(&key).unwrap();
                        match model.get(&id) {
                            Some(expected) => {
                                let value = got.value.expect("model says the key exists");
                                prop_assert_eq!(value.len(), *expected);
                            }
                            None => prop_assert!(got.value.is_none()),
                        }
                    }
                }
            }
            // Final sweep: every model key must be readable with the right size.
            for (id, size) in &model {
                let got = db.get(&Key::from_id(*id)).unwrap();
                prop_assert_eq!(got.value.expect("key must exist").len(), *size);
            }
        }
    }
}
