//! Engine configuration.

use std::sync::Arc;

use prism_compaction::{CompactionConfig, ReadTriggerConfig};
use prism_obs::ObsHub;
use prism_storage::{DeviceProfile, FaultPlan};
use prism_types::{PrismError, Result};

/// How keys are assigned to partitions.
///
/// The paper uses hash partitioning for workloads with load skew and range
/// partitioning for scan-heavy workloads (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Hash of the key id; spreads skewed and append-only workloads evenly.
    Hash,
    /// Contiguous key-id ranges; keeps scans within few partitions.
    Range,
}

/// Configuration of a [`crate::PrismDb`] instance.
///
/// The defaults mirror the paper's evaluation setup (§7): a 1:5 NVM:QLC
/// capacity ratio, tracker sized at 20 % of the key space, a 70 % pinning
/// threshold, 98 %/95 % NVM watermarks and the approx-MSC compaction policy
/// with power-of-8 candidate selection.
///
/// Use [`Options::builder`] for fluent construction:
///
/// ```
/// use prism_db::Options;
///
/// let options = Options::builder(100_000)
///     .nvm_capacity(64 << 20)
///     .flash_capacity(320 << 20)
///     .partitions(4)
///     .pinning_threshold(0.7)
///     .build()
///     .unwrap();
/// assert_eq!(options.num_partitions, 4);
/// ```
#[derive(Debug, Clone)]
pub struct Options {
    /// Number of shared-nothing partitions (each with its own worker and
    /// compaction accounting).
    pub num_partitions: usize,
    /// Expected number of distinct keys; used for range partitioning and
    /// for sizing the tracker.
    pub expected_keys: u64,
    /// NVM (fast tier) capacity in bytes.
    pub nvm_capacity_bytes: u64,
    /// Flash (slow tier) capacity in bytes.
    pub flash_capacity_bytes: u64,
    /// NVM device profile (defaults to Optane-class).
    pub nvm_profile: DeviceProfile,
    /// Flash device profile (defaults to QLC-class).
    pub flash_profile: DeviceProfile,
    /// How keys are assigned to partitions.
    pub partitioning: Partitioning,
    /// Bytes of DRAM used as an object cache (stand-in for the OS page
    /// cache the paper relies on).
    pub dram_cache_bytes: u64,
    /// Number of independently locked sub-shards each partition's DRAM
    /// cache is split into (key-hash → sub-cache). `1` reproduces the old
    /// single-mutex cache; higher values let concurrent point reads of one
    /// partition proceed without serialising on the cache lock. The
    /// effective count is reduced for tiny cache capacities.
    pub cache_shards: usize,
    /// Slab slot sizes for the NVM store.
    pub slab_slot_sizes: Vec<u32>,
    /// Tracker capacity as a fraction of `expected_keys` (0.2 in §7).
    pub tracker_fraction: f64,
    /// Pinning threshold: fraction of tracked objects to retain on NVM
    /// (0.7 in §7).
    pub pinning_threshold: f64,
    /// NVM utilisation that triggers a demotion compaction (0.98).
    pub high_watermark: f64,
    /// NVM utilisation at which compaction stops freeing space (0.95).
    pub low_watermark: f64,
    /// Number of background compaction worker threads shared by all
    /// partitions. `0` (the default) compacts inline on the client thread
    /// that trips the high watermark, charging the paper's write stalls;
    /// with workers, watermark trips enqueue a job and the foreground only
    /// stalls at [`Options::backpressure_ceiling`].
    pub compaction_workers: usize,
    /// Hard NVM utilisation ceiling in background-compaction mode: a
    /// foreground write that leaves utilisation at or above this value
    /// blocks until a background worker frees space (and the wait is
    /// charged as stall time). Must lie in `(high_watermark, 1.0]`.
    pub backpressure_ceiling: f64,
    /// Target size of one SST file written by compaction.
    pub sst_target_bytes: u64,
    /// Compaction policy and candidate-selection configuration.
    pub compaction: CompactionConfig,
    /// Whether compactions may promote hot flash objects back to NVM.
    pub promotions_enabled: bool,
    /// Read-triggered compaction configuration; `None` disables the
    /// mechanism entirely.
    pub read_trigger: Option<ReadTriggerConfig>,
    /// How many flash-served reads accumulate before a promotion compaction
    /// runs (while read-triggered compactions are active).
    pub promotion_batch_flash_reads: u64,
    /// Whether [`crate::PrismDb`]'s batched write path merges duplicate
    /// keys inside one partition sub-batch (the last entry wins, exactly
    /// as sequential application would end up, but superseded entries
    /// never touch the slab). Disabling this is an ablation knob: it keeps
    /// group commit's lock/overhead amortisation while paying one slab
    /// write per entry.
    pub merge_batch_duplicates: bool,
    /// Synchronous-durability mode. PrismDB always persists writes to NVM
    /// synchronously (it has no WAL), so this only affects reporting parity
    /// with baselines that add an fsync per write.
    pub fsync: bool,
    /// Deterministic storage fault-injection plan shared by both devices
    /// and the data layers above them; `None` (the default) runs
    /// fault-free.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Number of distinct corrupt objects a partition quarantines before
    /// it flips into read-only degraded mode (writes refused with the
    /// retryable `Degraded` error until a scrub pass comes back clean).
    pub corruption_quarantine_threshold: u64,
    /// Per-pass I/O budget of the background scrubber, in bytes of slab
    /// and SST data walked; a pass that exhausts the budget resumes where
    /// it left off on the next pass.
    pub scrub_io_budget_bytes: u64,
    /// Steady background scrub cadence: in background-compaction mode,
    /// after every `scrub_interval_ops` client operations the engine
    /// enqueues a scrub pass for the next partition (round-robin) — but
    /// only while the worker pool's queue is idle, so scrubbing rides the
    /// pool's idle budget and never delays compactions. `0` disables the
    /// cadence (scrubs then run only on demand or after corruption is
    /// observed).
    pub scrub_interval_ops: u64,
    /// Maximum age of a pinned snapshot, measured in commits allocated
    /// after the pin. Exceeding it aborts the oldest pin with
    /// `SnapshotExpired` and frees its preserved history. `0` disables
    /// the cap.
    pub max_pin_age_ops: u64,
    /// Maximum bytes of superseded-version history preserved for pinned
    /// snapshots across all partitions. Exceeding it aborts the oldest
    /// pin and frees its history. `0` disables the cap.
    pub max_history_bytes: u64,
    /// Shared observability hub: per-tier read / compaction / scrub
    /// latency histograms land in its registry and engine lifecycle
    /// events (compaction pipeline, quarantine flips, snapshot expiry,
    /// back-pressure) in its trace buffer. `None` (the default) gives the
    /// engine a private hub — instrumentation always runs, it is just
    /// not externally visible.
    pub obs: Option<Arc<ObsHub>>,
}

impl Options {
    /// Start building options for a database expected to hold
    /// `expected_keys` distinct keys.
    pub fn builder(expected_keys: u64) -> OptionsBuilder {
        OptionsBuilder {
            options: Options::scaled_default(expected_keys),
        }
    }

    /// Defaults scaled to `expected_keys` 1 KB objects with the paper's
    /// 1:5 NVM:flash ratio.
    pub fn scaled_default(expected_keys: u64) -> Self {
        let logical_bytes = expected_keys.max(1) * 1024;
        // Leave generous headroom on flash; NVM is 1/5 of flash capacity.
        let flash_capacity = logical_bytes * 3;
        let nvm_capacity = (flash_capacity / 5).max(64 * 1024);
        let scale_factor = (100_000_000 / expected_keys.max(1)).max(1);
        Options {
            num_partitions: 8,
            expected_keys,
            nvm_capacity_bytes: nvm_capacity,
            flash_capacity_bytes: flash_capacity,
            nvm_profile: DeviceProfile::optane_nvm(nvm_capacity),
            flash_profile: DeviceProfile::qlc_flash(flash_capacity),
            partitioning: Partitioning::Hash,
            // The paper provisions DRAM at a 1:10 ratio to storage capacity.
            dram_cache_bytes: flash_capacity / 10,
            cache_shards: 8,
            slab_slot_sizes: vec![128, 256, 512, 1024, 2048, 4096],
            tracker_fraction: 0.2,
            pinning_threshold: 0.7,
            high_watermark: 0.98,
            low_watermark: 0.95,
            compaction_workers: 0,
            backpressure_ceiling: 0.995,
            sst_target_bytes: 256 * 1024,
            compaction: CompactionConfig {
                bucket_size_keys: (expected_keys / 64).clamp(256, 65_536),
                ..CompactionConfig::default()
            },
            promotions_enabled: true,
            read_trigger: Some(ReadTriggerConfig::scaled_down(scale_factor)),
            promotion_batch_flash_reads: 200,
            merge_batch_duplicates: true,
            fsync: false,
            fault_plan: None,
            corruption_quarantine_threshold: 8,
            scrub_io_budget_bytes: 4 << 20,
            scrub_interval_ops: 100_000,
            max_pin_age_ops: 0,
            max_history_bytes: 0,
            obs: None,
        }
    }

    /// Tracker capacity in keys, derived from the expected key count.
    pub fn tracker_capacity(&self) -> usize {
        ((self.expected_keys as f64 * self.tracker_fraction) as usize).max(16)
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] describing the first invalid
    /// field found.
    pub fn validate(&self) -> Result<()> {
        if self.num_partitions == 0 {
            return Err(PrismError::InvalidConfig(
                "at least one partition is required".into(),
            ));
        }
        if self.expected_keys == 0 {
            return Err(PrismError::InvalidConfig(
                "expected_keys must be non-zero".into(),
            ));
        }
        if self.nvm_capacity_bytes == 0 || self.flash_capacity_bytes == 0 {
            return Err(PrismError::InvalidConfig(
                "tier capacities must be non-zero".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.pinning_threshold) {
            return Err(PrismError::InvalidConfig(
                "pinning threshold must be in [0, 1]".into(),
            ));
        }
        if !(0.0 < self.low_watermark
            && self.low_watermark < self.high_watermark
            && self.high_watermark <= 1.0)
        {
            return Err(PrismError::InvalidConfig(
                "watermarks must satisfy 0 < low < high <= 1".into(),
            ));
        }
        // The ceiling is only consulted in background-compaction mode, so
        // inline-only configs (e.g. a high watermark above the default
        // ceiling) stay valid as before.
        if self.compaction_workers > 0
            && !(self.high_watermark < self.backpressure_ceiling
                && self.backpressure_ceiling <= 1.0)
        {
            return Err(PrismError::InvalidConfig(
                "backpressure ceiling must satisfy high_watermark < ceiling <= 1".into(),
            ));
        }
        if self.compaction_workers > 64 {
            return Err(PrismError::InvalidConfig(
                "more than 64 compaction workers is not supported".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.tracker_fraction) || self.tracker_fraction == 0.0 {
            return Err(PrismError::InvalidConfig(
                "tracker fraction must be in (0, 1]".into(),
            ));
        }
        if self.sst_target_bytes == 0 {
            return Err(PrismError::InvalidConfig(
                "sst_target_bytes must be non-zero".into(),
            ));
        }
        if self.corruption_quarantine_threshold == 0 {
            return Err(PrismError::InvalidConfig(
                "corruption_quarantine_threshold must be non-zero".into(),
            ));
        }
        if self.scrub_io_budget_bytes == 0 {
            return Err(PrismError::InvalidConfig(
                "scrub_io_budget_bytes must be non-zero".into(),
            ));
        }
        if self.cache_shards == 0 || self.cache_shards > 1024 {
            return Err(PrismError::InvalidConfig(
                "cache_shards must be in [1, 1024]".into(),
            ));
        }
        self.compaction.validate()?;
        Ok(())
    }
}

/// Fluent builder for [`Options`].
#[derive(Debug, Clone)]
pub struct OptionsBuilder {
    options: Options,
}

impl OptionsBuilder {
    /// Set the number of partitions.
    pub fn partitions(mut self, n: usize) -> Self {
        self.options.num_partitions = n;
        self
    }

    /// Set the NVM capacity in bytes (also refreshes the NVM device profile
    /// capacity).
    pub fn nvm_capacity(mut self, bytes: u64) -> Self {
        self.options.nvm_capacity_bytes = bytes;
        self.options.nvm_profile = DeviceProfile::optane_nvm(bytes);
        self
    }

    /// Set the flash capacity in bytes (also refreshes the flash device
    /// profile capacity, keeping its kind).
    pub fn flash_capacity(mut self, bytes: u64) -> Self {
        self.options.flash_capacity_bytes = bytes;
        self.options.flash_profile.capacity_bytes = bytes;
        self
    }

    /// Replace the flash device profile (e.g. TLC instead of QLC).
    pub fn flash_profile(mut self, profile: DeviceProfile) -> Self {
        self.options.flash_capacity_bytes = profile.capacity_bytes;
        self.options.flash_profile = profile;
        self
    }

    /// Set the DRAM object-cache size.
    pub fn dram_cache(mut self, bytes: u64) -> Self {
        self.options.dram_cache_bytes = bytes;
        self
    }

    /// Set the number of sub-shards each partition's DRAM cache splits
    /// into (`1` = the old single-mutex cache; default 8).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.options.cache_shards = shards;
        self
    }

    /// Choose the partitioning scheme (hash by default; range keeps scans
    /// local to few partitions).
    pub fn partitioning(mut self, partitioning: Partitioning) -> Self {
        self.options.partitioning = partitioning;
        self
    }

    /// Set the pinning threshold.
    pub fn pinning_threshold(mut self, threshold: f64) -> Self {
        self.options.pinning_threshold = threshold;
        self
    }

    /// Set the compaction configuration.
    pub fn compaction(mut self, config: CompactionConfig) -> Self {
        self.options.compaction = config;
        self
    }

    /// Enable or disable promotions.
    pub fn promotions(mut self, enabled: bool) -> Self {
        self.options.promotions_enabled = enabled;
        self
    }

    /// Set or disable the read-triggered compaction controller.
    pub fn read_trigger(mut self, config: Option<ReadTriggerConfig>) -> Self {
        self.options.read_trigger = config;
        self
    }

    /// Set the tracker size as a fraction of the expected keys.
    pub fn tracker_fraction(mut self, fraction: f64) -> Self {
        self.options.tracker_fraction = fraction;
        self
    }

    /// Set the number of background compaction worker threads (`0` keeps
    /// the inline, stall-on-watermark behaviour).
    pub fn compaction_workers(mut self, workers: usize) -> Self {
        self.options.compaction_workers = workers;
        self
    }

    /// Set the back-pressure ceiling used in background-compaction mode.
    pub fn backpressure_ceiling(mut self, ceiling: f64) -> Self {
        self.options.backpressure_ceiling = ceiling;
        self
    }

    /// Enable or disable duplicate-key merging inside one partition
    /// sub-batch of the batched write path (enabled by default).
    pub fn merge_batch_duplicates(mut self, enabled: bool) -> Self {
        self.options.merge_batch_duplicates = enabled;
        self
    }

    /// Set synchronous-durability mode.
    pub fn fsync(mut self, enabled: bool) -> Self {
        self.options.fsync = enabled;
        self
    }

    /// Attach a deterministic storage fault-injection plan.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.options.fault_plan = Some(plan);
        self
    }

    /// Attach a shared observability hub: engine histograms register in
    /// its metrics registry and lifecycle events land in its trace
    /// buffer, so an admin plane over the same hub sees the engine.
    pub fn obs(mut self, hub: Arc<ObsHub>) -> Self {
        self.options.obs = Some(hub);
        self
    }

    /// Set how many quarantined objects flip a partition into read-only
    /// degraded mode.
    pub fn corruption_quarantine_threshold(mut self, threshold: u64) -> Self {
        self.options.corruption_quarantine_threshold = threshold;
        self
    }

    /// Set the scrubber's per-pass I/O budget in bytes.
    pub fn scrub_io_budget(mut self, bytes: u64) -> Self {
        self.options.scrub_io_budget_bytes = bytes;
        self
    }

    /// Set the steady background scrub cadence in client operations
    /// (`0` disables it; only active in background-compaction mode).
    pub fn scrub_interval_ops(mut self, ops: u64) -> Self {
        self.options.scrub_interval_ops = ops;
        self
    }

    /// Cap the age of pinned snapshots in commits (`0` = unlimited); older
    /// pins are aborted with `SnapshotExpired`.
    pub fn max_pin_age_ops(mut self, ops: u64) -> Self {
        self.options.max_pin_age_ops = ops;
        self
    }

    /// Cap the bytes of superseded-version history kept for pinned
    /// snapshots (`0` = unlimited); exceeding it aborts the oldest pin.
    pub fn max_history_bytes(mut self, bytes: u64) -> Self {
        self.options.max_history_bytes = bytes;
        self
    }

    /// Finish building.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if the resulting options are
    /// invalid.
    pub fn build(self) -> Result<Options> {
        self.options.validate()?;
        Ok(self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_defaults_are_valid_and_keep_paper_ratios() {
        let options = Options::scaled_default(100_000);
        options.validate().unwrap();
        assert_eq!(options.num_partitions, 8);
        assert!((options.tracker_fraction - 0.2).abs() < 1e-9);
        assert!((options.pinning_threshold - 0.7).abs() < 1e-9);
        assert_eq!(options.nvm_capacity_bytes * 5, options.flash_capacity_bytes);
        assert_eq!(options.tracker_capacity(), 20_000);
    }

    #[test]
    fn builder_overrides_fields() {
        let options = Options::builder(1000)
            .partitions(2)
            .nvm_capacity(1 << 20)
            .flash_capacity(5 << 20)
            .pinning_threshold(0.3)
            .promotions(false)
            .tracker_fraction(0.5)
            .fsync(true)
            .build()
            .unwrap();
        assert_eq!(options.num_partitions, 2);
        assert_eq!(options.nvm_capacity_bytes, 1 << 20);
        assert_eq!(options.nvm_profile.capacity_bytes, 1 << 20);
        assert!((options.pinning_threshold - 0.3).abs() < 1e-9);
        assert!(!options.promotions_enabled);
        assert!(options.fsync);
        assert_eq!(options.tracker_capacity(), 500);
    }

    #[test]
    fn invalid_options_are_rejected() {
        assert!(Options::builder(0).build().is_err());
        assert!(Options::builder(100).partitions(0).build().is_err());
        assert!(Options::builder(100)
            .pinning_threshold(1.5)
            .build()
            .is_err());
        let mut bad = Options::scaled_default(100);
        bad.low_watermark = 0.99;
        assert!(bad.validate().is_err());
        let mut bad = Options::scaled_default(100);
        bad.sst_target_bytes = 0;
        assert!(bad.validate().is_err());
        let mut bad = Options::scaled_default(100);
        bad.tracker_fraction = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = Options::scaled_default(100);
        bad.corruption_quarantine_threshold = 0;
        assert!(bad.validate().is_err());
        let mut bad = Options::scaled_default(100);
        bad.scrub_io_budget_bytes = 0;
        assert!(bad.validate().is_err());
        let mut bad = Options::scaled_default(100);
        bad.cache_shards = 0;
        assert!(bad.validate().is_err());
        bad.cache_shards = 2048;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn read_path_knobs_build_and_default_sharded() {
        let defaults = Options::scaled_default(1000);
        assert_eq!(defaults.cache_shards, 8);
        assert_eq!(defaults.scrub_interval_ops, 100_000);
        let options = Options::builder(1000)
            .cache_shards(1)
            .scrub_interval_ops(0)
            .build()
            .unwrap();
        assert_eq!(options.cache_shards, 1);
        assert_eq!(options.scrub_interval_ops, 0);
    }

    #[test]
    fn robustness_knobs_build_and_default_off() {
        let defaults = Options::scaled_default(1000);
        assert!(defaults.fault_plan.is_none());
        assert_eq!(defaults.max_pin_age_ops, 0);
        assert_eq!(defaults.max_history_bytes, 0);
        let plan = Arc::new(FaultPlan::new(7));
        let options = Options::builder(1000)
            .fault_plan(Arc::clone(&plan))
            .corruption_quarantine_threshold(3)
            .scrub_io_budget(1 << 16)
            .max_pin_age_ops(500)
            .max_history_bytes(1 << 20)
            .build()
            .unwrap();
        assert!(options.fault_plan.is_some());
        assert_eq!(options.corruption_quarantine_threshold, 3);
        assert_eq!(options.scrub_io_budget_bytes, 1 << 16);
        assert_eq!(options.max_pin_age_ops, 500);
        assert_eq!(options.max_history_bytes, 1 << 20);
    }

    #[test]
    fn background_compaction_knobs_validate() {
        let options = Options::builder(1000)
            .compaction_workers(2)
            .backpressure_ceiling(0.999)
            .build()
            .unwrap();
        assert_eq!(options.compaction_workers, 2);
        assert!((options.backpressure_ceiling - 0.999).abs() < 1e-9);
        // Defaults: inline compaction, ceiling above the high watermark.
        let defaults = Options::scaled_default(1000);
        assert_eq!(defaults.compaction_workers, 0);
        assert!(defaults.backpressure_ceiling > defaults.high_watermark);
        // The ceiling must sit strictly above the high watermark — but
        // only in background mode; inline-only configs never consult it.
        let mut bad = Options::scaled_default(100);
        bad.compaction_workers = 2;
        bad.backpressure_ceiling = bad.high_watermark;
        assert!(bad.validate().is_err());
        bad.compaction_workers = 0;
        assert!(bad.validate().is_ok());
        // ...and the worker count is sanity-bounded.
        let mut bad = Options::scaled_default(100);
        bad.compaction_workers = 1000;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn flash_profile_override_keeps_capacity_consistent() {
        let tlc = DeviceProfile::tlc_flash(10 << 20);
        let options = Options::builder(1000).flash_profile(tlc).build().unwrap();
        assert_eq!(options.flash_capacity_bytes, 10 << 20);
        assert_eq!(
            options.flash_profile.kind,
            prism_storage::DeviceKind::TlcNand
        );
    }
}
