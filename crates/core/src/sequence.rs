//! The global commit sequencer: one monotone counter shared by every
//! partition, doubling as the engine's snapshot clock.
//!
//! Every write (single put/delete, batch group, transaction commit)
//! allocates its commit sequence from [`CommitSequencer::allocate`] while
//! holding the write lock of the partition(s) it mutates, and stamps the
//! new versions with it (the per-entry `timestamp` that already flows
//! through the NVM slab, demotions and SSTs *is* the commit sequence).
//! A snapshot pins the current sequence with [`CommitSequencer::pin`];
//! readers then filter to versions with `seq <= pinned`.
//!
//! # Why pin() loads the counter under the pin-registry mutex
//!
//! A writer allocates its sequence `N` (an atomic `fetch_add`) and then
//! asks [`CommitSequencer::has_pins`] whether any snapshot is live before
//! deciding to preserve the version it is about to supersede. `pin()`
//! loads the counter *inside* the registry mutex, so the two critical
//! sections serialise: either the pin registers first (the writer sees it
//! and records an undo version), or the writer's check runs first (then
//! the pin's later load observes the `fetch_add` and returns `p >= N`, so
//! the snapshot correctly sees the *new* version and needs no undo).
//! Either way no snapshot ever loses a version it was entitled to.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotone commit-sequence allocator with a refcounted pin registry.
#[derive(Debug, Default)]
pub(crate) struct CommitSequencer {
    counter: AtomicU64,
    /// pinned sequence -> number of live snapshots pinned at it.
    pins: Mutex<BTreeMap<u64, usize>>,
    /// Sequences whose pins were force-expired (snapshot-cap
    /// enforcement): their handles observe `SnapshotExpired` instead of
    /// silently reading freed history. An expired sequence can never be
    /// re-pinned — expiry requires the counter to have advanced past it,
    /// and new pins always pin the current counter — so membership is
    /// permanent and unambiguous. The set grows by one entry per expiry
    /// event, which is bounded by the configured caps in practice.
    expired: Mutex<HashSet<u64>>,
    /// Total bytes of superseded-version history preserved across all
    /// partitions for the live pins (partitions add on preserve, subtract
    /// on prune/clear). The engine's snapshot-cap enforcement reads this
    /// without touching any partition lock.
    history_bytes: AtomicU64,
}

impl CommitSequencer {
    pub(crate) fn new() -> Self {
        CommitSequencer::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, usize>> {
        self.pins
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Allocate the next commit sequence (strictly positive, strictly
    /// increasing). Call while holding the write lock of every partition
    /// the commit will touch, so the stamped versions are installed
    /// before any later reader can run.
    pub(crate) fn allocate(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The most recently allocated sequence (0 before the first write).
    pub(crate) fn current(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Fast-forward the counter to at least `seq` (recovery rebuilds the
    /// clock from the largest persisted timestamp).
    pub(crate) fn advance_past(&self, seq: u64) {
        self.counter.fetch_max(seq, Ordering::SeqCst);
    }

    /// Pin the current sequence for a snapshot. The caller must later
    /// [`CommitSequencer::release`] the returned value exactly once.
    pub(crate) fn pin(&self) -> u64 {
        let mut pins = self.lock();
        // Load inside the mutex — see the module docs for why.
        let pinned = self.counter.load(Ordering::SeqCst);
        *pins.entry(pinned).or_insert(0) += 1;
        pinned
    }

    /// Release one pin previously returned by [`CommitSequencer::pin`].
    pub(crate) fn release(&self, pinned: u64) {
        let mut pins = self.lock();
        if let Some(count) = pins.get_mut(&pinned) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&pinned);
            }
        }
    }

    /// Whether any snapshot is currently pinned. Writers consult this
    /// (after allocating their sequence) to decide whether superseded
    /// versions must be preserved for snapshot readers.
    pub(crate) fn has_pins(&self) -> bool {
        !self.lock().is_empty()
    }

    /// Number of live pins (for stats/gauges).
    pub(crate) fn active_pins(&self) -> u64 {
        self.lock().values().map(|c| *c as u64).sum()
    }

    /// The oldest pinned sequence, if any snapshot is live.
    pub(crate) fn oldest_pin(&self) -> Option<u64> {
        self.lock().keys().next().copied()
    }

    /// Force-expire every pin at the oldest pinned sequence (snapshot-cap
    /// enforcement): the pins are dropped from the registry and the
    /// sequence is recorded as expired, so their handles fail with
    /// `SnapshotExpired` instead of reading history that is about to be
    /// freed. Returns `(sequence, pin_count)` or `None` with no pins.
    pub(crate) fn expire_oldest(&self) -> Option<(u64, u64)> {
        let mut pins = self.lock();
        let (&seq, &count) = pins.iter().next()?;
        pins.remove(&seq);
        drop(pins);
        self.expired
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .insert(seq);
        Some((seq, count as u64))
    }

    /// Whether a pinned sequence was force-expired.
    pub(crate) fn is_expired(&self, seq: u64) -> bool {
        self.expired
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .contains(&seq)
    }

    /// Record history bytes preserved for pinned snapshots.
    pub(crate) fn add_history_bytes(&self, bytes: u64) {
        self.history_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record history bytes freed by a prune or clear.
    pub(crate) fn sub_history_bytes(&self, bytes: u64) {
        // Saturate rather than wrap if accounting ever drifts.
        let mut current = self.history_bytes.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.history_bytes.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Total preserved-history bytes across all partitions.
    pub(crate) fn history_bytes(&self) -> u64 {
        self.history_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_strictly_increasing_and_positive() {
        let seq = CommitSequencer::new();
        assert_eq!(seq.current(), 0);
        let a = seq.allocate();
        let b = seq.allocate();
        assert!(a >= 1);
        assert!(b > a);
        assert_eq!(seq.current(), b);
    }

    #[test]
    fn pins_are_refcounted_and_release_restores_emptiness() {
        let seq = CommitSequencer::new();
        seq.allocate();
        assert!(!seq.has_pins());
        let p1 = seq.pin();
        let p2 = seq.pin();
        assert_eq!(p1, p2, "no writes between pins");
        assert_eq!(seq.active_pins(), 2);
        seq.release(p1);
        assert!(seq.has_pins());
        seq.release(p2);
        assert!(!seq.has_pins());
        assert_eq!(seq.active_pins(), 0);
    }

    #[test]
    fn advance_past_never_moves_backwards() {
        let seq = CommitSequencer::new();
        seq.advance_past(100);
        assert_eq!(seq.current(), 100);
        seq.advance_past(50);
        assert_eq!(seq.current(), 100);
        assert!(seq.allocate() > 100);
    }

    #[test]
    fn expiring_the_oldest_pin_drops_it_and_marks_it_expired() {
        let seq = CommitSequencer::new();
        seq.allocate();
        let old = seq.pin();
        seq.allocate();
        seq.allocate();
        let new = seq.pin();
        assert!(new > old);
        let (expired_seq, count) = seq.expire_oldest().expect("a pin exists");
        assert_eq!(expired_seq, old);
        assert_eq!(count, 1);
        assert!(seq.is_expired(old));
        assert!(!seq.is_expired(new));
        assert_eq!(seq.oldest_pin(), Some(new));
        // Releasing an expired handle is a harmless no-op.
        seq.release(old);
        assert_eq!(seq.active_pins(), 1);
        assert_eq!(seq.expire_oldest(), Some((new, 1)));
        assert_eq!(seq.oldest_pin(), None);
        assert!(seq.expire_oldest().is_none());
    }

    #[test]
    fn history_byte_accounting_saturates() {
        let seq = CommitSequencer::new();
        assert_eq!(seq.history_bytes(), 0);
        seq.add_history_bytes(100);
        seq.add_history_bytes(50);
        assert_eq!(seq.history_bytes(), 150);
        seq.sub_history_bytes(100);
        assert_eq!(seq.history_bytes(), 50);
        seq.sub_history_bytes(500);
        assert_eq!(seq.history_bytes(), 0);
    }

    #[test]
    fn pin_tracks_the_latest_allocation() {
        let seq = CommitSequencer::new();
        let a = seq.allocate();
        let p = seq.pin();
        assert_eq!(p, a);
        let b = seq.allocate();
        assert!(b > p, "writes after the pin get later sequences");
        seq.release(p);
    }
}
