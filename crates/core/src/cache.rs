//! A small LRU object cache standing in for the OS page cache.
//!
//! The paper's PrismDB deliberately has no userspace DRAM cache and relies
//! on the OS page cache for recently-read NVM and flash pages (§4.1). In
//! the simulator we model that effect with a byte-bounded LRU of whole
//! objects: hits cost a DRAM access instead of an NVM/flash access.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use prism_types::{Key, Value};

/// Observed state of a DRAM object cache: occupancy plus cumulative
/// hit/miss counters (see [`crate::PrismDb::dram_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a storage tier.
    pub misses: u64,
    /// Objects currently cached.
    pub objects: usize,
    /// Bytes of cached values.
    pub used_bytes: u64,
    /// Independently locked sub-shards backing the cache.
    pub shards: usize,
}

impl CacheStats {
    /// Fraction of lookups served from DRAM (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Fold another cache's stats into this one (shard counts add: the
    /// engine-wide view sums every partition's sub-shards).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.objects += other.objects;
        self.used_bytes += other.used_bytes;
        self.shards += other.shards;
    }
}

/// Byte-bounded least-recently-used object cache.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: HashMap<Key, (Value, u64)>,
    order: BTreeMap<u64, Key>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Create a cache bounded to `capacity_bytes` of values.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of cached values.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &Key) -> Option<Value> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((value, last)) => {
                self.order.remove(last);
                *last = tick;
                self.order.insert(tick, key.clone());
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert or refresh a key. Objects larger than the whole cache are
    /// ignored.
    pub fn insert(&mut self, key: Key, value: Value) {
        let size = value.len() as u64;
        if self.capacity_bytes == 0 || size > self.capacity_bytes {
            return;
        }
        self.remove(&key);
        while self.used_bytes + size > self.capacity_bytes {
            let Some((&oldest_tick, _)) = self.order.iter().next() else {
                break;
            };
            let oldest_key = self.order.remove(&oldest_tick).expect("tick present");
            if let Some((old_value, _)) = self.entries.remove(&oldest_key) {
                self.used_bytes -= old_value.len() as u64;
            }
        }
        self.tick += 1;
        self.used_bytes += size;
        self.order.insert(self.tick, key.clone());
        self.entries.insert(key, (value, self.tick));
    }

    /// Remove a key (called on updates and deletes to keep the cache
    /// consistent with the store).
    pub fn remove(&mut self, key: &Key) {
        if let Some((value, tick)) = self.entries.remove(key) {
            self.order.remove(&tick);
            self.used_bytes -= value.len() as u64;
        }
    }

    /// Drop everything (used when simulating a crash).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used_bytes = 0;
    }
}

/// Hash-sharded DRAM object cache: key-hash → sub-cache, each behind its
/// own lock, so concurrent point reads of one partition only contend when
/// they land on the same sub-shard.
///
/// Each sub-shard also tallies the virtual nanoseconds of serial work
/// (probe + insert CPU cost) charged against it, so the threaded makespan
/// model can fold the busiest sub-shard back into the run's critical path:
/// with one shard every probe serialises, with N shards the residual
/// serial work shrinks toward `total / N`.
#[derive(Debug)]
pub struct ShardedLruCache {
    shards: Vec<Mutex<LruCache>>,
    serial_ns: Vec<AtomicU64>,
}

/// splitmix64 finalizer: decorrelates sequential key ids so neighbouring
/// keys spread over the sub-shards instead of clustering.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardedLruCache {
    /// Create a cache of `capacity_bytes` split over (up to) `shards`
    /// sub-caches. The shard count is reduced for tiny capacities so each
    /// sub-shard keeps a workable byte budget, and clamped to at least 1.
    pub fn new(capacity_bytes: u64, shards: usize) -> Self {
        let shards = if capacity_bytes == 0 {
            1
        } else {
            shards.max(1).min((capacity_bytes / 1024).max(1) as usize)
        };
        let per_shard = capacity_bytes / shards as u64;
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            serial_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of independently locked sub-caches.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sub-shard a key maps to.
    pub fn shard_of(&self, key: &Key) -> usize {
        (mix(key.id()) % self.shards.len() as u64) as usize
    }

    fn lock(&self, idx: usize) -> MutexGuard<'_, LruCache> {
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up a key in its sub-shard, refreshing recency on a hit.
    pub fn get(&self, key: &Key) -> Option<Value> {
        self.lock(self.shard_of(key)).get(key)
    }

    /// Insert or refresh a key in its sub-shard.
    pub fn insert(&self, key: Key, value: Value) {
        self.lock(self.shard_of(&key)).insert(key, value);
    }

    /// Remove a key (updates and deletes keep the cache consistent with
    /// the store).
    pub fn remove(&self, key: &Key) {
        self.lock(self.shard_of(key)).remove(key);
    }

    /// Drop everything (crash simulation).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Total cache hits across sub-shards.
    pub fn hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).hits())
            .sum()
    }

    /// Total cache misses across sub-shards.
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).misses())
            .sum()
    }

    /// Total cached objects.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True if nothing is cached in any sub-shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of cached values.
    pub fn used_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).used_bytes())
            .sum()
    }

    /// Snapshot of this cache's occupancy and hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            objects: self.len(),
            used_bytes: self.used_bytes(),
            shards: self.shard_count(),
        }
    }

    /// Charge `ns` virtual nanoseconds of serial probe work against the
    /// sub-shard `key` maps to.
    pub fn charge_serial(&self, key: &Key, ns: u64) {
        self.serial_ns[self.shard_of(key)].fetch_add(ns, Ordering::Relaxed);
    }

    /// Serial virtual time accumulated by the busiest sub-shard — the
    /// residual serial component of the read path in the makespan model.
    pub fn busiest_serial_ns(&self) -> u64 {
        self.serial_ns
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: u64) -> Key {
        Key::from_id(id)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = LruCache::new(10_000);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Value::filled(100, 1));
        assert_eq!(cache.get(&key(1)).unwrap().len(), 100);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 100);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(300);
        cache.insert(key(1), Value::filled(100, 1));
        cache.insert(key(2), Value::filled(100, 2));
        cache.insert(key(3), Value::filled(100, 3));
        // Touch key 1 so key 2 is the LRU victim.
        cache.get(&key(1));
        cache.insert(key(4), Value::filled(100, 4));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert!(cache.used_bytes() <= 300);
    }

    #[test]
    fn updates_replace_bytes() {
        let mut cache = LruCache::new(1000);
        cache.insert(key(1), Value::filled(400, 1));
        cache.insert(key(1), Value::filled(100, 2));
        assert_eq!(cache.used_bytes(), 100);
        assert_eq!(cache.get(&key(1)).unwrap().len(), 100);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = LruCache::new(1000);
        cache.insert(key(1), Value::filled(100, 1));
        cache.insert(key(2), Value::filled(100, 2));
        cache.remove(&key(1));
        assert!(cache.get(&key(1)).is_none());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut cache = LruCache::new(100);
        cache.insert(key(1), Value::filled(500, 1));
        assert!(cache.is_empty());
        let mut disabled = LruCache::new(0);
        disabled.insert(key(1), Value::filled(1, 1));
        assert!(disabled.is_empty());
    }

    #[test]
    fn sharded_cache_matches_basic_semantics() {
        let cache = ShardedLruCache::new(64 << 10, 8);
        assert_eq!(cache.shard_count(), 8);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Value::filled(100, 1));
        assert_eq!(cache.get(&key(1)).unwrap().len(), 100);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 100);
        cache.remove(&key(1));
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(2), Value::filled(50, 2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn sharded_cache_spreads_keys_over_sub_shards() {
        let cache = ShardedLruCache::new(1 << 20, 8);
        let mut hit = vec![false; cache.shard_count()];
        for id in 0..256u64 {
            hit[cache.shard_of(&key(id))] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "sequential ids must spread over all sub-shards: {hit:?}"
        );
    }

    #[test]
    fn tiny_capacities_collapse_to_fewer_shards() {
        let cache = ShardedLruCache::new(2048, 8);
        assert_eq!(cache.shard_count(), 2);
        cache.insert(key(1), Value::filled(100, 1));
        assert_eq!(cache.get(&key(1)).unwrap().len(), 100);
        let disabled = ShardedLruCache::new(0, 8);
        assert_eq!(disabled.shard_count(), 1);
        disabled.insert(key(1), Value::filled(1, 1));
        assert!(disabled.is_empty());
    }

    #[test]
    fn single_shard_matches_the_mutexed_cache_exactly() {
        // With one sub-shard the sharded cache is the mutexed cache: a
        // deterministic trace must produce identical hit/miss/eviction
        // behaviour.
        let sharded = ShardedLruCache::new(300, 1);
        let mut plain = LruCache::new(300);
        for step in 0..200u64 {
            let id = step % 7;
            if step % 3 == 0 {
                sharded.insert(key(id), Value::filled(100, id as u8));
                plain.insert(key(id), Value::filled(100, id as u8));
            } else {
                assert_eq!(
                    sharded.get(&key(id)).is_some(),
                    plain.get(&key(id)).is_some(),
                    "diverged at step {step}"
                );
            }
        }
        assert_eq!(sharded.hits(), plain.hits());
        assert_eq!(sharded.misses(), plain.misses());
        assert_eq!(sharded.used_bytes(), plain.used_bytes());
    }

    #[test]
    fn serial_charge_tracks_the_busiest_sub_shard() {
        let cache = ShardedLruCache::new(1 << 20, 4);
        assert_eq!(cache.busiest_serial_ns(), 0);
        // Charge the same key repeatedly: one shard absorbs it all.
        for _ in 0..10 {
            cache.charge_serial(&key(42), 7);
        }
        assert_eq!(cache.busiest_serial_ns(), 70);
        // Charges to other shards don't reduce the max.
        for id in 0..64u64 {
            cache.charge_serial(&key(id), 1);
        }
        assert!(cache.busiest_serial_ns() >= 70);
    }

    #[test]
    fn sharded_cache_is_safe_under_concurrent_mixed_traffic() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedLruCache::new(256 << 10, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let id = (t * 131 + i) % 512;
                    match i % 4 {
                        0 => cache.insert(key(id), Value::filled(64, id as u8)),
                        1 => {
                            if let Some(v) = cache.get(&key(id)) {
                                // Entries are whole or absent, never torn.
                                assert_eq!(v.len(), 64);
                                assert!(v.as_bytes().iter().all(|&b| b == id as u8));
                            }
                        }
                        2 => cache.remove(&key(id)),
                        _ => cache.charge_serial(&key(id), 3),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.used_bytes() <= 256 << 10);
    }
}
