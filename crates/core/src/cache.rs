//! A small LRU object cache standing in for the OS page cache.
//!
//! The paper's PrismDB deliberately has no userspace DRAM cache and relies
//! on the OS page cache for recently-read NVM and flash pages (§4.1). In
//! the simulator we model that effect with a byte-bounded LRU of whole
//! objects: hits cost a DRAM access instead of an NVM/flash access.

use std::collections::{BTreeMap, HashMap};

use prism_types::{Key, Value};

/// Byte-bounded least-recently-used object cache.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: HashMap<Key, (Value, u64)>,
    order: BTreeMap<u64, Key>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Create a cache bounded to `capacity_bytes` of values.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of cached values.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &Key) -> Option<Value> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((value, last)) => {
                self.order.remove(last);
                *last = tick;
                self.order.insert(tick, key.clone());
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert or refresh a key. Objects larger than the whole cache are
    /// ignored.
    pub fn insert(&mut self, key: Key, value: Value) {
        let size = value.len() as u64;
        if self.capacity_bytes == 0 || size > self.capacity_bytes {
            return;
        }
        self.remove(&key);
        while self.used_bytes + size > self.capacity_bytes {
            let Some((&oldest_tick, _)) = self.order.iter().next() else {
                break;
            };
            let oldest_key = self.order.remove(&oldest_tick).expect("tick present");
            if let Some((old_value, _)) = self.entries.remove(&oldest_key) {
                self.used_bytes -= old_value.len() as u64;
            }
        }
        self.tick += 1;
        self.used_bytes += size;
        self.order.insert(self.tick, key.clone());
        self.entries.insert(key, (value, self.tick));
    }

    /// Remove a key (called on updates and deletes to keep the cache
    /// consistent with the store).
    pub fn remove(&mut self, key: &Key) {
        if let Some((value, tick)) = self.entries.remove(key) {
            self.order.remove(&tick);
            self.used_bytes -= value.len() as u64;
        }
    }

    /// Drop everything (used when simulating a crash).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: u64) -> Key {
        Key::from_id(id)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = LruCache::new(10_000);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Value::filled(100, 1));
        assert_eq!(cache.get(&key(1)).unwrap().len(), 100);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 100);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(300);
        cache.insert(key(1), Value::filled(100, 1));
        cache.insert(key(2), Value::filled(100, 2));
        cache.insert(key(3), Value::filled(100, 3));
        // Touch key 1 so key 2 is the LRU victim.
        cache.get(&key(1));
        cache.insert(key(4), Value::filled(100, 4));
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert!(cache.used_bytes() <= 300);
    }

    #[test]
    fn updates_replace_bytes() {
        let mut cache = LruCache::new(1000);
        cache.insert(key(1), Value::filled(400, 1));
        cache.insert(key(1), Value::filled(100, 2));
        assert_eq!(cache.used_bytes(), 100);
        assert_eq!(cache.get(&key(1)).unwrap().len(), 100);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = LruCache::new(1000);
        cache.insert(key(1), Value::filled(100, 1));
        cache.insert(key(2), Value::filled(100, 2));
        cache.remove(&key(1));
        assert!(cache.get(&key(1)).is_none());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut cache = LruCache::new(100);
        cache.insert(key(1), Value::filled(500, 1));
        assert!(cache.is_empty());
        let mut disabled = LruCache::new(0);
        disabled.insert(key(1), Value::filled(1, 1));
        assert!(disabled.is_empty());
    }
}
