//! Protocol framing property tests: arbitrary requests and responses
//! round-trip bit-exactly, and truncated / oversized / corrupt frames
//! yield clean protocol errors — never panics, and never a desync of the
//! frame that follows.

use prism_net::protocol::{
    self, decode_request, decode_response, encode_request, encode_response, Frame, FrameDecoder,
    Request, Response, ResponseBody, Status, CRC_PREFIX, HEADER, LEN_PREFIX, MAX_FRAME,
};
use prism_types::{Key, Nanos, Value, WriteBatch};
use proptest::prelude::*;

/// Deterministically expand a compact op descriptor into a request; the
/// proptest shim generates tuples, this maps them onto the protocol's
/// surface (all six opcodes, empty and large keys/values, batches).
fn build_request(op: u8, id_seed: u64, size: usize) -> Request {
    let key = match id_seed % 3 {
        0 => Key::from_id(id_seed),
        1 => Key::from_bytes(vec![]),
        _ => Key::from_bytes(vec![(id_seed % 251) as u8; (size % 700) + 1]),
    };
    let value = Value::filled(size % 4096, (id_seed % 256) as u8);
    match op % 6 {
        0 => Request::Put { key, value },
        1 => Request::Delete { key },
        2 => Request::Get { key },
        3 => Request::Scan {
            start: key,
            count: (size as u32) % 10_000,
        },
        4 => {
            let mut batch = WriteBatch::new();
            for i in 0..(size % 9) {
                if i % 3 == 2 {
                    batch.delete(Key::from_id(id_seed + i as u64));
                } else {
                    batch.put(
                        Key::from_id(id_seed + i as u64),
                        Value::filled(i * 31 % 1024, i as u8),
                    );
                }
            }
            Request::Batch { batch }
        }
        _ => Request::Ping,
    }
}

fn build_response(op: u8, id_seed: u64, size: usize) -> Response {
    let status = match op % 5 {
        0 => Status::Ok,
        1 => Status::Backpressure,
        2 => Status::ShuttingDown,
        3 => Status::ServerError,
        _ => Status::ProtocolError,
    };
    if status != Status::Ok {
        return Response::refusal(
            id_seed,
            protocol::opcode::PUT,
            status,
            format!("synthetic refusal {id_seed}"),
        );
    }
    let (opcode, body) = match id_seed % 4 {
        0 => (protocol::opcode::PUT, ResponseBody::Ack),
        1 => (
            protocol::opcode::GET,
            ResponseBody::Value(if size % 2 == 0 {
                Some(Value::filled(size % 2048, 7))
            } else {
                None
            }),
        ),
        2 => (
            protocol::opcode::SCAN,
            ResponseBody::Entries(
                (0..size % 6)
                    .map(|i| (Key::from_id(i as u64), Value::filled(i * 17 % 512, i as u8)))
                    .collect(),
            ),
        ),
        _ => (protocol::opcode::BATCH, ResponseBody::Ack),
    };
    Response {
        id: id_seed,
        opcode,
        status,
        message: String::new(),
        latency: Nanos::from_nanos(id_seed.wrapping_mul(7919) % 100_000_000),
        body,
        more: false,
    }
}

/// Unwrap a frame the test knows was not corrupted on the (in-memory)
/// wire.
fn intact(frame: Frame) -> Vec<u8> {
    match frame {
        Frame::Intact(payload) => payload,
        Frame::Corrupt { id } => panic!("frame {id} unexpectedly corrupt"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any stream of requests encodes, re-frames through an arbitrary
    /// re-chunking, and decodes back to exactly the inputs.
    #[test]
    fn requests_round_trip_through_rechunked_streams(
        ops in prop::collection::vec((0u8..6, 0u64..1_000_000, 0usize..4096), 1..30),
        chunk in 1usize..700
    ) {
        let requests: Vec<Request> = ops
            .iter()
            .map(|(op, id, size)| build_request(*op, *id, *size))
            .collect();
        let mut stream = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            stream.extend(encode_request(i as u64, request).expect("encode"));
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(frame) = decoder.next_frame().expect("sound stream") {
                decoded.push(decode_request(&intact(frame)).expect("decode"));
            }
        }
        prop_assert_eq!(decoded.len(), requests.len());
        for (i, (id, request)) in decoded.iter().enumerate() {
            prop_assert_eq!(*id, i as u64);
            prop_assert_eq!(request, &requests[i]);
        }
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    /// Any response round-trips bit-exactly.
    #[test]
    fn responses_round_trip(
        ops in prop::collection::vec((0u8..5, 0u64..1_000_000, 0usize..2048), 1..40)
    ) {
        for (op, id, size) in ops {
            let response = build_response(op, id, size);
            let frame = encode_response(&response).expect("encode");
            let got = decode_response(&frame[HEADER..]).expect("decode");
            prop_assert_eq!(got, response);
        }
    }

    /// Truncating a request payload anywhere yields a clean protocol
    /// error, never a panic.
    #[test]
    fn truncated_request_payloads_error_cleanly(
        (op, id, size) in (0u8..6, 0u64..1_000_000, 0usize..4096),
        cut_seed in 0usize..10_000
    ) {
        let request = build_request(op, id, size);
        let frame = encode_request(id, &request).expect("encode");
        let payload = &frame[HEADER..];
        let cut = cut_seed % payload.len().max(1);
        match decode_request(&payload[..cut]) {
            Ok((got_id, got)) => {
                // A prefix can only decode if it is itself a complete
                // well-formed payload; then it must be *this* request
                // (cut == len) — anything else would be a desync.
                prop_assert_eq!(cut, payload.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, request);
            }
            Err(err) => {
                prop_assert!(matches!(err, prism_types::PrismError::Protocol(_)));
            }
        }
    }

    /// Flipping a byte inside one frame's CRC or payload is caught by
    /// the checksum ([`Frame::Corrupt`]), never panics the decoder, and
    /// never desyncs the next frame.
    #[test]
    fn corrupt_payload_bytes_do_not_desync_the_stream(
        (op, id, size) in (0u8..6, 0u64..1_000_000, 0usize..2048),
        flip_seed in 0usize..10_000,
        flip_mask in 1u8..255
    ) {
        let victim = build_request(op, id, size);
        let mut victim_frame = encode_request(id, &victim).expect("encode");
        let tail_len = victim_frame.len() - LEN_PREFIX;
        // Corrupt the CRC or the payload, sparing the length prefix
        // (framing relies on it; a corrupt prefix is the fatal case
        // covered separately below).
        let at = LEN_PREFIX + flip_seed % tail_len;
        victim_frame[at] ^= flip_mask;
        let follower = Request::Get { key: Key::from_id(42) };
        let mut stream = victim_frame;
        stream.extend(encode_request(id + 1, &follower).expect("encode"));

        let mut decoder = FrameDecoder::new();
        decoder.push(&stream);
        // Frame 1: the checksum must catch the flip.
        let first = decoder.next_frame().expect("framing intact").expect("frame 1");
        prop_assert!(matches!(first, Frame::Corrupt { .. }));
        prop_assert_eq!(decoder.corrupt_frames(), 1);
        // Frame 2 must be byte-exact regardless.
        let second = decoder.next_frame().expect("framing intact").expect("frame 2");
        let (follower_id, follower_got) =
            decode_request(&intact(second)).expect("follower intact");
        prop_assert_eq!(follower_id, id + 1);
        prop_assert_eq!(follower_got, follower);
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    /// An oversized length prefix is detected immediately, poisons the
    /// decoder, and never causes an allocation of the claimed size.
    #[test]
    fn oversized_length_prefixes_poison_cleanly(
        excess in 1u32..1_000_000,
        junk in prop::collection::vec(0u8..255, 0..64)
    ) {
        let mut decoder = FrameDecoder::new();
        decoder.push(&(MAX_FRAME as u32 + excess).to_le_bytes());
        // The decoder waits for the full header (length + CRC) before
        // judging the length, so give it a CRC's worth of bytes too.
        decoder.push(&[0u8; CRC_PREFIX]);
        decoder.push(&junk);
        prop_assert!(decoder.next_frame().is_err());
        // Still poisoned after more (sound) bytes arrive.
        decoder.push(&encode_request(1, &Request::Ping).expect("encode"));
        prop_assert!(decoder.next_frame().is_err());
    }

    /// Arbitrary garbage payloads never panic the request decoder.
    #[test]
    fn garbage_payloads_never_panic(
        garbage in prop::collection::vec(0u8..255, 0..400)
    ) {
        let _ = decode_request(&garbage);
        let _ = decode_response(&garbage);
    }
}
