//! Admin-plane smoke battery: the four observability endpoints served
//! over both transports while a real workload (with storage fault
//! injection) runs underneath, plus the cross-layer metric invariants
//! the CI `obs-smoke` job gates on:
//!
//! - e2e histogram count == completed front-end ops,
//! - queue-wait p99 ≤ end-to-end p99 (and mean queue-wait + mean
//!   service ≤ mean e2e) per op class,
//! - the admin responder never answers 5xx,
//! - the trace ring holds at least one compaction install event.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prism_db::{
    FaultMode, FaultOp, FaultPlan, FaultTier, Options, PartitionHealth, PrismDb, TargetedFault,
};
use prism_net::admin::{http_get, AdminClient, AdminServer};
use prism_net::client::NetClient;
use prism_net::server::{NetServer, ServerOptions};
use prism_net::transport::{duplex_listener, tcp_connect, Listener, TcpServerListener};
use prism_obs::trace::category;
use prism_obs::{MetricsSnapshot, ObsHub};
use prism_types::{Key, PrismError, Value, WriteBatch};

/// Engine options that force background compaction quickly: a tight NVM
/// budget under 1 KB values, one worker, and a hair-trigger quarantine
/// threshold for the corruption leg.
fn pressured_options(hub: &Arc<ObsHub>, plan: &Arc<FaultPlan>) -> Options {
    let mut options = Options::scaled_default(2_000);
    options.num_partitions = 2;
    options.compaction_workers = 1;
    options.nvm_capacity_bytes = 256 * 1024;
    options.nvm_profile.capacity_bytes = 256 * 1024;
    options.high_watermark = 0.6;
    options.low_watermark = 0.5;
    options.backpressure_ceiling = 0.85;
    options.corruption_quarantine_threshold = 1;
    options.fault_plan = Some(Arc::clone(plan));
    options.obs = Some(Arc::clone(hub));
    options
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Assert the per-class latency decomposition invariants on a snapshot:
/// queue-wait p99 ≤ e2e p99, and mean queue-wait + mean service ≤ mean
/// e2e (+1 ns of slop for the three separate clock reads per stage).
fn assert_stage_decomposition(snapshot: &MetricsSnapshot) -> u64 {
    let mut total_e2e = 0;
    for class in ["get", "put", "batch", "scan"] {
        let qw = snapshot.histogram(&format!("frontend_queue_wait_{class}_ns"));
        let svc = snapshot.histogram(&format!("frontend_service_{class}_ns"));
        let e2e = snapshot.histogram(&format!("frontend_e2e_{class}_ns"));
        let (Some(qw), Some(svc), Some(e2e)) = (qw, svc, e2e) else {
            continue;
        };
        if e2e.is_empty() {
            continue;
        }
        assert_eq!(
            qw.count(),
            e2e.count(),
            "{class}: every completed op records both queue-wait and e2e"
        );
        assert!(
            qw.percentile(0.99) <= e2e.percentile(0.99),
            "{class}: queue-wait p99 ({}) must not exceed e2e p99 ({})",
            qw.percentile(0.99),
            e2e.percentile(0.99),
        );
        assert!(
            qw.mean() + svc.mean() <= e2e.mean() + 1.0,
            "{class}: mean queue-wait ({}) + mean service ({}) must fit in mean e2e ({})",
            qw.mean(),
            svc.mean(),
            e2e.mean(),
        );
        total_e2e += e2e.count();
    }
    total_e2e
}

/// The duplex-transport smoke test the CI `obs-smoke` job runs: a
/// fault-injected workload with background compaction underneath, all
/// four endpoints scraped concurrently over the in-process pipe, and
/// the metric invariants checked on the quiesced snapshot.
#[test]
fn obs_smoke_duplex_scrapes_live_fault_injected_workload() {
    let hub = Arc::new(ObsHub::default());
    let plan = Arc::new(FaultPlan::new(7));
    let engine = Arc::new(PrismDb::open(pressured_options(&hub, &plan)).expect("valid options"));
    let (listener, connector) = duplex_listener();
    let server = NetServer::start_with_obs(
        Arc::clone(&engine),
        Arc::new(listener),
        ServerOptions::default(),
        Some(Arc::clone(&hub)),
    )
    .expect("server");
    let (admin_listener, admin_connector) = duplex_listener();
    let mut admin = AdminServer::start(Arc::clone(&hub), Arc::new(admin_listener));

    // Concurrent scraper: hammer all four endpoints during the whole
    // workload; any 5xx (or dropped scrape) fails the test.
    let scraping = Arc::new(AtomicBool::new(true));
    let scraper = {
        let scraping = Arc::clone(&scraping);
        let connector = admin_connector.clone();
        std::thread::spawn(move || {
            let mut client = AdminClient::new(connector.connect().expect("admin dial"));
            let mut scrapes = 0u64;
            while scraping.load(Ordering::Acquire) {
                for path in ["/metrics", "/stats.json", "/health", "/trace?last=64"] {
                    let response = client.get(path).expect("scrape mid-workload");
                    assert!(
                        response.status < 500,
                        "admin plane answered {} for {path}",
                        response.status
                    );
                    assert_eq!(response.status, 200, "{path} must resolve");
                    scrapes += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            scrapes
        })
    };

    // The workload: enough write volume to trip the NVM watermark (and
    // the background demotion pipeline), plus reads, scans and batches
    // so every op class records.
    let mut client = NetClient::new(connector.connect().expect("dial"));
    for id in 0..400u64 {
        client
            .put(Key::from_id(id), Value::filled(800, id as u8))
            .expect("put");
    }
    for id in (0..400u64).step_by(3) {
        client.get(Key::from_id(id)).expect("get");
    }
    for start in (0..400u64).step_by(80) {
        client.scan(Key::from_id(start), 40).expect("scan");
    }
    for round in 0..8u64 {
        let mut batch = WriteBatch::new();
        for i in 0..20u64 {
            batch.put(Key::from_id(1_000 + round * 20 + i), Value::filled(64, 1));
        }
        client.batch(batch).expect("batch");
    }

    // The fault-injection leg: one bit flip on the next NVM write, read
    // it back (wire-level Corruption), watch the partition degrade, and
    // let a scrub pass re-arm it. The admin scraper keeps running
    // through all of it.
    plan.arm(TargetedFault {
        tier: FaultTier::Nvm,
        partition: Some(0),
        op: FaultOp::Write,
        mode: FaultMode::BitFlip,
    });
    client.max_retries = 2;
    client.retry_backoff = Duration::from_micros(10);
    let mut corrupt_key = None;
    for id in 5_000..5_064u64 {
        client
            .put(Key::from_id(id), Value::filled(256, 9))
            .expect("the corrupting put itself succeeds");
        match client.get(Key::from_id(id)) {
            Ok(_) => continue,
            Err(PrismError::Corruption(_)) => {
                corrupt_key = Some(id);
                break;
            }
            Err(err) => panic!("unexpected wire error {err}"),
        }
    }
    let corrupt_key = corrupt_key.expect("an armed bit flip must corrupt one of the writes");
    let degraded_partition =
        prism_types::ConcurrentKvStore::shard_of(engine.as_ref(), &Key::from_id(corrupt_key))
            as u32;
    // The degraded flip is recorded synchronously by the quarantining
    // read, so the trace is the race-free witness; the health state
    // itself may already be re-armed — the quarantining read enqueues a
    // scrub that can repair from the clean DRAM copy at any moment —
    // but only with the re-arm on the trace record too.
    assert!(
        hub.trace
            .in_category(category::DEGRADED)
            .iter()
            .any(|e| e.partition == Some(degraded_partition)),
        "the quarantine threshold crossing must be traced"
    );
    if engine.partition_health(degraded_partition as usize) != PartitionHealth::Degraded {
        // The health flip precedes the trace write by a hair, so give
        // the worker a bounded moment to put the re-arm on the record.
        wait_until("the auto-scrub re-arm to be traced", || {
            hub.trace
                .in_category(category::REARM)
                .iter()
                .any(|e| e.partition == Some(degraded_partition))
        });
    }
    // Health keeps answering 200 while degraded (or healed); the body
    // carries the state, never a 5xx.
    {
        let mut probe = AdminClient::new(admin_connector.connect().expect("admin dial"));
        let health = probe.get("/health").expect("health scrape");
        assert_eq!(health.status, 200, "degradation is data, not a 5xx");
        assert!(
            health.body.contains("\"healthy\":false") || health.body.contains("\"healthy\":true"),
            "the health body must carry the rollup"
        );
    }
    engine.scrub();
    assert_eq!(
        engine.partition_health(degraded_partition as usize),
        PartitionHealth::Healthy
    );

    // Quiesce, stop the scraper, and check the cross-layer invariants.
    wait_until("the front-end to drain", || {
        let stats = server.frontend_stats();
        stats.submitted == stats.completed && server.outstanding_tickets() == 0
    });
    scraping.store(false, Ordering::Release);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes >= 4, "the scraper must have covered all endpoints");

    let snapshot = hub.registry.snapshot();

    // Gate 1: per-class stage decomposition, and the histogram count
    // matches the front-end's completed-op counter exactly.
    let e2e_count = assert_stage_decomposition(&snapshot);
    let frontend = snapshot.frontend.as_ref().expect("frontend source");
    assert_eq!(
        e2e_count, frontend.completed,
        "every completed op must land in exactly one e2e histogram"
    );
    assert!(frontend.completed > 0);

    // Gate 2: the trace ring saw the compaction pipeline end to end,
    // the health flips, and the connection lifecycle.
    assert!(
        !hub.trace
            .in_category(category::COMPACTION_INSTALL)
            .is_empty(),
        "the pressured workload must install at least one compaction"
    );
    assert!(!hub.trace.in_category(category::COMPACTION_PLAN).is_empty());
    assert!(!hub.trace.in_category(category::QUARANTINE).is_empty());
    assert!(!hub.trace.in_category(category::DEGRADED).is_empty());
    assert!(!hub.trace.in_category(category::REARM).is_empty());
    assert!(!hub.trace.in_category(category::SCRUB_PASS).is_empty());
    assert!(!hub.trace.in_category(category::CONN_OPEN).is_empty());

    // Gate 3: the typed views all flow through one snapshot — engine
    // tier reads, net frame counters, health rollup.
    assert!(snapshot.counter("engine_reads_from_nvm").unwrap_or(0) > 0);
    assert!(snapshot.counter("net_frames_received").unwrap_or(0) > 0);
    assert!(snapshot.health.as_ref().expect("health source").healthy());
    let engine_stats = snapshot.engine.as_ref().expect("engine source");
    assert!(engine_stats.compaction.jobs > 0);
    assert_eq!(
        snapshot
            .histogram("engine_compaction_job_ns")
            .expect("compaction histogram")
            .count(),
        engine_stats.compaction.jobs,
        "every installed compaction job must be recorded once"
    );

    // Gate 4: the final scrape reflects the drained state.
    let mut probe = AdminClient::new(admin_connector.connect().expect("admin dial"));
    let metrics = probe.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("frontend_e2e_put_ns_bucket"));
    assert!(metrics.body.contains("engine_reads_from_nvm"));
    let stats_json = probe.get("/stats.json").expect("stats.json");
    assert!(stats_json.body.contains("\"frontend_completed\":"));
    let trace = probe.get("/trace?last=4096").expect("trace");
    assert!(trace.body.contains("\"category\":\"compaction_install\""));

    admin.shutdown();
    drop(server);
}

/// The same admin surface over real TCP: every endpoint resolves with a
/// one-shot scrape while the wire workload runs on a second TCP port.
#[test]
fn admin_plane_serves_all_four_endpoints_over_tcp() {
    let Ok(data_listener) = TcpServerListener::bind("127.0.0.1:0") else {
        eprintln!("skipping: cannot bind loopback");
        return;
    };
    let Ok(admin_listener) = TcpServerListener::bind("127.0.0.1:0") else {
        eprintln!("skipping: cannot bind loopback");
        return;
    };
    let hub = Arc::new(ObsHub::default());
    let mut options = Options::scaled_default(2_000);
    options.num_partitions = 2;
    options.obs = Some(Arc::clone(&hub));
    let engine = Arc::new(PrismDb::open(options).expect("valid options"));
    let data_addr = data_listener.local_addr();
    let admin_addr = admin_listener.local_addr();
    let server = NetServer::start_with_obs(
        engine,
        Arc::new(data_listener),
        ServerOptions::default(),
        Some(Arc::clone(&hub)),
    )
    .expect("server");
    let mut admin = AdminServer::start(hub, Arc::new(admin_listener));

    let mut client = NetClient::new(tcp_connect(&data_addr).expect("dial"));
    for id in 0..50u64 {
        client
            .put(Key::from_id(id), Value::filled(128, id as u8))
            .expect("put");
        client.get(Key::from_id(id)).expect("get");
    }

    let metrics = http_get(tcp_connect(&admin_addr).expect("dial"), "/metrics").expect("scrape");
    assert_eq!(metrics.status, 200);
    assert!(metrics.content_type.starts_with("text/plain"));
    assert!(metrics.body.contains("frontend_e2e_put_ns_bucket"));
    assert!(metrics.body.contains("net_frames_received"));

    let stats = http_get(tcp_connect(&admin_addr).expect("dial"), "/stats.json").expect("scrape");
    assert_eq!(stats.status, 200);
    assert_eq!(stats.content_type, "application/json");
    assert!(stats.body.contains("\"histograms\""));

    let health = http_get(tcp_connect(&admin_addr).expect("dial"), "/health").expect("scrape");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"healthy\":true"));
    assert!(health.body.contains("\"partitions\":2"));

    let trace =
        http_get(tcp_connect(&admin_addr).expect("dial"), "/trace?last=100").expect("scrape");
    assert_eq!(trace.status, 200);
    assert!(trace.body.contains("\"category\":\"conn_open\""));

    // Error statuses are still not 5xx, and keep-alive works over TCP.
    let mut probe = AdminClient::new(tcp_connect(&admin_addr).expect("dial"));
    assert_eq!(probe.get("/nope").expect("404").status, 404);
    assert_eq!(probe.get("/trace?last=x").expect("400").status, 400);
    assert_eq!(probe.get("/metrics").expect("reuse").status, 200);

    let snapshot_completed = {
        let stats = server.frontend_stats();
        stats.completed
    };
    assert!(snapshot_completed >= 100, "puts and gets all completed");
    admin.shutdown();
    drop(server);
}
