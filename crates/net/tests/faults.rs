//! Connection fault-injection battery: vanished clients, corrupt
//! frames, back-pressure storms and graceful shutdown, all driven over
//! the deterministic in-process duplex transport against a real PrismDB
//! engine.
//!
//! The invariant under attack is always the same: whatever a client
//! does, the server strands nothing — no outstanding tickets, no leaked
//! snapshot pins — and keeps serving everyone else.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use prism_db::{
    FaultMode, FaultOp, FaultPlan, FaultTier, Options, PartitionHealth, PrismDb, TargetedFault,
};
use prism_frontend::FrontendOptions;
use prism_net::client::NetClient;
use prism_net::protocol::{encode_request, Request, Status};
use prism_net::server::{NetServer, ServerOptions};
use prism_net::transport::{duplex_listener, DuplexConnector};
use prism_types::checksum::crc32;
use prism_types::{Key, PrismError, Value, WriteBatch};

fn test_server(keys: u64, options: ServerOptions) -> (NetServer<PrismDb>, DuplexConnector) {
    let mut engine_options = Options::scaled_default(keys);
    engine_options.num_partitions = 4;
    let engine = Arc::new(PrismDb::open(engine_options).expect("valid options"));
    let (listener, connector) = duplex_listener();
    let server =
        NetServer::start(engine, Arc::new(listener), options).expect("valid server options");
    (server, connector)
}

fn client(connector: &DuplexConnector) -> NetClient {
    NetClient::new(connector.connect().expect("dial"))
}

/// Spin until `cond` holds (the server's drains are asynchronous), with
/// a hard timeout so a regression fails instead of hanging CI.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn disconnect_mid_frame_strands_nothing_and_serving_continues() {
    let (server, connector) = test_server(4_000, ServerOptions::default());

    // Client A dies mid-frame: a length prefix promising 64 payload bytes
    // followed by only 10 of them.
    let mut half_open = connector.connect().expect("dial");
    half_open
        .writer
        .write_all(&64u32.to_le_bytes())
        .expect("prefix");
    half_open
        .writer
        .write_all(&[0xAB; 10])
        .expect("partial payload");
    drop(half_open);

    // The half-frame never becomes a request, so nothing dangles.
    wait_until("the half-open connection to close", || {
        server.stats().connections_closed == 1
    });
    assert_eq!(server.outstanding_tickets(), 0);
    assert_eq!(server.stats().in_flight, 0);
    assert_eq!(server.stats().frames_received, 0);

    // Client B is unaffected.
    let mut healthy = client(&connector);
    healthy
        .put(Key::from_id(1), Value::filled(64, 7))
        .expect("put");
    assert_eq!(
        healthy
            .get(Key::from_id(1))
            .expect("get")
            .expect("present")
            .as_bytes()[0],
        7
    );
    assert_eq!(server.stats().connections_accepted, 2);
}

#[test]
fn disconnect_with_requests_in_flight_leaks_no_tickets_or_pins() {
    let (server, connector) = test_server(8_000, ServerOptions::default());

    // Seed data so scans have something to pin a snapshot over.
    let mut seeder = client(&connector);
    for id in 0..300u64 {
        seeder
            .put(Key::from_id(id), Value::filled(48, id as u8))
            .expect("seed put");
    }

    // The victim pipelines a burst of writes, scans (which pin engine
    // snapshots while executing) and a batch — then vanishes without
    // reading a single response.
    let mut victim = client(&connector);
    for id in 0..64u64 {
        victim
            .send(&Request::Put {
                key: Key::from_id(1_000 + id),
                value: Value::filled(32, id as u8),
            })
            .expect("send put");
        if id % 4 == 0 {
            victim
                .send(&Request::Scan {
                    start: Key::from_id(id),
                    count: 100,
                })
                .expect("send scan");
        }
    }
    let mut batch = WriteBatch::new();
    for id in 0..32u64 {
        batch.put(Key::from_id(2_000 + id), Value::filled(16, id as u8));
    }
    victim.send(&Request::Batch { batch }).expect("send batch");
    drop(victim); // mid-batch, mid-everything: both pipes tear down

    wait_until("the victim's requests to finish server-side", || {
        server.outstanding_tickets() == 0 && server.stats().in_flight == 0
    });
    // Scans release their snapshot pins even though nobody read the
    // results.
    assert_eq!(server.engine().active_snapshots(), 0);

    // Accepted writes were not torn down with the connection: once
    // submitted they execute — and a fresh connection sees them.
    let mut survivor = client(&connector);
    let frontend = server.frontend_stats();
    assert_eq!(frontend.submitted, frontend.completed);
    assert!(
        survivor.get(Key::from_id(1_000)).expect("get").is_some(),
        "a submitted-before-disconnect write must still execute"
    );
}

#[test]
fn corrupt_frames_get_protocol_errors_without_killing_the_connection() {
    let (server, connector) = test_server(2_000, ServerOptions::default());
    let mut conn = connector.connect().expect("dial");

    // A sound frame whose payload is garbage: id 9999, bogus opcode 200.
    let mut garbage_payload = 9_999u64.to_le_bytes().to_vec();
    garbage_payload.push(200);
    garbage_payload.extend_from_slice(&[1, 2, 3]);
    let mut frame = (garbage_payload.len() as u32).to_le_bytes().to_vec();
    frame.extend(crc32(&garbage_payload).to_le_bytes());
    frame.extend(&garbage_payload);
    conn.writer.write_all(&frame).expect("garbage frame");

    let mut client = NetClient::new(conn);
    // The protocol error comes back routed by the peeked id...
    let response = client.wait(9_999).expect("protocol error response");
    assert_eq!(response.status, Status::ProtocolError);
    // ...and the connection still works for well-formed requests.
    client
        .put(Key::from_id(5), Value::filled(8, 1))
        .expect("put after garbage");
    assert_eq!(server.stats().protocol_errors, 1);
    assert_eq!(server.stats().connections_closed, 0);
}

#[test]
fn checksum_failed_frames_are_refused_and_the_connection_survives() {
    let (server, connector) = test_server(2_000, ServerOptions::default());
    let mut conn = connector.connect().expect("dial");

    // A well-formed PUT whose payload is damaged *after* the CRC was
    // computed — the wire-corruption case the frame checksum exists for.
    let id = 77u64;
    let mut frame = encode_request(
        id,
        &Request::Put {
            key: Key::from_id(3),
            value: Value::filled(16, 3),
        },
    )
    .expect("encode");
    let last = frame.len() - 1;
    frame[last] ^= 0x40; // single bit flip in the payload
    conn.writer.write_all(&frame).expect("corrupt frame");

    let mut client = NetClient::new(conn);
    // The server detects the flip, refuses exactly that id, and keeps
    // the connection; the flipped value must never have been applied.
    let response = client.wait(id).expect("checksum refusal");
    assert_eq!(response.status, Status::ProtocolError);
    assert!(
        response.message.contains("checksum"),
        "refusal must say why: {}",
        response.message
    );
    assert_eq!(client.get(Key::from_id(3)).expect("get"), None);
    client
        .put(Key::from_id(3), Value::filled(16, 3))
        .expect("put after corruption");
    assert_eq!(server.stats().protocol_errors, 1);
    assert_eq!(server.stats().connections_closed, 0);
}

#[test]
fn oversized_scans_stream_as_continuation_frames_and_reassemble() {
    // ~2 000 entries x 1 KiB is several times the 1 MiB frame bound, so
    // the server must stream the scan as continuation frames instead of
    // refusing it; the client hands back one seamless result.
    const KEYS: u64 = 2_000;
    let (server, connector) = test_server(KEYS, ServerOptions::default());
    let mut client = client(&connector);
    for id in 0..KEYS {
        client
            .put(Key::from_id(id), Value::filled(1_024, id as u8))
            .expect("load");
    }

    let entries = client
        .scan(Key::from_id(0), KEYS as u32)
        .expect("oversized scan");
    assert_eq!(entries.len(), KEYS as usize, "no entry may be dropped");
    for (i, (key, value)) in entries.iter().enumerate() {
        assert_eq!(key.id(), i as u64, "scan order must survive streaming");
        assert_eq!(value.len(), 1_024);
        assert_eq!(value.as_bytes()[0], i as u8);
    }
    // The wire really did split it: more response frames than requests.
    let stats = server.stats();
    assert!(
        stats.frames_sent > stats.frames_received,
        "a streamed scan must emit continuation frames ({} sent vs {} received)",
        stats.frames_sent,
        stats.frames_received
    );
    assert_eq!(stats.connections_closed, 0);
}

#[test]
fn backpressure_storm_returns_retryable_rejections_that_eventually_land() {
    // A queue depth of 1 makes rejections near-certain under a pipelined
    // burst; the client's transparent retry must still land every write.
    let options = ServerOptions {
        frontend: FrontendOptions {
            executors: 1,
            queue_capacity: 1,
            ..FrontendOptions::default()
        },
        max_in_flight_per_conn: 256,
    };
    let (server, connector) = test_server(4_000, options);
    let mut storm = client(&connector);

    const OPS: u64 = 400;
    let mut ids = Vec::new();
    for id in 0..OPS {
        ids.push(
            storm
                .send(&Request::Put {
                    key: Key::from_id(id),
                    value: Value::filled(24, id as u8),
                })
                .expect("send"),
        );
    }
    for id in ids {
        let response = storm.wait(id).expect("response");
        assert_eq!(
            response.status,
            Status::Ok,
            "retries must eventually land every write: {}",
            response.message
        );
    }
    assert!(
        storm.backpressure_seen > 0,
        "a depth-1 queue under a 400-op burst must reject at least once"
    );
    assert_eq!(
        server.stats().backpressure_rejections,
        storm.backpressure_seen
    );
    // Every op landed exactly once despite the rejections.
    for id in (0..OPS).step_by(37) {
        assert_eq!(
            storm
                .get(Key::from_id(id))
                .expect("get")
                .expect("landed")
                .as_bytes()[0],
            id as u8
        );
    }
}

#[test]
fn tiny_in_flight_window_throttles_without_losing_requests() {
    let options = ServerOptions {
        max_in_flight_per_conn: 2,
        ..ServerOptions::default()
    };
    let (server, connector) = test_server(4_000, options);
    let mut pipeliner = client(&connector);
    let ids: Vec<u64> = (0..200u64)
        .map(|id| {
            pipeliner
                .send(&Request::Put {
                    key: Key::from_id(id),
                    value: Value::filled(16, id as u8),
                })
                .expect("send")
        })
        .collect();
    for id in ids {
        assert_eq!(pipeliner.wait(id).expect("response").status, Status::Ok);
    }
    // The counters are bumped after the response bytes hit the wire, so
    // the last increment can trail the client's read by an instant.
    wait_until("the sent-frames counter to catch up", || {
        server.stats().frames_sent == 200
    });
    let stats = server.stats();
    assert_eq!(stats.frames_received, 200);
    assert!(stats.max_in_flight >= 1);
    // The reader admits a request only while fewer than two are pending;
    // transiently the gauge can exceed the window by the batch being
    // written out, but never by much.
    assert!(
        stats.max_in_flight <= 8,
        "window 2 must bound in-flight, saw {}",
        stats.max_in_flight
    );
}

#[test]
fn graceful_shutdown_acks_in_flight_and_refuses_stragglers() {
    let (mut server, connector) = test_server(4_000, ServerOptions::default());
    let mut submitter = client(&connector);
    let ids: Vec<u64> = (0..80u64)
        .map(|id| {
            submitter
                .send(&Request::Put {
                    key: Key::from_id(id),
                    value: Value::filled(32, id as u8),
                })
                .expect("send")
        })
        .collect();
    // Let the server ingest the whole pipeline before draining, so every
    // request is genuinely in flight when shutdown begins.
    wait_until("the server to ingest all frames", || {
        server.stats().frames_received == 80
    });
    server.shutdown();

    // Everything submitted before the drain is answered: acked, or — if
    // it raced the queue teardown — refused with ShuttingDown. Nothing
    // hangs, nothing is dropped silently.
    let mut acked = 0;
    let mut refused = 0;
    for id in ids {
        match submitter.wait(id) {
            Ok(response) if response.status == Status::Ok => acked += 1,
            Ok(response) if response.status == Status::ShuttingDown => refused += 1,
            Ok(response) => panic!("unexpected status {:?}", response.status),
            // The connection may EOF after the last queued response.
            Err(PrismError::Disconnected) => break,
            Err(err) => panic!("unexpected error {err}"),
        }
    }
    assert!(acked > 0, "a graceful drain must ack in-flight requests");
    assert_eq!(server.outstanding_tickets(), 0);
    assert_eq!(server.stats().in_flight, 0);
    let frontend = server.frontend_stats();
    assert_eq!(frontend.submitted, frontend.completed);
    assert_eq!(frontend.outstanding_tickets, 0);

    // New traffic after shutdown cannot land.
    match submitter.put(Key::from_id(999), Value::filled(8, 1)) {
        Err(PrismError::Disconnected) | Err(PrismError::ShuttingDown) => {}
        other => panic!("writes after shutdown must fail, got {other:?}"),
    }
    let _ = (acked, refused);
}

#[test]
fn server_kill_mid_pipeline_reconnects_replays_and_converges() {
    let mut engine_options = Options::scaled_default(8_000);
    engine_options.num_partitions = 4;
    let engine = Arc::new(PrismDb::open(engine_options).expect("valid options"));
    let (listener, connector) = duplex_listener();
    let mut first = NetServer::start(
        Arc::clone(&engine),
        Arc::new(listener),
        ServerOptions::default(),
    )
    .expect("first server");

    // The dialer reads the *current* connector from a shared slot, so a
    // replacement server on a fresh listener becomes reachable the
    // moment the slot is swapped.
    let current = Arc::new(Mutex::new(connector));
    let dial_slot = Arc::clone(&current);
    let mut client = NetClient::with_dialer(Box::new(move || {
        dial_slot.lock().expect("connector slot").connect()
    }))
    .expect("initial dial");

    // Pipeline a burst and kill the server with it in flight: some
    // frames are acked, some refused mid-drain, and the rest die unread
    // on the closing socket.
    const OPS: u64 = 200;
    let ids: Vec<u64> = (0..OPS)
        .map(|id| {
            client
                .send(&Request::Put {
                    key: Key::from_id(id),
                    value: Value::filled(32, id as u8),
                })
                .expect("send")
        })
        .collect();
    first.shutdown();

    // Bring a replacement up over the same engine and point the dialer
    // at it.
    let (listener, connector) = duplex_listener();
    *current.lock().expect("connector slot") = connector;
    let second = NetServer::start(
        Arc::clone(&engine),
        Arc::new(listener),
        ServerOptions::default(),
    )
    .expect("second server");

    // Draining heals the connection transparently: every id resolves —
    // acked by the first server, refused ShuttingDown mid-drain, or
    // replayed to the second and acked there. Nothing hangs, nothing is
    // silently lost.
    let mut refused = Vec::new();
    for (key_id, wire_id) in ids.iter().enumerate() {
        let response = client.wait(*wire_id).expect("pipeline must resolve");
        match response.status {
            Status::Ok => {}
            Status::ShuttingDown => refused.push(key_id as u64),
            other => panic!("unexpected status {other:?}: {}", response.message),
        }
    }
    for key_id in refused {
        client
            .put(Key::from_id(key_id), Value::filled(32, key_id as u8))
            .expect("re-put of a refused write");
    }

    // Every key converges on the shared engine, read back through
    // whatever connection the client is on now.
    for id in 0..OPS {
        let value = client
            .get(Key::from_id(id))
            .expect("get")
            .expect("key must have landed");
        assert_eq!(value.as_bytes()[0], id as u8);
    }
    assert!(
        client.reconnects >= 1,
        "killing the server mid-pipeline must force at least one reconnect"
    );
    assert_eq!(second.outstanding_tickets(), 0);
    let _ = second;
}

#[test]
fn reconnect_without_a_dialer_stays_a_hard_disconnect() {
    let (mut server, connector) = test_server(2_000, ServerOptions::default());
    let mut plain = client(&connector);
    plain
        .put(Key::from_id(1), Value::filled(8, 1))
        .expect("put");
    server.shutdown(); // takes the listener and every connection down
                       // The very first post-shutdown write may catch a ShuttingDown
                       // refusal off the draining server; after that the dead socket is a
                       // hard Disconnected — never a silent reconnect.
    let mut disconnected = false;
    for id in 2..10u64 {
        match plain.put(Key::from_id(id), Value::filled(8, id as u8)) {
            Err(PrismError::Disconnected) => {
                disconnected = true;
                break;
            }
            Err(PrismError::ShuttingDown) => continue,
            other => panic!("writes after shutdown must fail, got {other:?}"),
        }
    }
    assert!(
        disconnected,
        "a dialer-less client must surface Disconnected"
    );
    assert_eq!(plain.reconnects, 0);
}

#[test]
fn corruption_and_degraded_mode_map_onto_their_wire_statuses() {
    // One partition with a hair-trigger quarantine threshold, plus an
    // armed one-shot bit flip on the next NVM write.
    let plan = Arc::new(FaultPlan::new(42));
    let mut engine_options = Options::scaled_default(2_000);
    engine_options.num_partitions = 1;
    engine_options.corruption_quarantine_threshold = 1;
    engine_options.fault_plan = Some(Arc::clone(&plan));
    let engine = Arc::new(PrismDb::open(engine_options).expect("valid options"));
    let (listener, connector) = duplex_listener();
    let server = NetServer::start(
        Arc::clone(&engine),
        Arc::new(listener),
        ServerOptions::default(),
    )
    .expect("server");
    let mut client = client(&connector);
    // Degraded is retryable on the wire; keep the transparent retry
    // short so the refusal surfaces while the partition is still down.
    client.max_retries = 2;
    client.retry_backoff = Duration::from_micros(10);

    client
        .put(Key::from_id(1), Value::filled(64, 1))
        .expect("clean put");

    plan.arm(TargetedFault {
        tier: FaultTier::Nvm,
        partition: Some(0),
        op: FaultOp::Write,
        mode: FaultMode::BitFlip,
    });
    client
        .put(Key::from_id(2), Value::filled(64, 2))
        .expect("the corrupting put itself succeeds");

    // The read detects the flip: a terminal Corruption on the wire,
    // and — with threshold 1 — the partition flips to read-only.
    match client.get(Key::from_id(2)) {
        Err(PrismError::Corruption(message)) => {
            assert!(
                !message.is_empty(),
                "corruption context must survive the wire"
            );
        }
        other => panic!("a corrupt read must map to Corruption, got {other:?}"),
    }
    assert_eq!(engine.partition_health(0), PartitionHealth::Degraded);

    // Writes now refuse with the retryable Degraded status...
    match client.put(Key::from_id(3), Value::filled(64, 3)) {
        Err(PrismError::Degraded { .. }) => {}
        other => panic!("writes to a degraded partition must map to Degraded, got {other:?}"),
    }
    assert!(
        client.backpressure_seen >= 2,
        "Degraded must be retried transparently before surfacing"
    );
    // ...while reads of healthy keys keep being served.
    assert!(client
        .get(Key::from_id(1))
        .expect("degraded read")
        .is_some());

    // A clean scrub pass re-arms the partition and writes land again —
    // including a rewrite of the quarantined key, which heals it.
    engine.scrub();
    assert_eq!(engine.partition_health(0), PartitionHealth::Healthy);
    client
        .put(Key::from_id(3), Value::filled(64, 3))
        .expect("put after scrub re-arm");
    client
        .put(Key::from_id(2), Value::filled(64, 9))
        .expect("rewrite of the quarantined key");
    let healed = client.get(Key::from_id(2)).expect("healed get");
    assert_eq!(healed.expect("present").as_bytes()[0], 9);
    assert!(plan.injected_corruptions() >= 1);
    let _ = server;
}

#[test]
fn many_connections_interleave_and_drain_clean() {
    let (mut server, connector) = test_server(16_000, ServerOptions::default());
    let mut handles = Vec::new();
    for conn_id in 0..6u64 {
        let connector = connector.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = NetClient::new(connector.connect().expect("dial"));
            let base = conn_id * 1_000;
            for id in 0..150u64 {
                client
                    .put(Key::from_id(base + id), Value::filled(40, conn_id as u8))
                    .expect("put");
            }
            for id in (0..150u64).step_by(11) {
                let value = client.get(Key::from_id(base + id)).expect("get");
                assert_eq!(value.expect("present").as_bytes()[0], conn_id as u8);
            }
            let entries = client.scan(Key::from_id(base), 50).expect("scan");
            assert!(!entries.is_empty());
            client.ping().expect("ping");
        }));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }
    let stats = server.stats();
    assert_eq!(stats.connections_accepted, 6);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
    assert_eq!(server.outstanding_tickets(), 0);
    assert_eq!(server.engine().active_snapshots(), 0);
    let stats = server.stats();
    assert_eq!(stats.connections_closed, 6);
    assert_eq!(stats.frames_received, stats.frames_sent);
}
