//! Network serving layer for the PrismDB reproduction.
//!
//! This crate puts a wire in front of the [`prism_frontend`] submission
//! layer: a length-prefixed binary protocol ([`protocol`]) carried over
//! either real TCP or a deterministic in-process duplex pipe
//! ([`transport`]), a multiplexing server that maps each decoded request
//! onto the front-end's `try_submit_*` queues and streams completions
//! back out of order ([`server`]), a pipelining client with
//! transparent back-pressure retry ([`client`]), and an HTTP/JSON admin
//! plane serving metrics, health, and trace dumps over the same
//! transports ([`admin`]).
//!
//! The contract, end to end:
//!
//! - **Framing.** Every frame is a `u32` length prefix plus payload. A
//!   malformed payload costs exactly one request (answered with
//!   [`Status::ProtocolError`]); only a corrupt length prefix kills the
//!   connection, because the stream cannot be re-synchronised.
//! - **Back-pressure.** A full submission queue is a *response*, not a
//!   stall: the server answers [`Status::Backpressure`] and the client
//!   may resend. Per-connection flow control caps how many unanswered
//!   requests one connection may pipeline.
//! - **Shutdown.** Draining acks everything already submitted and
//!   refuses everything else with [`Status::ShuttingDown`]; no ticket is
//!   ever stranded (observable via
//!   [`server::NetServer::outstanding_tickets`]).
//! - **Integrity.** Engine-side corruption surfaces as its own pair of
//!   statuses: [`Status::Corruption`] is terminal for the request
//!   (resending cannot make the data whole), while [`Status::Degraded`]
//!   — a partition in read-only quarantine — is retryable, because a
//!   background scrub pass re-arms the partition.
//! - **Reconnect.** A client built with [`client::NetClient::with_dialer`]
//!   survives connection loss: it re-dials with capped exponential
//!   backoff and replays exactly the unacknowledged frames, giving
//!   at-least-once semantics over the protocol's idempotent operations.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use prism_net::client::NetClient;
//! use prism_net::server::{NetServer, ServerOptions};
//! use prism_net::transport::duplex_listener;
//! use prism_types::{Key, MemStore, MutexKv, Value};
//!
//! let engine = Arc::new(MutexKv::new(MemStore::default()));
//! let (listener, connector) = duplex_listener();
//! let mut server =
//!     NetServer::start(engine, Arc::new(listener), ServerOptions::default()).unwrap();
//! let mut client = NetClient::new(connector.connect().unwrap());
//! client.put(Key::from_id(7), Value::filled(16, 0xAB)).unwrap();
//! let value = client.get(Key::from_id(7)).unwrap().unwrap();
//! assert_eq!(value.len(), 16);
//! server.shutdown();
//! ```
//!
//! [`Status::ProtocolError`]: protocol::Status::ProtocolError
//! [`Status::Backpressure`]: protocol::Status::Backpressure
//! [`Status::ShuttingDown`]: protocol::Status::ShuttingDown
//! [`Status::Corruption`]: protocol::Status::Corruption
//! [`Status::Degraded`]: protocol::Status::Degraded

pub mod admin;
pub mod client;
pub mod protocol;
pub mod server;
pub mod transport;

pub use admin::{http_get, AdminClient, AdminServer, HttpResponse};
pub use client::{Dialer, NetClient};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, latency_class, FrameDecoder,
    Request, Response, ResponseBody, Status, MAX_FRAME,
};
pub use server::{NetServer, ServerOptions};
pub use transport::{
    duplex_listener, duplex_pair, tcp_connect, Conn, DuplexConnector, DuplexListener, Listener,
    TcpServerListener,
};
