//! A pipelining wire client.
//!
//! [`NetClient`] assigns request ids, keeps every unanswered request
//! encoded for retransmission, and matches responses back by id in
//! whatever order the server delivers them. Retryable refusals
//! ([`Status::Backpressure`], [`Status::Degraded`]) are resent
//! transparently with a small backoff, so a caller using the blocking
//! conveniences only ever sees requests that landed or failed for real.
//!
//! A client built with [`NetClient::with_dialer`] additionally survives
//! connection loss: on a failed read or write it re-dials with capped
//! exponential backoff and replays exactly the unacknowledged frames
//! (everything sent but not yet answered), in original send order. The
//! semantics are at-least-once — a request whose response was in flight
//! when the connection died is re-executed on the new connection, which
//! is safe for this protocol's idempotent operations (last-writer-wins
//! puts/deletes/batches, pure reads).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::time::Duration;

use prism_types::{Key, Nanos, PrismError, Result, Value, WriteBatch};

use crate::protocol::{
    decode_response, encode_request, Frame, FrameDecoder, Request, Response, ResponseBody, Status,
};
use crate::transport::Conn;

struct Pending {
    /// The encoded frame, kept for back-pressure retransmission and
    /// replay after a reconnect.
    frame: Vec<u8>,
    retries: u32,
}

/// Re-dials the server after a connection loss. Called once per
/// reconnect attempt; each call must produce a fresh connection.
pub type Dialer = Box<dyn FnMut() -> std::io::Result<Conn> + Send>;

/// A client connection speaking the wire protocol. Single-threaded by
/// design: one client pipelines many requests on one connection; drive
/// several clients from several threads for connection-level parallelism.
pub struct NetClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    decoder: FrameDecoder,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    /// Responses received while waiting for a different id.
    received: HashMap<u64, Response>,
    /// Re-dials the server on connection loss; `None` means a lost
    /// connection is terminal ([`PrismError::Disconnected`]).
    dialer: Option<Dialer>,
    /// Most transparent resends of one request before its back-pressure
    /// refusal is surfaced to the caller.
    pub max_retries: u32,
    /// Nap between a back-pressure refusal and the resend.
    pub retry_backoff: Duration,
    /// Most consecutive failed dial attempts before a connection loss is
    /// surfaced as [`PrismError::Disconnected`].
    pub max_reconnect_attempts: u32,
    /// Nap before the first reconnect attempt; doubles per failed
    /// attempt up to [`Self::reconnect_backoff_cap`].
    pub reconnect_backoff: Duration,
    /// Ceiling for the exponential reconnect backoff.
    pub reconnect_backoff_cap: Duration,
    /// Back-pressure refusals observed (including retried ones).
    pub backpressure_seen: u64,
    /// Successful reconnects performed (each replays the unacked frames).
    pub reconnects: u64,
    /// Response frames discarded because they failed the header CRC
    /// (each triggers a best-effort resend of the affected request).
    pub corrupt_frames_seen: u64,
    /// Entries of streamed scan responses whose terminal frame has not
    /// arrived yet, keyed by request id.
    partial_scans: HashMap<u64, Vec<(Key, Value)>>,
}

impl NetClient {
    /// Wrap an established connection. The client cannot reconnect; use
    /// [`NetClient::with_dialer`] for a client that survives connection
    /// loss.
    pub fn new(conn: Conn) -> NetClient {
        NetClient {
            reader: conn.reader,
            writer: conn.writer,
            decoder: FrameDecoder::new(),
            next_id: 1,
            pending: HashMap::new(),
            received: HashMap::new(),
            dialer: None,
            max_retries: 10_000,
            retry_backoff: Duration::from_micros(100),
            max_reconnect_attempts: 64,
            reconnect_backoff: Duration::from_micros(500),
            reconnect_backoff_cap: Duration::from_millis(50),
            backpressure_seen: 0,
            reconnects: 0,
            corrupt_frames_seen: 0,
            partial_scans: HashMap::new(),
        }
    }

    /// Dial the server and wrap the connection in a client that re-dials
    /// on connection loss, replaying the unacknowledged frames.
    ///
    /// # Errors
    ///
    /// [`PrismError::Disconnected`] if the initial dial fails.
    pub fn with_dialer(mut dialer: Dialer) -> Result<NetClient> {
        let conn = dialer().map_err(|_| PrismError::Disconnected)?;
        let mut client = NetClient::new(conn);
        client.dialer = Some(dialer);
        Ok(client)
    }

    /// Drop the current connection and re-dial with capped exponential
    /// backoff, then replay every unacknowledged frame in original send
    /// order. A replay failure counts as a failed attempt and re-dials.
    fn reconnect_and_replay(&mut self) -> Result<()> {
        if self.dialer.is_none() {
            return Err(PrismError::Disconnected);
        }
        let mut backoff = self.reconnect_backoff;
        let mut attempts = 0u32;
        'dial: loop {
            if attempts >= self.max_reconnect_attempts {
                return Err(PrismError::Disconnected);
            }
            attempts += 1;
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.reconnect_backoff_cap);
            let dialer = self.dialer.as_mut().expect("checked above");
            let conn = match dialer() {
                Ok(conn) => conn,
                Err(_) => continue 'dial,
            };
            self.reader = conn.reader;
            self.writer = conn.writer;
            // The old stream died mid-frame for all we know; any
            // buffered partial bytes belong to it, not the new one. The
            // same goes for half-assembled streamed scans: the replayed
            // request re-streams every chunk from the start.
            self.decoder = FrameDecoder::new();
            self.partial_scans.clear();
            let mut ids: Vec<u64> = self.pending.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let frame = self.pending[&id].frame.clone();
                if self.writer.write_all(&frame).is_err() {
                    continue 'dial;
                }
            }
            self.reconnects += 1;
            return Ok(());
        }
    }

    /// Number of sent requests not yet answered.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Send a request without waiting; returns its id for [`Self::wait`].
    ///
    /// # Errors
    ///
    /// [`PrismError::Protocol`] if the request cannot be encoded,
    /// [`PrismError::Disconnected`] if the transport rejects the write.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(id, request)?;
        // Registered before the write so a reconnect replays it too.
        self.pending.insert(id, Pending { frame, retries: 0 });
        if self.writer.write_all(&self.pending[&id].frame).is_err() {
            if let Err(err) = self.reconnect_and_replay() {
                self.pending.remove(&id);
                return Err(err);
            }
        }
        Ok(id)
    }

    /// Block until the response for `id` arrives, transparently resending
    /// on retryable back-pressure refusals.
    ///
    /// # Errors
    ///
    /// [`PrismError::Disconnected`] if the server hangs up first,
    /// [`PrismError::Protocol`] on an undecodable response.
    pub fn wait(&mut self, id: u64) -> Result<Response> {
        loop {
            if let Some(response) = self.received.remove(&id) {
                return Ok(response);
            }
            let response = match self.read_response() {
                Ok(response) => response,
                Err(PrismError::Disconnected) => {
                    self.reconnect_and_replay()?;
                    continue;
                }
                Err(err) => return Err(err),
            };
            let for_id = response.id;
            if response.more {
                // A continuation chunk of a streamed scan: stash its
                // entries and keep reading — the request stays pending
                // until the terminal frame arrives.
                if let ResponseBody::Entries(entries) = response.body {
                    self.partial_scans
                        .entry(for_id)
                        .or_default()
                        .extend(entries);
                }
                continue;
            }
            let mut response = response;
            if let Some(mut acc) = self.partial_scans.remove(&for_id) {
                // Terminal frame of a streamed scan: stitch the stashed
                // chunks and this tail back into one response.
                if let ResponseBody::Entries(tail) = response.body {
                    acc.extend(tail);
                    response.body = ResponseBody::Entries(acc);
                }
            }
            if response.status.is_retryable() {
                self.backpressure_seen += 1;
                if let Some(pending) = self.pending.get_mut(&for_id) {
                    if pending.retries < self.max_retries {
                        pending.retries += 1;
                        let frame = pending.frame.clone();
                        std::thread::sleep(self.retry_backoff);
                        if self.writer.write_all(&frame).is_err() {
                            // The reconnect replays every pending frame,
                            // this one included.
                            self.reconnect_and_replay()?;
                        }
                        continue;
                    }
                }
                // Retries exhausted (or an id we never sent): surface it.
            }
            self.pending.remove(&for_id);
            if for_id == id {
                return Ok(response);
            }
            self.received.insert(for_id, response);
        }
    }

    /// Wait for every pending request, discarding the responses (errors
    /// and refusals included) — a cheap pipeline barrier.
    ///
    /// # Errors
    ///
    /// [`PrismError::Disconnected`] if the server hangs up first.
    pub fn drain(&mut self) -> Result<()> {
        let ids: Vec<u64> = self.pending.keys().copied().collect();
        for id in ids {
            let _ = self.wait(id)?;
        }
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response> {
        loop {
            match self.decoder.next_frame()? {
                Some(Frame::Intact(payload)) => return decode_response(&payload),
                Some(Frame::Corrupt { id }) => {
                    // A response frame was corrupted on the wire. The
                    // request itself may have executed, so resend it
                    // (every request is idempotent) if the best-effort
                    // id matches something pending; otherwise the frame
                    // is simply dropped and the stream continues.
                    self.corrupt_frames_seen += 1;
                    if let Some(pending) = self.pending.get(&id) {
                        let frame = pending.frame.clone();
                        if self.writer.write_all(&frame).is_err() {
                            self.reconnect_and_replay()?;
                        }
                    }
                    continue;
                }
                None => {}
            }
            let mut buf = [0u8; 8192];
            let n = self
                .reader
                .read(&mut buf)
                .map_err(|_| PrismError::Disconnected)?;
            if n == 0 {
                return Err(PrismError::Disconnected);
            }
            self.decoder.push(&buf[..n]);
        }
    }

    fn expect_ok(response: Response) -> Result<Response> {
        match response.status {
            Status::Ok => Ok(response),
            Status::ShuttingDown => Err(PrismError::ShuttingDown),
            Status::Backpressure => Err(PrismError::Backpressure {
                partition: 0,
                depth: 0,
            }),
            Status::ServerError => Err(PrismError::Io(response.message)),
            Status::ProtocolError => Err(PrismError::Protocol(response.message)),
            // The wire does not carry the partition index; the message
            // has it for humans, retry logic only needs the variant.
            Status::Degraded => Err(PrismError::Degraded { partition: 0 }),
            Status::Corruption => Err(PrismError::Corruption(response.message)),
        }
    }

    /// Blocking put.
    ///
    /// # Errors
    ///
    /// Transport errors and non-ok statuses, mapped to [`PrismError`].
    pub fn put(&mut self, key: Key, value: Value) -> Result<Nanos> {
        let id = self.send(&Request::Put { key, value })?;
        let response = Self::expect_ok(self.wait(id)?)?;
        Ok(response.latency)
    }

    /// Blocking delete.
    ///
    /// # Errors
    ///
    /// Transport errors and non-ok statuses, mapped to [`PrismError`].
    pub fn delete(&mut self, key: Key) -> Result<Nanos> {
        let id = self.send(&Request::Delete { key })?;
        let response = Self::expect_ok(self.wait(id)?)?;
        Ok(response.latency)
    }

    /// Blocking point lookup.
    ///
    /// # Errors
    ///
    /// Transport errors and non-ok statuses, mapped to [`PrismError`].
    pub fn get(&mut self, key: Key) -> Result<Option<Value>> {
        let id = self.send(&Request::Get { key })?;
        let response = Self::expect_ok(self.wait(id)?)?;
        match response.body {
            ResponseBody::Value(value) => Ok(value),
            other => Err(PrismError::Protocol(format!(
                "get answered with a non-value body {other:?}"
            ))),
        }
    }

    /// Blocking range scan.
    ///
    /// # Errors
    ///
    /// Transport errors and non-ok statuses, mapped to [`PrismError`].
    pub fn scan(&mut self, start: Key, count: u32) -> Result<Vec<(Key, Value)>> {
        let id = self.send(&Request::Scan { start, count })?;
        let response = Self::expect_ok(self.wait(id)?)?;
        match response.body {
            ResponseBody::Entries(entries) => Ok(entries),
            other => Err(PrismError::Protocol(format!(
                "scan answered with a non-entries body {other:?}"
            ))),
        }
    }

    /// Blocking atomic batch.
    ///
    /// # Errors
    ///
    /// Transport errors and non-ok statuses, mapped to [`PrismError`].
    pub fn batch(&mut self, batch: WriteBatch) -> Result<Nanos> {
        let id = self.send(&Request::Batch { batch })?;
        let response = Self::expect_ok(self.wait(id)?)?;
        Ok(response.latency)
    }

    /// Blocking liveness probe.
    ///
    /// # Errors
    ///
    /// Transport errors and non-ok statuses, mapped to [`PrismError`].
    pub fn ping(&mut self) -> Result<()> {
        let id = self.send(&Request::Ping)?;
        Self::expect_ok(self.wait(id)?)?;
        Ok(())
    }
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("in_flight", &self.pending.len())
            .field("backpressure_seen", &self.backpressure_seen)
            .field("reconnects", &self.reconnects)
            .finish()
    }
}
