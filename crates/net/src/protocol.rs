//! The wire protocol: length-prefixed, checksummed binary frames.
//!
//! Every frame is a little-endian `u32` payload length, a CRC32 of the
//! payload, then the payload itself. Requests and responses share the
//! framing but have distinct payload layouts (see [`Request`] and
//! [`Response`]); both start with the client-assigned request id, so
//! responses may be delivered out of order and matched back by id.
//!
//! The header CRC gives the stream end-to-end integrity: any bit flipped
//! on the wire inside the payload (or the CRC field itself) is caught at
//! the framing layer, before the payload reaches a decoder. A CRC
//! mismatch costs only that frame ([`Frame::Corrupt`]) — the length
//! prefix still bounds it, so the stream re-synchronises at the next
//! frame boundary and the connection survives.
//!
//! Decoding never panics on hostile input: a malformed payload inside a
//! sound frame yields [`PrismError::Protocol`] and framing recovers at
//! the next length-prefix boundary; only an unsound length prefix itself
//! (oversized) is fatal to the connection, because the byte stream can no
//! longer be re-synchronised.

use prism_types::checksum::crc32;
use prism_types::{BatchOp, Key, Nanos, PrismError, Result, Value, WriteBatch};

/// Maximum payload bytes in one frame. Large enough for a full batch of
/// the engine's 4 KB objects, small enough that a corrupt length prefix
/// cannot make the decoder buffer gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of the frame length prefix.
pub const LEN_PREFIX: usize = 4;

/// Bytes of the payload CRC32 that follows the length prefix.
pub const CRC_PREFIX: usize = 4;

/// Bytes of the full frame header (length prefix + payload CRC).
pub const HEADER: usize = LEN_PREFIX + CRC_PREFIX;

/// Maximum key bytes on the wire (`u16` length field).
pub const MAX_KEY_LEN: usize = u16::MAX as usize;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert or update one key.
    Put {
        /// Key to write.
        key: Key,
        /// Value to store.
        value: Value,
    },
    /// Delete one key (idempotent).
    Delete {
        /// Key to delete.
        key: Key,
    },
    /// Point lookup.
    Get {
        /// Key to read.
        key: Key,
    },
    /// Ordered range scan.
    Scan {
        /// First key of the range (inclusive).
        start: Key,
        /// Maximum entries to return.
        count: u32,
    },
    /// Atomic multi-op write batch.
    Batch {
        /// The operations, applied front to back.
        batch: WriteBatch,
    },
    /// Liveness probe; the server answers immediately without touching
    /// the engine.
    Ping,
}

impl Request {
    /// The request's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Put { .. } => opcode::PUT,
            Request::Delete { .. } => opcode::DELETE,
            Request::Get { .. } => opcode::GET,
            Request::Scan { .. } => opcode::SCAN,
            Request::Batch { .. } => opcode::BATCH,
            Request::Ping => opcode::PING,
        }
    }
}

/// Wire opcodes (the `u8` after the request id).
pub mod opcode {
    /// Insert or update one key.
    pub const PUT: u8 = 1;
    /// Delete one key.
    pub const DELETE: u8 = 2;
    /// Point lookup.
    pub const GET: u8 = 3;
    /// Ordered range scan.
    pub const SCAN: u8 = 4;
    /// Atomic multi-op write batch.
    pub const BATCH: u8 = 5;
    /// Liveness probe.
    pub const PING: u8 = 6;
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was executed; the response carries its result.
    Ok = 0,
    /// The submission queue was full. Retryable: the same request may be
    /// resent and will eventually land once the queue drains.
    Backpressure = 1,
    /// The server is draining for shutdown; the request was refused and
    /// will not execute. Not retryable on this connection.
    ShuttingDown = 2,
    /// The engine rejected the request (capacity, corruption, ...); the
    /// response message carries the error text.
    ServerError = 3,
    /// The request frame was malformed. The offending frame was
    /// discarded; subsequent frames on the connection still execute.
    ProtocolError = 4,
    /// The target partition is in degraded (read-only) mode after
    /// corruption crossed its quarantine threshold. Retryable: a scrub
    /// pass re-arms the partition, after which the same request lands.
    Degraded = 5,
    /// The engine detected data corruption serving this request (a
    /// checksum mismatch, a quarantined object). Terminal for the
    /// request — resending cannot make the data whole; the message
    /// carries the tier/partition/slot context.
    Corruption = 6,
}

impl Status {
    fn from_wire(raw: u8) -> Result<Status> {
        Ok(match raw {
            0 => Status::Ok,
            1 => Status::Backpressure,
            2 => Status::ShuttingDown,
            3 => Status::ServerError,
            4 => Status::ProtocolError,
            5 => Status::Degraded,
            6 => Status::Corruption,
            other => return Err(PrismError::Protocol(format!("unknown status byte {other}"))),
        })
    }

    /// True for statuses a client may transparently retry.
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::Backpressure | Status::Degraded)
    }
}

/// Latency classes carried in every response so clients can histogram
/// service quality without trusting their own clocks: the class buckets
/// the server-side (simulated) service latency by decade.
pub fn latency_class(latency: Nanos) -> u8 {
    let us = latency.as_nanos() / 1_000;
    match us {
        0..=9 => 0,
        10..=99 => 1,
        100..=999 => 2,
        1_000..=9_999 => 3,
        _ => 4,
    }
}

/// The op-specific payload of an [`Status::Ok`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// Ack of a put/delete/batch/ping.
    Ack,
    /// Result of a get; `None` when the key does not exist.
    Value(Option<Value>),
    /// Result of a scan, in key order.
    Entries(Vec<(Key, Value)>),
}

/// One decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id this answers.
    pub id: u64,
    /// Echo of the request opcode.
    pub opcode: u8,
    /// Outcome of the request.
    pub status: Status,
    /// Error text for non-[`Status::Ok`] statuses (empty otherwise).
    pub message: String,
    /// Server-side simulated service latency (zero for refusals).
    pub latency: Nanos,
    /// Result payload; [`ResponseBody::Ack`] for non-ok statuses.
    pub body: ResponseBody,
    /// Continuation marker for streamed scan results: `true` means more
    /// frames with this id follow; the terminal frame carries `false`.
    /// Always `false` for non-scan responses.
    pub more: bool,
}

impl Response {
    /// A refusal or error response (no body, zero latency).
    pub fn refusal(id: u64, opcode: u8, status: Status, message: impl Into<String>) -> Response {
        Response {
            id,
            opcode,
            status,
            message: message.into(),
            latency: Nanos::ZERO,
            body: ResponseBody::Ack,
            more: false,
        }
    }

    /// The latency class bucket of this response's latency.
    pub fn latency_class(&self) -> u8 {
        latency_class(self.latency)
    }
}

// ---------------------------------------------------------------------
// Encoding

struct FrameBuilder {
    buf: Vec<u8>,
}

impl FrameBuilder {
    fn new() -> FrameBuilder {
        // Reserve the length prefix and payload CRC; patched in `finish`.
        FrameBuilder {
            buf: vec![0u8; HEADER],
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn key(&mut self, key: &Key) -> Result<()> {
        let bytes = key.as_bytes();
        if bytes.len() > MAX_KEY_LEN {
            return Err(PrismError::Protocol(format!(
                "key of {} bytes exceeds the wire maximum of {MAX_KEY_LEN}",
                bytes.len()
            )));
        }
        self.u16(bytes.len() as u16);
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn value(&mut self, value: &Value) {
        self.u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }

    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let take = bytes.len().min(MAX_KEY_LEN);
        self.u16(take as u16);
        self.buf.extend_from_slice(&bytes[..take]);
    }

    fn finish(mut self) -> Result<Vec<u8>> {
        let payload = self.buf.len() - HEADER;
        if payload > MAX_FRAME {
            return Err(PrismError::Protocol(format!(
                "frame payload of {payload} bytes exceeds the maximum of {MAX_FRAME}"
            )));
        }
        self.buf[..LEN_PREFIX].copy_from_slice(&(payload as u32).to_le_bytes());
        let crc = crc32(&self.buf[HEADER..]);
        self.buf[LEN_PREFIX..HEADER].copy_from_slice(&crc.to_le_bytes());
        Ok(self.buf)
    }
}

/// Encode a request into a complete frame (length prefix included).
///
/// # Errors
///
/// [`PrismError::Protocol`] if a key exceeds [`MAX_KEY_LEN`] or the
/// payload exceeds [`MAX_FRAME`].
pub fn encode_request(id: u64, request: &Request) -> Result<Vec<u8>> {
    let mut frame = FrameBuilder::new();
    frame.u64(id);
    frame.u8(request.opcode());
    match request {
        Request::Put { key, value } => {
            frame.key(key)?;
            frame.value(value);
        }
        Request::Delete { key } | Request::Get { key } => frame.key(key)?,
        Request::Scan { start, count } => {
            frame.key(start)?;
            frame.u32(*count);
        }
        Request::Batch { batch } => {
            frame.u32(batch.len() as u32);
            for op in batch.entries() {
                match op {
                    BatchOp::Put(key, value) => {
                        frame.u8(1);
                        frame.key(key)?;
                        frame.value(value);
                    }
                    BatchOp::Delete(key) => {
                        frame.u8(2);
                        frame.key(key)?;
                    }
                }
            }
        }
        Request::Ping => {}
    }
    frame.finish()
}

/// Encode a response into a complete frame (length prefix included).
///
/// # Errors
///
/// [`PrismError::Protocol`] on a key or frame size violation (a scan
/// result too large to frame).
pub fn encode_response(response: &Response) -> Result<Vec<u8>> {
    let mut frame = FrameBuilder::new();
    frame.u64(response.id);
    frame.u8(response.opcode);
    frame.u8(response.status as u8);
    frame.u8(response.latency_class());
    frame.u64(response.latency.as_nanos());
    if response.status as u8 != Status::Ok as u8 {
        frame.str(&response.message);
        return frame.finish();
    }
    match &response.body {
        ResponseBody::Ack => {}
        ResponseBody::Value(value) => match value {
            Some(value) => {
                frame.u8(1);
                frame.value(value);
            }
            None => frame.u8(0),
        },
        ResponseBody::Entries(entries) => {
            frame.u32(entries.len() as u32);
            frame.u8(response.more as u8);
            for (key, value) in entries {
                frame.key(key)?;
                frame.value(value);
            }
        }
    }
    frame.finish()
}

// ---------------------------------------------------------------------
// Decoding

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|end| *end <= self.buf.len());
        let Some(end) = end else {
            return Err(PrismError::Protocol(format!(
                "payload truncated: wanted {n} bytes at offset {} of a {}-byte payload",
                self.pos,
                self.buf.len()
            )));
        };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn key(&mut self) -> Result<Key> {
        let len = self.u16()? as usize;
        Ok(Key::from_bytes(self.take(len)?.to_vec()))
    }

    fn value(&mut self) -> Result<Value> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(PrismError::Protocol(format!(
                "value length field {len} exceeds the frame maximum"
            )));
        }
        Ok(Value::from_vec(self.take(len)?.to_vec()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PrismError::Protocol("message field is not valid utf-8".into()))
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(PrismError::Protocol(format!(
                "{} trailing bytes after a complete payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// The request id of a payload too malformed to decode, so a protocol
/// error can still be routed back to the requester. `u64::MAX` if the
/// payload is too short to carry an id.
pub fn peek_request_id(payload: &[u8]) -> u64 {
    payload
        .get(..8)
        .map(|bytes| u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        .unwrap_or(u64::MAX)
}

/// Decode a request payload (the bytes after the length prefix).
///
/// # Errors
///
/// [`PrismError::Protocol`] on truncation, an unknown opcode, a length
/// field pointing past the payload, or trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request)> {
    let mut cursor = Cursor::new(payload);
    let id = cursor.u64()?;
    let opcode = cursor.u8()?;
    let request = match opcode {
        opcode::PUT => Request::Put {
            key: cursor.key()?,
            value: cursor.value()?,
        },
        opcode::DELETE => Request::Delete { key: cursor.key()? },
        opcode::GET => Request::Get { key: cursor.key()? },
        opcode::SCAN => Request::Scan {
            start: cursor.key()?,
            count: cursor.u32()?,
        },
        opcode::BATCH => {
            let n = cursor.u32()? as usize;
            // Bound by what could physically fit in the payload (a
            // put is ≥ 7 bytes) before allocating.
            if n > payload.len() {
                return Err(PrismError::Protocol(format!(
                    "batch count field {n} exceeds what a {}-byte payload can hold",
                    payload.len()
                )));
            }
            let mut batch = WriteBatch::with_capacity(n);
            for _ in 0..n {
                match cursor.u8()? {
                    1 => {
                        let key = cursor.key()?;
                        let value = cursor.value()?;
                        batch.put(key, value);
                    }
                    2 => batch.delete(cursor.key()?),
                    tag => return Err(PrismError::Protocol(format!("unknown batch op tag {tag}"))),
                }
            }
            Request::Batch { batch }
        }
        opcode::PING => Request::Ping,
        other => return Err(PrismError::Protocol(format!("unknown opcode {other}"))),
    };
    cursor.finish()?;
    Ok((id, request))
}

/// Decode a response payload (the bytes after the length prefix).
///
/// # Errors
///
/// [`PrismError::Protocol`] on any malformed field.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut cursor = Cursor::new(payload);
    let id = cursor.u64()?;
    let opcode = cursor.u8()?;
    let status = Status::from_wire(cursor.u8()?)?;
    let wire_class = cursor.u8()?;
    let latency = Nanos::from_nanos(cursor.u64()?);
    if wire_class != latency_class(latency) {
        return Err(PrismError::Protocol(format!(
            "latency class {wire_class} does not match latency {}ns",
            latency.as_nanos()
        )));
    }
    if status as u8 != Status::Ok as u8 {
        let message = cursor.str()?;
        cursor.finish()?;
        return Ok(Response {
            id,
            opcode,
            status,
            message,
            latency,
            body: ResponseBody::Ack,
            more: false,
        });
    }
    let mut more = false;
    let body = match opcode {
        opcode::PUT | opcode::DELETE | opcode::BATCH | opcode::PING => ResponseBody::Ack,
        opcode::GET => match cursor.u8()? {
            0 => ResponseBody::Value(None),
            1 => ResponseBody::Value(Some(cursor.value()?)),
            tag => {
                return Err(PrismError::Protocol(format!(
                    "unknown value-presence tag {tag}"
                )))
            }
        },
        opcode::SCAN => {
            let n = cursor.u32()? as usize;
            if n > payload.len() {
                return Err(PrismError::Protocol(format!(
                    "scan entry count field {n} exceeds what a {}-byte payload can hold",
                    payload.len()
                )));
            }
            more = match cursor.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(PrismError::Protocol(format!(
                        "unknown continuation tag {tag}"
                    )))
                }
            };
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let key = cursor.key()?;
                let value = cursor.value()?;
                entries.push((key, value));
            }
            ResponseBody::Entries(entries)
        }
        other => return Err(PrismError::Protocol(format!("unknown opcode {other}"))),
    };
    cursor.finish()?;
    Ok(Response {
        id,
        opcode,
        status,
        message: String::new(),
        latency,
        body,
        more,
    })
}

/// Split a scan response whose entry list may exceed [`MAX_FRAME`] into
/// a sequence of frame-sized responses sharing the same id: every chunk
/// but the last carries `more == true`, the terminal chunk carries the
/// remaining entries and `more == false`. Responses that already fit
/// (and every non-scan response) come back as a single-element sequence,
/// unchanged.
pub fn split_scan_response(response: Response) -> Vec<Response> {
    let ResponseBody::Entries(entries) = &response.body else {
        return vec![response];
    };
    // Per-entry wire cost plus the fixed response header; stay well
    // under the cap so the estimate never has to be exact.
    let budget = MAX_FRAME - 4096;
    let entry_bytes = |(key, value): &(Key, Value)| 2 + key.as_bytes().len() + 4 + value.len();
    if entries.iter().map(entry_bytes).sum::<usize>() <= budget {
        return vec![response];
    }
    let mut chunks: Vec<Vec<(Key, Value)>> = vec![Vec::new()];
    let mut used = 0usize;
    for entry in entries.clone() {
        let cost = entry_bytes(&entry);
        if used + cost > budget && !chunks.last().expect("non-empty").is_empty() {
            chunks.push(Vec::new());
            used = 0;
        }
        used += cost;
        chunks.last_mut().expect("non-empty").push(entry);
    }
    let last = chunks.len() - 1;
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, chunk)| Response {
            body: ResponseBody::Entries(chunk),
            more: i < last,
            message: String::new(),
            ..response.clone()
        })
        .collect()
}

// ---------------------------------------------------------------------
// Incremental framing

/// One frame pulled out of a [`FrameDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A payload that matched its header CRC.
    Intact(Vec<u8>),
    /// A frame whose payload failed its header CRC. The frame boundary
    /// was still sound, so exactly its bytes were consumed and the
    /// stream continues at the next frame; `id` is the (best-effort,
    /// possibly itself corrupt) request id peeked from the payload so
    /// the peer can be told which request was lost.
    Corrupt {
        /// Best-effort request id from the corrupt payload.
        id: u64,
    },
}

/// Incremental frame splitter: feed it raw bytes as they arrive, pull
/// complete payloads out. Every payload is verified against the header
/// CRC32 before it is handed out; a mismatch yields [`Frame::Corrupt`]
/// and costs only that frame. A frame whose payload later fails to
/// decode likewise costs only that frame — the splitter has already
/// consumed exactly its bytes, so the next frame starts clean. Only an
/// oversized length prefix is unrecoverable (the stream cannot be
/// re-synchronised) and poisons the decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted opportunistically).
    consumed: usize,
    poisoned: bool,
    corrupt_frames: u64,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Drop the consumed prefix before growing, keeping the buffer
        // proportional to the unparsed remainder.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Number of frames discarded so far because their payload failed
    /// the header CRC.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// Extract the next complete frame, if one is buffered. A payload
    /// that fails its header CRC comes back as [`Frame::Corrupt`] — the
    /// frame is consumed, the stream stays synchronised.
    ///
    /// # Errors
    ///
    /// [`PrismError::Protocol`] if a length prefix exceeds [`MAX_FRAME`];
    /// the decoder is then poisoned and every later call fails too — the
    /// connection must be torn down.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.poisoned {
            return Err(PrismError::Protocol(
                "stream poisoned by an earlier unrecoverable framing error".into(),
            ));
        }
        let pending = &self.buf[self.consumed..];
        if pending.len() < HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            self.poisoned = true;
            return Err(PrismError::Protocol(format!(
                "length prefix {len} exceeds the frame maximum of {MAX_FRAME}"
            )));
        }
        if pending.len() < HEADER + len {
            return Ok(None);
        }
        let wire_crc = u32::from_le_bytes(pending[LEN_PREFIX..HEADER].try_into().expect("4 bytes"));
        let payload = &pending[HEADER..HEADER + len];
        self.consumed += HEADER + len;
        if crc32(payload) != wire_crc {
            self.corrupt_frames += 1;
            return Ok(Some(Frame::Corrupt {
                id: peek_request_id(payload),
            }));
        }
        Ok(Some(Frame::Intact(payload.to_vec())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        let mut batch = WriteBatch::new();
        batch.put(Key::from_id(1), Value::filled(8, 0xAA));
        batch.delete(Key::from_id(2));
        batch.put(Key::from_bytes(vec![]), Value::empty());
        vec![
            Request::Put {
                key: Key::from_id(7),
                value: Value::filled(100, 0x55),
            },
            Request::Delete {
                key: Key::from_bytes(b"hello".to_vec()),
            },
            Request::Get {
                key: Key::from_bytes(vec![0u8; 300]),
            },
            Request::Scan {
                start: Key::min(),
                count: 1000,
            },
            Request::Batch { batch },
            Request::Ping,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for (i, request) in sample_requests().into_iter().enumerate() {
            let id = 1000 + i as u64;
            let frame = encode_request(id, &request).expect("encode");
            let (got_id, got) = decode_request(&frame[HEADER..]).expect("decode");
            assert_eq!(got_id, id);
            assert_eq!(got, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response {
                id: 1,
                opcode: opcode::PUT,
                status: Status::Ok,
                message: String::new(),
                latency: Nanos::from_micros(12),
                body: ResponseBody::Ack,
                more: false,
            },
            Response {
                id: 2,
                opcode: opcode::GET,
                status: Status::Ok,
                message: String::new(),
                latency: Nanos::from_nanos(999),
                body: ResponseBody::Value(Some(Value::filled(64, 3))),
                more: false,
            },
            Response {
                id: 3,
                opcode: opcode::GET,
                status: Status::Ok,
                message: String::new(),
                latency: Nanos::ZERO,
                body: ResponseBody::Value(None),
                more: false,
            },
            Response {
                id: 4,
                opcode: opcode::SCAN,
                status: Status::Ok,
                message: String::new(),
                latency: Nanos::from_micros(40_000),
                body: ResponseBody::Entries(vec![
                    (Key::from_id(1), Value::filled(4, 1)),
                    (Key::from_id(2), Value::empty()),
                ]),
                more: false,
            },
            // A non-terminal streamed-scan chunk keeps its continuation
            // marker across the wire.
            Response {
                id: 11,
                opcode: opcode::SCAN,
                status: Status::Ok,
                message: String::new(),
                latency: Nanos::from_micros(5),
                body: ResponseBody::Entries(vec![(Key::from_id(9), Value::filled(4, 9))]),
                more: true,
            },
            Response::refusal(5, opcode::PUT, Status::Backpressure, "queue full"),
            Response::refusal(6, opcode::BATCH, Status::ShuttingDown, "draining"),
            Response::refusal(7, opcode::GET, Status::ServerError, "capacity exceeded"),
            Response::refusal(8, opcode::PING, Status::ProtocolError, "bad frame"),
            Response::refusal(9, opcode::PUT, Status::Degraded, "partition 2 read-only"),
            Response::refusal(10, opcode::GET, Status::Corruption, "nvm checksum mismatch"),
        ];
        for response in cases {
            let frame = encode_response(&response).expect("encode");
            let got = decode_response(&frame[HEADER..]).expect("decode");
            assert_eq!(got, response);
        }
    }

    #[test]
    fn only_backpressure_and_degraded_are_retryable() {
        assert!(Status::Backpressure.is_retryable());
        assert!(Status::Degraded.is_retryable());
        for terminal in [
            Status::Ok,
            Status::ShuttingDown,
            Status::ServerError,
            Status::ProtocolError,
            Status::Corruption,
        ] {
            assert!(!terminal.is_retryable(), "{terminal:?} must be terminal");
        }
    }

    #[test]
    fn latency_classes_bucket_by_decade() {
        assert_eq!(latency_class(Nanos::ZERO), 0);
        assert_eq!(latency_class(Nanos::from_micros(9)), 0);
        assert_eq!(latency_class(Nanos::from_micros(10)), 1);
        assert_eq!(latency_class(Nanos::from_micros(100)), 2);
        assert_eq!(latency_class(Nanos::from_micros(1_000)), 3);
        assert_eq!(latency_class(Nanos::from_micros(50_000)), 4);
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        let frame = encode_request(
            9,
            &Request::Put {
                key: Key::from_id(3),
                value: Value::filled(32, 1),
            },
        )
        .expect("encode");
        let payload = &frame[HEADER..];
        for cut in 0..payload.len() {
            let err = decode_request(&payload[..cut]).expect_err("truncation must error");
            assert!(matches!(err, PrismError::Protocol(_)), "got {err:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_request(1, &Request::Ping).expect("encode");
        frame.push(0xFF);
        let err = decode_request(&frame[HEADER..]).expect_err("trailing byte");
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn unknown_opcode_and_bad_tags_error() {
        // id(8) + bogus opcode.
        let mut payload = 77u64.to_le_bytes().to_vec();
        payload.push(99);
        assert!(decode_request(&payload).is_err());
        assert_eq!(peek_request_id(&payload), 77);
        assert_eq!(peek_request_id(&payload[..4]), u64::MAX);
    }

    #[test]
    fn absurd_length_fields_do_not_allocate() {
        // A batch whose count field claims 4 billion entries in a tiny
        // payload must be rejected before any allocation.
        let mut payload = 5u64.to_le_bytes().to_vec();
        payload.push(opcode::BATCH);
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_request(&payload).expect_err("absurd count");
        assert!(err.to_string().contains("batch count"));
    }

    /// Pull the next frame and unwrap the intact payload.
    fn intact(decoder: &mut FrameDecoder) -> Option<Vec<u8>> {
        match decoder.next_frame().expect("sound stream") {
            Some(Frame::Intact(payload)) => Some(payload),
            Some(Frame::Corrupt { id }) => panic!("unexpected corrupt frame (id {id})"),
            None => None,
        }
    }

    #[test]
    fn frame_decoder_reassembles_byte_by_byte() {
        let mut stream = Vec::new();
        let requests = sample_requests();
        for (i, request) in requests.iter().enumerate() {
            stream.extend(encode_request(i as u64, request).expect("encode"));
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for byte in stream {
            decoder.push(&[byte]);
            while let Some(payload) = intact(&mut decoder) {
                decoded.push(decode_request(&payload).expect("decode"));
            }
        }
        assert_eq!(decoded.len(), requests.len());
        for (i, (id, request)) in decoded.into_iter().enumerate() {
            assert_eq!(id, i as u64);
            assert_eq!(request, requests[i]);
        }
        assert_eq!(decoder.pending_bytes(), 0);
        assert_eq!(decoder.corrupt_frames(), 0);
    }

    #[test]
    fn oversized_length_prefix_poisons_the_decoder() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&(MAX_FRAME as u32 + 1).to_le_bytes());
        decoder.push(&[0u8; CRC_PREFIX]);
        assert!(decoder.next_frame().is_err());
        // Poisoned: even pushing sound bytes afterwards keeps failing.
        decoder.push(&encode_request(1, &Request::Ping).expect("encode"));
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn corrupt_frame_does_not_desync_the_next_one() {
        // A framing-sound payload (correct CRC) that fails to decode.
        let mut garbage_payload = 3u64.to_le_bytes().to_vec();
        garbage_payload.push(250); // unknown opcode
        let mut stream = (garbage_payload.len() as u32).to_le_bytes().to_vec();
        stream.extend(crc32(&garbage_payload).to_le_bytes());
        stream.extend(&garbage_payload);
        stream.extend(encode_request(4, &Request::Ping).expect("encode"));
        let mut decoder = FrameDecoder::new();
        decoder.push(&stream);
        let bad = intact(&mut decoder).expect("frame");
        assert!(decode_request(&bad).is_err());
        // The next frame decodes cleanly: no desync.
        let good = intact(&mut decoder).expect("frame");
        assert_eq!(decode_request(&good).expect("decode").0, 4);
    }

    /// The frame-CRC gate: every single-bit flip anywhere past the
    /// length prefix is caught by the header CRC as [`Frame::Corrupt`],
    /// charged to exactly one frame, and the following frame still
    /// decodes — the connection survives. (A flip inside the length
    /// prefix moves the frame boundary itself; those are detected too —
    /// the misframed bytes can never pass the CRC — but re-synchronising
    /// after one is not guaranteed, which is why the length prefix is
    /// the only fatal field.)
    #[test]
    fn every_single_bit_flip_past_the_length_prefix_is_detected() {
        let frame = encode_request(
            42,
            &Request::Put {
                key: Key::from_id(7),
                value: Value::filled(100, 0x55),
            },
        )
        .expect("encode");
        let follow_up = encode_request(43, &Request::Ping).expect("encode");
        for bit in (LEN_PREFIX * 8)..(frame.len() * 8) {
            let mut stream = frame.clone();
            stream[bit / 8] ^= 1 << (bit % 8);
            stream.extend_from_slice(&follow_up);
            let mut decoder = FrameDecoder::new();
            decoder.push(&stream);
            match decoder.next_frame().expect("framing sound") {
                Some(Frame::Corrupt { .. }) => {}
                other => panic!("bit flip {bit} went undetected: {other:?}"),
            }
            assert_eq!(decoder.corrupt_frames(), 1);
            // The connection survives: the next frame is intact and
            // decodes as the follow-up request.
            let next = intact(&mut decoder).expect("follow-up frame");
            assert_eq!(decode_request(&next).expect("decode").0, 43);
        }
    }

    /// Length-prefix flips either poison the decoder (oversized length)
    /// or mis-frame the stream — but the mis-framed bytes still never
    /// pass the CRC, so corrupt data is never served as intact.
    #[test]
    fn length_prefix_flips_never_serve_a_corrupt_frame_as_intact() {
        let frame = encode_request(42, &Request::Ping).expect("encode");
        let original_payload = frame[HEADER..].to_vec();
        for bit in 0..(LEN_PREFIX * 8) {
            let mut stream = frame.clone();
            stream[bit / 8] ^= 1 << (bit % 8);
            let mut decoder = FrameDecoder::new();
            decoder.push(&stream);
            match decoder.next_frame() {
                Ok(Some(Frame::Intact(payload))) => {
                    assert_ne!(
                        payload, original_payload,
                        "bit flip {bit} served the corrupt frame as intact"
                    );
                }
                // Corrupt, incomplete (waiting for bytes that never
                // come), or poisoned: all are detection, none serve
                // corrupt data.
                Ok(Some(Frame::Corrupt { .. })) | Ok(None) | Err(_) => {}
            }
        }
    }

    #[test]
    fn split_scan_response_chunks_oversized_scans_and_preserves_order() {
        let value = Value::filled(8 * 1024, 7);
        let entries: Vec<(Key, Value)> = (0..300u64)
            .map(|id| (Key::from_id(id), value.clone()))
            .collect();
        let response = Response {
            id: 5,
            opcode: opcode::SCAN,
            status: Status::Ok,
            message: String::new(),
            latency: Nanos::from_micros(33),
            body: ResponseBody::Entries(entries.clone()),
            more: false,
        };
        // ~2.4 MB of entries: must split into multiple frames.
        assert!(encode_response(&response).is_err(), "must exceed MAX_FRAME");
        let chunks = split_scan_response(response);
        assert!(chunks.len() >= 3, "expected several chunks");
        let mut reassembled = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.id, 5);
            assert_eq!(chunk.more, i + 1 < chunks.len(), "terminal marker");
            // Every chunk must round-trip the wire individually.
            let frame = encode_response(chunk).expect("chunk fits a frame");
            let got = decode_response(&frame[HEADER..]).expect("decode");
            assert_eq!(&got, chunk);
            match got.body {
                ResponseBody::Entries(part) => reassembled.extend(part),
                other => panic!("non-entries chunk body {other:?}"),
            }
        }
        assert_eq!(reassembled, entries);
    }

    #[test]
    fn split_scan_response_passes_small_scans_through() {
        let response = Response {
            id: 6,
            opcode: opcode::SCAN,
            status: Status::Ok,
            message: String::new(),
            latency: Nanos::from_micros(1),
            body: ResponseBody::Entries(vec![(Key::from_id(1), Value::filled(16, 1))]),
            more: false,
        };
        let chunks = split_scan_response(response.clone());
        assert_eq!(chunks, vec![response]);
        let ack = Response::refusal(7, opcode::PUT, Status::Backpressure, "full");
        assert_eq!(split_scan_response(ack.clone()), vec![ack]);
    }
}
