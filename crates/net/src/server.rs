//! The serving loop: accept connections, decode frames, map requests
//! onto the [`prism_frontend`] submission queues, and multiplex
//! completions back out of order.
//!
//! Each connection gets two threads: a *reader* that decodes frames and
//! submits them (holding at most [`ServerOptions::max_in_flight_per_conn`]
//! unanswered requests — the per-connection window that stops one greedy
//! client from monopolising the queues), and a *responder* that polls the
//! in-flight tickets non-blockingly and writes each response as soon as
//! its completion fires, in whatever order the executors finish.
//!
//! Back-pressure and refusals are part of the wire contract, not
//! connection failures: a full submission queue surfaces as a retryable
//! [`Status::Backpressure`] response, and requests arriving during a
//! graceful shutdown are refused with [`Status::ShuttingDown`] while
//! everything already submitted is still acked.

use std::collections::HashMap;
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use prism_frontend::{Frontend, FrontendOptions, ReadTicket, ScanTicket, WriteTicket};
use prism_obs::registry::{HealthReport, ShardHealthView};
use prism_obs::trace::category;
use prism_obs::ObsHub;
use prism_types::{ConcurrentKvStore, NetStats, PrismError, Result};

use crate::protocol::{
    decode_request, encode_response, peek_request_id, split_scan_response, Frame, FrameDecoder,
    Request, Response, ResponseBody, Status,
};
use crate::transport::{Conn, Listener, ReadCloser};

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Options of the embedded submission front-end.
    pub frontend: FrontendOptions,
    /// Most unanswered requests one connection may have outstanding;
    /// beyond it the reader stops consuming frames until responses drain
    /// (natural flow control, no refusals).
    pub max_in_flight_per_conn: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            frontend: FrontendOptions::default(),
            max_in_flight_per_conn: 64,
        }
    }
}

impl ServerOptions {
    fn validate(&self) -> Result<()> {
        if self.max_in_flight_per_conn == 0 {
            return Err(PrismError::InvalidConfig(
                "max_in_flight_per_conn must be non-zero".into(),
            ));
        }
        self.frontend.validate()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The ticket of one submitted request, tagged by result shape.
enum TicketKind {
    Write(WriteTicket),
    Read(ReadTicket),
    Scan(ScanTicket),
}

/// One accepted request whose completion is pending.
struct InFlight {
    id: u64,
    opcode: u8,
    ticket: TicketKind,
}

impl InFlight {
    /// Non-blocking poll; a completed ticket becomes a wire response.
    fn poll(&mut self) -> Option<Response> {
        let (status_result, latency, body) = match &mut self.ticket {
            TicketKind::Write(ticket) => match ticket.poll()? {
                Ok(latency) => (Ok(()), latency, ResponseBody::Ack),
                Err(err) => (Err(err), prism_types::Nanos::ZERO, ResponseBody::Ack),
            },
            TicketKind::Read(ticket) => match ticket.poll()? {
                Ok(lookup) => (Ok(()), lookup.latency, ResponseBody::Value(lookup.value)),
                Err(err) => (Err(err), prism_types::Nanos::ZERO, ResponseBody::Ack),
            },
            TicketKind::Scan(ticket) => match ticket.poll()? {
                Ok(scan) => (Ok(()), scan.latency, ResponseBody::Entries(scan.entries)),
                Err(err) => (Err(err), prism_types::Nanos::ZERO, ResponseBody::Ack),
            },
        };
        Some(match status_result {
            Ok(()) => Response {
                id: self.id,
                opcode: self.opcode,
                status: Status::Ok,
                message: String::new(),
                latency,
                body,
                more: false,
            },
            Err(PrismError::ShuttingDown) => {
                Response::refusal(self.id, self.opcode, Status::ShuttingDown, "draining")
            }
            Err(err @ PrismError::Degraded { .. }) => {
                Response::refusal(self.id, self.opcode, Status::Degraded, err.to_string())
            }
            Err(err @ PrismError::Corruption(_)) => {
                Response::refusal(self.id, self.opcode, Status::Corruption, err.to_string())
            }
            Err(err) => {
                Response::refusal(self.id, self.opcode, Status::ServerError, err.to_string())
            }
        })
    }
}

/// Per-connection state shared by the reader and responder threads.
#[derive(Default)]
struct ConnInner {
    inflight: Vec<InFlight>,
    /// Responses ready without a ticket (refusals, pings, protocol
    /// errors), in arrival order.
    ready: Vec<Response>,
    reading_done: bool,
    write_failed: bool,
}

struct ConnShared {
    inner: Mutex<ConnInner>,
    cv: Condvar,
}

impl ConnShared {
    fn pending(inner: &ConnInner) -> usize {
        inner.inflight.len() + inner.ready.len()
    }
}

struct Counters {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    bytes_received: AtomicU64,
    bytes_sent: AtomicU64,
    protocol_errors: AtomicU64,
    backpressure_rejections: AtomicU64,
    shutdown_refusals: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    max_conn_in_flight: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            connections_accepted: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            backpressure_rejections: AtomicU64::new(0),
            shutdown_refusals: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            max_in_flight: AtomicU64::new(0),
            max_conn_in_flight: AtomicU64::new(0),
        }
    }

    fn note_in_flight(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.max_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            backpressure_rejections: self.backpressure_rejections.load(Ordering::Relaxed),
            shutdown_refusals: self.shutdown_refusals.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            max_conn_in_flight: self.max_conn_in_flight.load(Ordering::Relaxed),
        }
    }
}

struct NetShared<E: ConcurrentKvStore + 'static> {
    frontend: Frontend<E>,
    obs: Arc<ObsHub>,
    shutdown: AtomicBool,
    counters: Counters,
    max_in_flight_per_conn: usize,
    /// Read-closers of live connections, for interrupting their reader
    /// threads at shutdown.
    closers: Mutex<HashMap<u64, ReadCloser>>,
    /// Join handles of live connection threads.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl<E: ConcurrentKvStore + 'static> NetShared<E> {
    /// Queue one response for the responder and account the in-flight
    /// gauge (the responder decrements when it writes or drops it).
    fn push_ready(&self, conn: &ConnShared, response: Response) {
        self.counters.note_in_flight();
        let pending = {
            let mut inner = lock(&conn.inner);
            inner.ready.push(response);
            ConnShared::pending(&inner) as u64
        };
        self.counters
            .max_conn_in_flight
            .fetch_max(pending, Ordering::Relaxed);
        conn.cv.notify_all();
    }

    /// Decode and act on one complete frame payload.
    fn handle_frame(&self, conn: &ConnShared, payload: &[u8]) {
        self.counters
            .bytes_received
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let (id, request) = match decode_request(payload) {
            Ok(decoded) => decoded,
            Err(err) => {
                self.counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.push_ready(
                    conn,
                    Response::refusal(
                        peek_request_id(payload),
                        0,
                        Status::ProtocolError,
                        err.to_string(),
                    ),
                );
                return;
            }
        };
        self.counters
            .frames_received
            .fetch_add(1, Ordering::Relaxed);
        let opcode = request.opcode();
        if self.shutdown.load(Ordering::Acquire) {
            self.counters
                .shutdown_refusals
                .fetch_add(1, Ordering::Relaxed);
            self.push_ready(
                conn,
                Response::refusal(id, opcode, Status::ShuttingDown, "server draining"),
            );
            return;
        }
        let submitted: Result<TicketKind> = match &request {
            Request::Put { key, value } => self
                .frontend
                .try_submit_put(key, value)
                .map(TicketKind::Write),
            Request::Delete { key } => self.frontend.try_submit_delete(key).map(TicketKind::Write),
            Request::Get { key } => self.frontend.try_submit_get(key).map(TicketKind::Read),
            Request::Scan { start, count } => self
                .frontend
                .try_submit_scan(start, *count as usize)
                .map(TicketKind::Scan),
            Request::Batch { batch } => {
                self.frontend.try_submit_batch(batch).map(TicketKind::Write)
            }
            Request::Ping => {
                self.push_ready(
                    conn,
                    Response {
                        id,
                        opcode,
                        status: Status::Ok,
                        message: String::new(),
                        latency: prism_types::Nanos::ZERO,
                        body: ResponseBody::Ack,
                        more: false,
                    },
                );
                return;
            }
        };
        match submitted {
            Ok(ticket) => {
                self.counters.note_in_flight();
                let pending = {
                    let mut inner = lock(&conn.inner);
                    inner.inflight.push(InFlight { id, opcode, ticket });
                    ConnShared::pending(&inner) as u64
                };
                self.counters
                    .max_conn_in_flight
                    .fetch_max(pending, Ordering::Relaxed);
                conn.cv.notify_all();
            }
            Err(PrismError::Backpressure { partition, depth }) => {
                self.counters
                    .backpressure_rejections
                    .fetch_add(1, Ordering::Relaxed);
                self.push_ready(
                    conn,
                    Response::refusal(
                        id,
                        opcode,
                        Status::Backpressure,
                        format!("partition {partition} queue full ({depth} pending)"),
                    ),
                );
            }
            Err(PrismError::ShuttingDown) => {
                self.counters
                    .shutdown_refusals
                    .fetch_add(1, Ordering::Relaxed);
                self.push_ready(
                    conn,
                    Response::refusal(id, opcode, Status::ShuttingDown, "server draining"),
                );
            }
            Err(err @ PrismError::Degraded { .. }) => self.push_ready(
                conn,
                Response::refusal(id, opcode, Status::Degraded, err.to_string()),
            ),
            Err(err @ PrismError::Corruption(_)) => self.push_ready(
                conn,
                Response::refusal(id, opcode, Status::Corruption, err.to_string()),
            ),
            Err(err) => self.push_ready(
                conn,
                Response::refusal(id, opcode, Status::ServerError, err.to_string()),
            ),
        }
    }

    /// Block until the connection's in-flight window has room (or the
    /// connection is failing / draining, in which case reading on is
    /// harmless — later frames get refusals).
    fn wait_for_window(&self, conn: &ConnShared) {
        let mut inner = lock(&conn.inner);
        while ConnShared::pending(&inner) >= self.max_in_flight_per_conn && !inner.write_failed {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Timed so a missed notify or shutdown race never wedges the
            // reader.
            let (guard, _) = conn
                .cv
                .wait_timeout(inner, Duration::from_micros(200))
                .unwrap_or_else(|poison| poison.into_inner());
            inner = guard;
        }
    }

    /// Reader loop: pump bytes into the frame decoder, dispatch frames.
    fn read_loop(&self, conn: &ConnShared, reader: &mut dyn Read, closer: &ReadCloser) {
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 8192];
        'read: loop {
            let n = match reader.read(&mut buf) {
                Ok(0) | Err(_) => break 'read,
                Ok(n) => n,
            };
            decoder.push(&buf[..n]);
            loop {
                match decoder.next_frame() {
                    Ok(Some(Frame::Intact(payload))) => {
                        self.wait_for_window(conn);
                        self.handle_frame(conn, &payload);
                    }
                    Ok(Some(Frame::Corrupt { id })) => {
                        // The frame failed its header CRC: refuse just
                        // that request (best-effort id) and keep the
                        // connection — the stream is still in sync.
                        self.counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        self.push_ready(
                            conn,
                            Response::refusal(
                                id,
                                0,
                                Status::ProtocolError,
                                "request frame failed its checksum",
                            ),
                        );
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Unrecoverable framing corruption: the stream
                        // cannot be re-synchronised. Stop reading; the
                        // responder still flushes everything in flight.
                        self.counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        closer();
                        break 'read;
                    }
                }
            }
        }
    }

    /// Responder loop: poll in-flight tickets, write completions out of
    /// order, stop once the reader is done and nothing is pending.
    fn respond_loop(
        &self,
        conn: &ConnShared,
        writer: &mut dyn std::io::Write,
        closer: &ReadCloser,
    ) {
        let mut write_failed = false;
        loop {
            let mut to_write: Vec<Response> = Vec::new();
            let done = {
                let mut inner = lock(&conn.inner);
                to_write.append(&mut inner.ready);
                let mut i = 0;
                while i < inner.inflight.len() {
                    if let Some(response) = inner.inflight[i].poll() {
                        to_write.push(response);
                        inner.inflight.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                inner.reading_done && inner.inflight.is_empty() && inner.ready.is_empty()
            };
            let idle = to_write.is_empty();
            if !idle {
                // Window space freed: wake a reader blocked on it.
                conn.cv.notify_all();
            }
            for response in to_write {
                self.counters.in_flight.fetch_sub(1, Ordering::AcqRel);
                if write_failed {
                    continue; // keep draining tickets, discard the acks
                }
                // A scan result larger than one frame streams out as
                // continuation frames sharing the response id; the
                // terminal frame clears the `more` marker. Everything
                // else passes through as a single frame.
                for part in split_scan_response(response) {
                    let frame = match encode_response(&part) {
                        Ok(frame) => frame,
                        Err(_) => {
                            // A response still too large to frame (one
                            // pathological entry): refuse it instead of
                            // killing the connection.
                            self.counters
                                .protocol_errors
                                .fetch_add(1, Ordering::Relaxed);
                            let refusal = Response::refusal(
                                part.id,
                                part.opcode,
                                Status::ServerError,
                                "response exceeded the frame size limit",
                            );
                            encode_response(&refusal).expect("refusals are small")
                        }
                    };
                    if writer.write_all(&frame).is_err() {
                        // Peer is gone. Stop writing, EOF the reader, and
                        // keep polling so no ticket is left unobserved.
                        write_failed = true;
                        lock(&conn.inner).write_failed = true;
                        conn.cv.notify_all();
                        closer();
                        break;
                    }
                    self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .bytes_sent
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                }
            }
            if done {
                let _ = writer.flush();
                return;
            }
            if idle {
                // Completions fire on executor threads that cannot signal
                // this condvar, so poll with a short nap instead of a
                // wakeup protocol; 50µs keeps added latency well under
                // the engine's simulated service times.
                let inner = lock(&conn.inner);
                let _ = conn
                    .cv
                    .wait_timeout(inner, Duration::from_micros(50))
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }
    }

    /// Serve one connection to completion (both halves).
    fn serve_conn(self: &Arc<Self>, conn_id: u64, conn: Conn) {
        self.obs
            .trace
            .record(category::CONN_OPEN, None, conn_id, conn.peer().to_string());
        let closer = conn.read_closer();
        let Conn {
            mut reader,
            mut writer,
            ..
        } = conn;
        let state = Arc::new(ConnShared {
            inner: Mutex::new(ConnInner::default()),
            cv: Condvar::new(),
        });
        let responder = {
            let shared = Arc::clone(self);
            let state = Arc::clone(&state);
            let closer = closer.clone();
            std::thread::Builder::new()
                .name(format!("prism-net-resp-{conn_id}"))
                .spawn(move || shared.respond_loop(&state, writer.as_mut(), &closer))
                .expect("spawning a responder thread")
        };
        self.read_loop(&state, reader.as_mut(), &closer);
        {
            let mut inner = lock(&state.inner);
            inner.reading_done = true;
        }
        state.cv.notify_all();
        let _ = responder.join();
        lock(&self.closers).remove(&conn_id);
        self.counters
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
        self.obs
            .trace
            .record(category::CONN_CLOSE, None, conn_id, "");
    }
}

/// A running network server over an engine: accepts connections from a
/// [`Listener`] and serves the wire protocol on each. See the module docs
/// for the threading model and the back-pressure / shutdown contract.
pub struct NetServer<E: ConcurrentKvStore + 'static> {
    shared: Arc<NetShared<E>>,
    listener: Arc<dyn Listener>,
    accept_thread: Option<JoinHandle<()>>,
}

impl<E: ConcurrentKvStore + 'static> NetServer<E> {
    /// Start serving `engine` on `listener`.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] for invalid `options`.
    pub fn start(
        engine: Arc<E>,
        listener: Arc<dyn Listener>,
        options: ServerOptions,
    ) -> Result<Self> {
        Self::start_with_obs(engine, listener, options, None)
    }

    /// Start serving `engine` on `listener`, recording into `obs` (a
    /// private hub when `None`). The hub's registry gets the net-stats
    /// and health sources installed, alongside whatever the embedded
    /// front-end (and, if the engine was opened with the same hub, the
    /// engine itself) already registered — so one
    /// [`MetricsRegistry::snapshot`] covers the whole stack.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] for invalid `options`.
    ///
    /// [`MetricsRegistry::snapshot`]: prism_obs::MetricsRegistry::snapshot
    pub fn start_with_obs(
        engine: Arc<E>,
        listener: Arc<dyn Listener>,
        options: ServerOptions,
        obs: Option<Arc<ObsHub>>,
    ) -> Result<Self> {
        options.validate()?;
        let hub = obs.unwrap_or_default();
        let frontend = Frontend::start_with_obs(engine, options.frontend, Some(Arc::clone(&hub)))?;
        let shared = Arc::new(NetShared {
            frontend,
            obs: hub,
            shutdown: AtomicBool::new(false),
            counters: Counters::new(),
            max_in_flight_per_conn: options.max_in_flight_per_conn,
            closers: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let weak = Arc::downgrade(&shared);
        shared.obs.registry.set_net_source(Box::new(move || {
            weak.upgrade().map(|shared| shared.counters.snapshot())
        }));
        let weak = Arc::downgrade(&shared);
        shared.obs.registry.set_health_source(Box::new(move || {
            weak.upgrade().map(|shared| {
                let engine = shared.frontend.engine();
                HealthReport {
                    partitions: (0..engine.shard_count())
                        .map(|shard| ShardHealthView {
                            shard,
                            health: engine.shard_health(shard),
                        })
                        .collect(),
                    quarantined_objects: engine.quarantined_objects(),
                    outstanding_tickets: shared.frontend.outstanding_tickets(),
                }
            })
        }));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let listener = Arc::clone(&listener);
            std::thread::Builder::new()
                .name("prism-net-accept".into())
                .spawn(move || {
                    let mut next_conn_id = 0u64;
                    loop {
                        let conn = match listener.accept() {
                            Ok(conn) => conn,
                            Err(_) => {
                                if shared.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                std::thread::sleep(Duration::from_millis(1));
                                continue;
                            }
                        };
                        next_conn_id += 1;
                        let conn_id = next_conn_id;
                        shared
                            .counters
                            .connections_accepted
                            .fetch_add(1, Ordering::Relaxed);
                        lock(&shared.closers).insert(conn_id, conn.read_closer());
                        let serving = Arc::clone(&shared);
                        let handle = std::thread::Builder::new()
                            .name(format!("prism-net-conn-{conn_id}"))
                            .spawn(move || serving.serve_conn(conn_id, conn))
                            .expect("spawning a connection thread");
                        lock(&shared.conn_threads).push(handle);
                    }
                })
                .expect("spawning the accept thread")
        };
        Ok(NetServer {
            shared,
            listener,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients dial.
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Snapshot of the server's cumulative wire statistics.
    pub fn stats(&self) -> NetStats {
        self.shared.counters.snapshot()
    }

    /// The observability hub this server records into (shared, or the
    /// private one created at start). Hand it to an
    /// [`AdminServer`](crate::admin::AdminServer) to serve the metrics
    /// over HTTP.
    pub fn obs_hub(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.obs)
    }

    /// Statistics of the embedded submission front-end.
    pub fn frontend_stats(&self) -> prism_types::FrontendStats {
        self.shared.frontend.stats()
    }

    /// Tickets handed out by the embedded front-end that are still
    /// unanswered. Zero once the server is idle — disconnect tests use
    /// this to prove a vanished client strands nothing.
    pub fn outstanding_tickets(&self) -> u64 {
        self.shared.frontend.outstanding_tickets()
    }

    /// The engine being served.
    pub fn engine(&self) -> Arc<E> {
        Arc::clone(self.shared.frontend.engine())
    }

    /// Graceful drain: stop accepting, refuse frames not yet decoded
    /// with [`Status::ShuttingDown`], ack everything already submitted,
    /// then tear down every connection and the front-end's queues.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::Release);
        self.listener.shutdown();
        let _ = accept_thread.join();
        // EOF every connection's reader; responders keep flushing what is
        // already in flight before exiting.
        let closers: Vec<ReadCloser> = lock(&self.shared.closers).values().cloned().collect();
        for closer in closers {
            closer();
        }
        let conn_threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock(&self.shared.conn_threads));
        for handle in conn_threads {
            let _ = handle.join();
        }
        // Tickets dropped by disconnected connections may still be
        // completing inside the front-end; wait until nothing dangles.
        self.shared.frontend.drain();
    }
}

impl<E: ConcurrentKvStore + 'static> Drop for NetServer<E> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
