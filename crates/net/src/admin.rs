//! HTTP/JSON admin plane over the existing [`Listener`]/[`Conn`]
//! transport.
//!
//! An [`AdminServer`] serves a minimal HTTP/1.1 surface off an
//! [`ObsHub`] — the same hub the data-plane layers record into — on any
//! transport the wire protocol runs on, real TCP or the in-process
//! duplex pipe alike:
//!
//! | Endpoint          | Body                                           |
//! |-------------------|------------------------------------------------|
//! | `GET /metrics`    | Prometheus text exposition of the registry     |
//! | `GET /stats.json` | Full [`MetricsSnapshot`] as one JSON object    |
//! | `GET /health`     | Per-shard health rollup (always HTTP 200; the  |
//! |                   | `healthy` field carries the verdict)           |
//! | `GET /trace?last=N` | Last `N` trace events as JSON lines          |
//!
//! Unknown paths get 404, non-GET methods 405, a malformed query 400 —
//! all without dropping the connection (HTTP/1.1 keep-alive; the client
//! closes, or sends `Connection: close`).
//!
//! The scrape side is [`AdminClient`] (persistent) or the one-shot
//! [`http_get`]; both speak just enough HTTP for these four endpoints
//! so tests and the bench runner need no external HTTP stack.
//!
//! [`MetricsSnapshot`]: prism_obs::MetricsSnapshot

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use prism_obs::ObsHub;

use crate::transport::{Conn, Listener, ReadCloser};

/// Default number of trace events served by `GET /trace` when the
/// `last` query parameter is absent.
pub const DEFAULT_TRACE_EVENTS: usize = 256;

/// Hard cap on the size of one admin request's head (request line plus
/// headers); larger requests are refused with 400.
const MAX_REQUEST_HEAD: usize = 16 * 1024;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One parsed admin-plane response, as read back by [`AdminClient`].
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when absent).
    pub content_type: String,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// True for a 2xx status.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

struct Reply {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
}

impl Reply {
    fn ok(content_type: &'static str, body: String) -> Reply {
        Reply {
            status: 200,
            reason: "OK",
            content_type,
            body,
        }
    }

    fn error(status: u16, reason: &'static str, detail: &str) -> Reply {
        Reply {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: format!("{detail}\n"),
        }
    }
}

/// Route one request. Pure: transport and HTTP framing stay in the
/// serving loop, so this is directly unit-testable.
fn route(hub: &ObsHub, method: &str, target: &str) -> Reply {
    if method != "GET" {
        return Reply::error(405, "Method Not Allowed", "only GET is supported");
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    match path {
        "/metrics" => Reply::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            hub.registry.snapshot().to_prometheus(),
        ),
        "/stats.json" => Reply::ok("application/json", hub.registry.snapshot().to_json()),
        "/health" => {
            // Health degradations are data, not server failures: the
            // body carries the verdict and the status stays 200 so
            // scrapers can distinguish "degraded engine" from "broken
            // admin plane".
            let report = hub.registry.snapshot().health.unwrap_or_default();
            Reply::ok("application/json", report.to_json())
        }
        "/trace" => {
            let last = match query {
                None => DEFAULT_TRACE_EVENTS,
                Some(query) => match parse_last(query) {
                    Some(last) => last,
                    None => {
                        return Reply::error(
                            400,
                            "Bad Request",
                            "expected a query of the form last=N",
                        )
                    }
                },
            };
            Reply::ok("application/x-ndjson", hub.trace.dump_json_lines(last))
        }
        _ => Reply::error(404, "Not Found", "unknown path"),
    }
}

/// Parse a `last=N` query string; `None` on anything else.
fn parse_last(query: &str) -> Option<usize> {
    let mut last = None;
    for pair in query.split('&') {
        let (key, value) = pair.split_once('=')?;
        match key {
            "last" => last = Some(value.parse::<usize>().ok()?),
            _ => return None,
        }
    }
    last
}

/// Read one request head (request line + headers) off the stream.
/// `Ok(None)` on a clean EOF before any byte of a request.
fn read_request_head(reader: &mut dyn Read, carry: &mut Vec<u8>) -> io::Result<Option<String>> {
    loop {
        if let Some(end) = find_head_end(carry) {
            let head_bytes: Vec<u8> = carry.drain(..end + 4).collect();
            let head = String::from_utf8(head_bytes)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
            return Ok(Some(head));
        }
        if carry.len() > MAX_REQUEST_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let mut buf = [0u8; 4096];
        let n = reader.read(&mut buf)?;
        if n == 0 {
            if carry.is_empty() {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF mid-request",
            ));
        }
        carry.extend_from_slice(&buf[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_reply(writer: &mut dyn Write, reply: &Reply, keep_alive: bool) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reply.status,
        reply.reason,
        reply.content_type,
        reply.body.len(),
        connection,
    )?;
    writer.write_all(reply.body.as_bytes())?;
    writer.flush()
}

struct AdminShared {
    hub: Arc<ObsHub>,
    shutdown: AtomicBool,
    closers: Mutex<HashMap<u64, ReadCloser>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl AdminShared {
    /// Serve HTTP requests on one connection until the peer closes (or
    /// asks to, or breaks protocol).
    fn serve_conn(&self, conn_id: u64, conn: Conn) {
        let Conn {
            mut reader,
            mut writer,
            ..
        } = conn;
        let mut carry = Vec::new();
        while let Ok(Some(head)) = read_request_head(reader.as_mut(), &mut carry) {
            let mut lines = head.split("\r\n");
            let request_line = lines.next().unwrap_or_default();
            let mut parts = request_line.split_whitespace();
            let (method, target) = match (parts.next(), parts.next(), parts.next()) {
                (Some(method), Some(target), Some(version)) if version.starts_with("HTTP/1") => {
                    (method, target)
                }
                _ => {
                    let reply = Reply::error(400, "Bad Request", "malformed request line");
                    let _ = write_reply(writer.as_mut(), &reply, false);
                    break;
                }
            };
            let mut keep_alive = true;
            let mut body_len = 0usize;
            for line in lines {
                let Some((name, value)) = line.split_once(':') else {
                    continue;
                };
                let value = value.trim();
                if name.eq_ignore_ascii_case("connection") {
                    keep_alive = !value.eq_ignore_ascii_case("close");
                } else if name.eq_ignore_ascii_case("content-length") {
                    body_len = value.parse().unwrap_or(0);
                }
            }
            // GETs have no body, but drain any the client sent so the
            // stream stays in sync for the next keep-alive request.
            if body_len > MAX_REQUEST_HEAD
                || (body_len > 0 && !drain_body(reader.as_mut(), &mut carry, body_len))
            {
                let reply = Reply::error(400, "Bad Request", "unsupported request body");
                let _ = write_reply(writer.as_mut(), &reply, false);
                break;
            }
            let reply = route(&self.hub, method, target);
            if write_reply(writer.as_mut(), &reply, keep_alive).is_err() || !keep_alive {
                break;
            }
        }
        lock(&self.closers).remove(&conn_id);
    }
}

fn drain_body(reader: &mut dyn Read, carry: &mut Vec<u8>, mut remaining: usize) -> bool {
    let buffered = remaining.min(carry.len());
    carry.drain(..buffered);
    remaining -= buffered;
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        match reader.read(&mut buf[..remaining.min(4096)]) {
            Ok(0) | Err(_) => return false,
            Ok(n) => remaining -= n,
        }
    }
    true
}

/// A running admin-plane server: accepts connections from a
/// [`Listener`] and answers the four observability endpoints on each.
/// See the [module docs](self) for the endpoint table.
pub struct AdminServer {
    shared: Arc<AdminShared>,
    listener: Arc<dyn Listener>,
    accept_thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Start serving `hub` on `listener`.
    pub fn start(hub: Arc<ObsHub>, listener: Arc<dyn Listener>) -> AdminServer {
        let shared = Arc::new(AdminShared {
            hub,
            shutdown: AtomicBool::new(false),
            closers: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let listener = Arc::clone(&listener);
            std::thread::Builder::new()
                .name("prism-admin-accept".into())
                .spawn(move || {
                    let mut next_conn_id = 0u64;
                    loop {
                        let conn = match listener.accept() {
                            Ok(conn) => conn,
                            Err(_) => {
                                if shared.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                std::thread::sleep(Duration::from_millis(1));
                                continue;
                            }
                        };
                        next_conn_id += 1;
                        let conn_id = next_conn_id;
                        lock(&shared.closers).insert(conn_id, conn.read_closer());
                        let serving = Arc::clone(&shared);
                        let handle = std::thread::Builder::new()
                            .name(format!("prism-admin-conn-{conn_id}"))
                            .spawn(move || serving.serve_conn(conn_id, conn))
                            .expect("spawning an admin connection thread");
                        lock(&shared.conn_threads).push(handle);
                    }
                })
                .expect("spawning the admin accept thread")
        };
        AdminServer {
            shared,
            listener,
            accept_thread: Some(accept_thread),
        }
    }

    /// The address scrapers dial.
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Stop accepting and tear down every admin connection. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::Release);
        self.listener.shutdown();
        let _ = accept_thread.join();
        let closers: Vec<ReadCloser> = lock(&self.shared.closers).values().cloned().collect();
        for closer in closers {
            closer();
        }
        let conn_threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *lock(&self.shared.conn_threads));
        for handle in conn_threads {
            let _ = handle.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A persistent scrape client: issues `GET`s over one keep-alive
/// connection and parses the responses.
pub struct AdminClient {
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    carry: Vec<u8>,
}

impl AdminClient {
    /// Wrap a dialed connection.
    pub fn new(conn: Conn) -> AdminClient {
        AdminClient {
            reader: conn.reader,
            writer: conn.writer,
            carry: Vec::new(),
        }
    }

    /// Issue `GET path` and read the full response.
    ///
    /// # Errors
    ///
    /// Any transport error, or a response this minimal parser cannot
    /// frame (no `Content-Length`).
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        write!(
            self.writer,
            "GET {path} HTTP/1.1\r\nHost: prism-admin\r\n\r\n"
        )?;
        self.writer.flush()?;
        let head = read_request_head(self.reader.as_mut(), &mut self.carry)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before response"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let mut content_type = String::new();
        let mut content_length: Option<usize> = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            }
        }
        let len = content_length.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "response without Content-Length",
            )
        })?;
        while self.carry.len() < len {
            let mut buf = [0u8; 4096];
            let n = self.reader.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF mid-body"));
            }
            self.carry.extend_from_slice(&buf[..n]);
        }
        let body_bytes: Vec<u8> = self.carry.drain(..len).collect();
        let body = String::from_utf8(body_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(HttpResponse {
            status,
            content_type,
            body,
        })
    }
}

/// One-shot scrape: dial-agnostic `GET path` over a fresh connection.
///
/// # Errors
///
/// See [`AdminClient::get`].
pub fn http_get(conn: Conn, path: &str) -> io::Result<HttpResponse> {
    AdminClient::new(conn).get(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex_listener;
    use prism_obs::trace::category;

    fn test_hub() -> Arc<ObsHub> {
        let hub = Arc::new(ObsHub::default());
        hub.registry.counter("test_total").add(3);
        hub.registry.histogram("test_ns").record(1_000);
        hub.trace
            .record(category::COMPACTION_INSTALL, Some(0), 1, "demoted=4");
        hub
    }

    #[test]
    fn routes_cover_the_four_endpoints_and_errors() {
        let hub = test_hub();
        let metrics = route(&hub, "GET", "/metrics");
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("test_total 3"));
        let stats = route(&hub, "GET", "/stats.json");
        assert_eq!(stats.status, 200);
        assert!(stats.body.contains("\"test_total\":3"));
        let health = route(&hub, "GET", "/health");
        assert_eq!(health.status, 200, "health is 200 even without a source");
        let trace = route(&hub, "GET", "/trace?last=10");
        assert_eq!(trace.status, 200);
        assert!(trace.body.contains("\"category\":\"compaction_install\""));
        assert_eq!(route(&hub, "GET", "/trace?last=x").status, 400);
        assert_eq!(route(&hub, "GET", "/trace?bogus=1").status, 400);
        assert_eq!(route(&hub, "GET", "/nope").status, 404);
        assert_eq!(route(&hub, "POST", "/metrics").status, 405);
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let hub = test_hub();
        let (listener, connector) = duplex_listener();
        let mut server = AdminServer::start(hub, Arc::new(listener));
        let mut client = AdminClient::new(connector.connect().expect("dial"));
        for _ in 0..3 {
            let response = client.get("/metrics").expect("scrape");
            assert_eq!(response.status, 200);
            assert!(response.content_type.starts_with("text/plain"));
            assert!(response.body.contains("test_total 3"));
        }
        let missing = client.get("/absent").expect("scrape");
        assert_eq!(missing.status, 404);
        // The 404 must not have dropped the connection.
        assert_eq!(client.get("/health").expect("scrape").status, 200);
        server.shutdown();
    }

    #[test]
    fn one_shot_http_get_scrapes_trace_lines() {
        let hub = test_hub();
        let (listener, connector) = duplex_listener();
        let mut server = AdminServer::start(hub, Arc::new(listener));
        let response =
            http_get(connector.connect().expect("dial"), "/trace?last=5").expect("scrape");
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/x-ndjson");
        assert_eq!(response.body.lines().count(), 1);
        server.shutdown();
    }

    #[test]
    fn parse_last_accepts_only_the_last_key() {
        assert_eq!(parse_last("last=7"), Some(7));
        assert_eq!(parse_last("last=0"), Some(0));
        assert_eq!(parse_last("last"), None);
        assert_eq!(parse_last("last=-3"), None);
        assert_eq!(parse_last("n=3"), None);
        assert_eq!(parse_last("last=3&other=1"), None);
    }
}
