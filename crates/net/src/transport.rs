//! Byte transports behind one trait: real TCP via [`std::net`] and an
//! in-process duplex pipe so every test runs deterministically without
//! touching the host network stack.
//!
//! A [`Conn`] is a full-duplex byte stream split into an owned reader and
//! writer half (so a server can pump them from two threads) plus a
//! *read-closer*: a handle that unblocks a blocked read with EOF from
//! another thread, which is how graceful shutdown interrupts reader
//! threads without platform-specific tricks.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Unblocks and permanently EOFs the reading half of a [`Conn`] from any
/// thread. Idempotent.
pub type ReadCloser = Arc<dyn Fn() + Send + Sync>;

/// One accepted or dialed full-duplex connection.
pub struct Conn {
    /// The receiving half. Blocking reads return `Ok(0)` (EOF) once the
    /// peer's writer closes or [`Conn::read_closer`] fires.
    pub reader: Box<dyn Read + Send>,
    /// The sending half. Writes fail with [`io::ErrorKind::BrokenPipe`]
    /// once the peer's reader is gone.
    pub writer: Box<dyn Write + Send>,
    closer: ReadCloser,
    peer: String,
}

impl Conn {
    /// A handle that EOFs this connection's reader from another thread.
    pub fn read_closer(&self) -> ReadCloser {
        Arc::clone(&self.closer)
    }

    /// Human-readable peer description for logs and stats.
    pub fn peer(&self) -> &str {
        &self.peer
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn").field("peer", &self.peer).finish()
    }
}

/// Accepts inbound [`Conn`]s. Implemented for TCP and the in-process
/// duplex transport.
pub trait Listener: Send + Sync {
    /// Block until the next connection arrives.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] once [`Listener::shutdown`] was called (and
    /// possibly transient accept errors before that).
    fn accept(&self) -> io::Result<Conn>;

    /// The address clients dial, as a display string.
    fn local_addr(&self) -> String;

    /// Stop accepting: unblocks a blocked [`Listener::accept`], which
    /// (along with all later calls) then returns an error. Idempotent.
    fn shutdown(&self);
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

// ---------------------------------------------------------------------
// TCP

fn tcp_conn(stream: TcpStream, peer: String) -> io::Result<Conn> {
    let reader = stream.try_clone()?;
    let closer_stream = stream.try_clone()?;
    Ok(Conn {
        reader: Box::new(reader),
        writer: Box::new(stream),
        closer: Arc::new(move || {
            // Shutting down only the read direction EOFs a blocked
            // `read` while letting in-flight responses still go out.
            let _ = closer_stream.shutdown(Shutdown::Read);
        }),
        peer,
    })
}

/// A TCP listener implementing [`Listener`].
pub struct TcpServerListener {
    listener: TcpListener,
    addr: SocketAddr,
    closed: AtomicBool,
}

impl TcpServerListener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str) -> io::Result<TcpServerListener> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(TcpServerListener {
            listener,
            addr,
            closed: AtomicBool::new(false),
        })
    }
}

impl Listener for TcpServerListener {
    fn accept(&self) -> io::Result<Conn> {
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "listener shut down",
            ));
        }
        let (stream, peer) = self.listener.accept()?;
        if self.closed.load(Ordering::Acquire) {
            // The wake-up connection from `shutdown` (or a client
            // that raced it); refuse either way.
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "listener shut down",
            ));
        }
        stream.set_nodelay(true).ok();
        tcp_conn(stream, peer.to_string())
    }

    fn local_addr(&self) -> String {
        self.addr.to_string()
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // `std::net` has no way to interrupt `accept`; a self-connection
        // wakes it so it can observe the closed flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Dial a TCP server.
///
/// # Errors
///
/// Propagates the connect failure.
pub fn tcp_connect(addr: &str) -> io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    tcp_conn(stream, addr.to_string())
}

// ---------------------------------------------------------------------
// In-process duplex pipe

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    writer_closed: bool,
    reader_closed: bool,
}

#[derive(Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

impl Pipe {
    fn close_reader(&self) {
        lock(&self.state).reader_closed = true;
        self.cv.notify_all();
    }

    fn close_writer(&self) {
        lock(&self.state).writer_closed = true;
        self.cv.notify_all();
    }
}

struct PipeReader {
    pipe: Arc<Pipe>,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = lock(&self.pipe.state);
        loop {
            if state.reader_closed {
                return Ok(0); // closed locally: EOF
            }
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("n bounded by len");
                }
                return Ok(n);
            }
            if state.writer_closed {
                return Ok(0); // peer gone and buffer drained: EOF
            }
            state = self
                .pipe
                .cv
                .wait(state)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.pipe.close_reader();
    }
}

struct PipeWriter {
    pipe: Arc<Pipe>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = lock(&self.pipe.state);
        if state.reader_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe reader closed",
            ));
        }
        state.buf.extend(buf.iter().copied());
        self.pipe.cv.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.pipe.close_writer();
    }
}

/// Create a connected pair of in-process duplex connections (two pipes,
/// crosswise). Data written to one side is read by the other; dropping a
/// side's writer EOFs the peer's reader; closing a side's reader makes
/// the peer's writes fail with `BrokenPipe`.
pub fn duplex_pair(client_peer: &str, server_peer: &str) -> (Conn, Conn) {
    let client_to_server = Arc::new(Pipe::default());
    let server_to_client = Arc::new(Pipe::default());
    let client = Conn {
        reader: Box::new(PipeReader {
            pipe: Arc::clone(&server_to_client),
        }),
        writer: Box::new(PipeWriter {
            pipe: Arc::clone(&client_to_server),
        }),
        closer: {
            let pipe = Arc::clone(&server_to_client);
            Arc::new(move || pipe.close_reader())
        },
        peer: server_peer.to_string(),
    };
    let server = Conn {
        reader: Box::new(PipeReader {
            pipe: Arc::clone(&client_to_server),
        }),
        writer: Box::new(PipeWriter {
            pipe: server_to_client,
        }),
        closer: {
            let pipe = client_to_server;
            Arc::new(move || pipe.close_reader())
        },
        peer: client_peer.to_string(),
    };
    (client, server)
}

#[derive(Default)]
struct DuplexQueue {
    conns: VecDeque<Conn>,
    closed: bool,
    dialed: u64,
}

struct DuplexShared {
    queue: Mutex<DuplexQueue>,
    cv: Condvar,
}

/// The accept side of the in-process transport.
pub struct DuplexListener {
    shared: Arc<DuplexShared>,
}

/// The dial side of the in-process transport: cheap to clone, one per
/// client.
#[derive(Clone)]
pub struct DuplexConnector {
    shared: Arc<DuplexShared>,
}

/// Create a connected in-process listener / connector pair — the duplex
/// analogue of binding a TCP port and handing out its address.
pub fn duplex_listener() -> (DuplexListener, DuplexConnector) {
    let shared = Arc::new(DuplexShared {
        queue: Mutex::new(DuplexQueue::default()),
        cv: Condvar::new(),
    });
    (
        DuplexListener {
            shared: Arc::clone(&shared),
        },
        DuplexConnector { shared },
    )
}

impl DuplexConnector {
    /// Dial the listener.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotConnected`] once the listener shut down.
    pub fn connect(&self) -> io::Result<Conn> {
        let mut queue = lock(&self.shared.queue);
        if queue.closed {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "duplex listener shut down",
            ));
        }
        queue.dialed += 1;
        let n = queue.dialed;
        let (client, server) = duplex_pair(&format!("duplex-client-{n}"), "duplex-server");
        queue.conns.push_back(server);
        self.shared.cv.notify_all();
        Ok(client)
    }
}

impl Listener for DuplexListener {
    fn accept(&self) -> io::Result<Conn> {
        let mut queue = lock(&self.shared.queue);
        loop {
            if let Some(conn) = queue.conns.pop_front() {
                return Ok(conn);
            }
            if queue.closed {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "duplex listener shut down",
                ));
            }
            queue = self
                .shared
                .cv
                .wait(queue)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    fn local_addr(&self) -> String {
        "duplex:in-process".to_string()
    }

    fn shutdown(&self) {
        lock(&self.shared.queue).closed = true;
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_pair_moves_bytes_both_ways() {
        let (mut client, mut server) = duplex_pair("c", "s");
        client.writer.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        server.reader.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
        server.writer.write_all(b"pong").expect("write");
        client.reader.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn dropping_a_writer_eofs_the_peer_after_draining() {
        let (mut client, server) = duplex_pair("c", "s");
        client.writer.write_all(b"last").expect("write");
        drop(client);
        let mut reader = server.reader;
        let mut got = Vec::new();
        reader.read_to_end(&mut got).expect("drain then EOF");
        assert_eq!(got, b"last");
    }

    #[test]
    fn read_closer_unblocks_a_parked_reader() {
        let (_client, server) = duplex_pair("c", "s");
        let closer = server.read_closer();
        let mut reader = server.reader;
        let handle = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            reader.read(&mut buf).expect("EOF, not error")
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        closer();
        assert_eq!(handle.join().expect("reader thread"), 0);
    }

    #[test]
    fn writes_into_a_closed_reader_break_the_pipe() {
        let (mut client, server) = duplex_pair("c", "s");
        drop(server.reader);
        let err = loop {
            match client.writer.write_all(b"x") {
                Ok(()) => continue,
                Err(err) => break err,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn duplex_listener_accepts_dialed_connections() {
        let (listener, connector) = duplex_listener();
        let mut client = connector.connect().expect("dial");
        let mut server = listener.accept().expect("accept");
        client.writer.write_all(b"hi").expect("write");
        let mut buf = [0u8; 2];
        server.reader.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hi");
        listener.shutdown();
        assert!(connector.connect().is_err());
        assert!(listener.accept().is_err());
    }

    #[test]
    fn duplex_listener_shutdown_unblocks_accept() {
        let (listener, _connector) = duplex_listener();
        let listener = Arc::new(listener);
        let accepting = Arc::clone(&listener);
        let handle = std::thread::spawn(move || accepting.accept().is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        listener.shutdown();
        assert!(handle.join().expect("accept thread"));
    }

    #[test]
    fn tcp_loopback_round_trips_when_sockets_are_available() {
        // The sandbox allows loopback sockets; if binding ever fails in a
        // more restricted environment the duplex transport still covers
        // the protocol, so only assert when the bind succeeds.
        let Ok(listener) = TcpServerListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: cannot bind loopback");
            return;
        };
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let mut buf = [0u8; 5];
            conn.reader.read_exact(&mut buf).expect("read");
            conn.writer.write_all(&buf).expect("echo");
            buf
        });
        let mut client = tcp_connect(&addr).expect("connect");
        client.writer.write_all(b"tcp-1").expect("write");
        let mut echo = [0u8; 5];
        client.reader.read_exact(&mut echo).expect("read");
        assert_eq!(&echo, b"tcp-1");
        assert_eq!(&server.join().expect("server thread"), b"tcp-1");
    }

    #[test]
    fn tcp_listener_shutdown_unblocks_accept() {
        let Ok(listener) = TcpServerListener::bind("127.0.0.1:0") else {
            eprintln!("skipping: cannot bind loopback");
            return;
        };
        let listener = Arc::new(listener);
        let accepting = Arc::clone(&listener);
        let handle = std::thread::spawn(move || accepting.accept().is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        listener.shutdown();
        assert!(handle.join().expect("accept thread"));
    }
}
