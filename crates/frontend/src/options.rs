//! Front-end configuration.

use prism_types::{PrismError, Result};

/// Executors default to the engine's shard count clamped to this many
/// threads: one executor per shard stops paying off once executors
/// outnumber the cores left over for compaction workers, and the whole
/// point of the front-end is that a few threads serve many clients.
pub const DEFAULT_EXECUTOR_CLAMP: usize = 4;

/// Configuration of a [`crate::Frontend`].
///
/// # Example
///
/// ```
/// use prism_frontend::FrontendOptions;
///
/// let options = FrontendOptions {
///     executors: 2,
///     ..FrontendOptions::default()
/// };
/// assert_eq!(options.resolved_executors(8), 2);
/// // `executors == 0` auto-sizes from the engine's shard count.
/// assert_eq!(FrontendOptions::default().resolved_executors(8), 4);
/// assert_eq!(FrontendOptions::default().resolved_executors(2), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendOptions {
    /// Number of executor threads draining the partition queues. `0` (the
    /// default) auto-sizes to `min(shard_count, 4)`; explicit values are
    /// clamped to the shard count (an executor with no partitions would
    /// never have work).
    pub executors: usize,
    /// Bound of each per-partition request queue. A full queue blocks
    /// [`crate::Frontend::submit_put`] and rejects
    /// [`crate::Frontend::try_submit_put`] with back-pressure.
    pub queue_capacity: usize,
    /// Most write entries installed as one coalesced group. A drain with
    /// more pending writes installs several groups back to back (whole
    /// requests are never split across groups).
    pub max_coalesce: usize,
    /// Queue depth at which an enqueue wakes a *neighbouring* executor in
    /// addition to the partition's owner, so an idle peer steals the
    /// backlog instead of letting one hot partition serialise on its
    /// owner. Idle executors always steal-sweep foreign partitions before
    /// parking regardless of this knob; it only controls the proactive
    /// wake-up. `0` disables helper wake-ups.
    pub steal_help_depth: usize,
}

impl Default for FrontendOptions {
    fn default() -> Self {
        FrontendOptions {
            executors: 0,
            queue_capacity: 64,
            max_coalesce: 128,
            steal_help_depth: 8,
        }
    }
}

impl FrontendOptions {
    /// The executor-thread count for an engine with `shard_count` shards.
    pub fn resolved_executors(&self, shard_count: usize) -> usize {
        let auto = shard_count.clamp(1, DEFAULT_EXECUTOR_CLAMP);
        match self.executors {
            0 => auto,
            n => n.min(shard_count.max(1)),
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] describing the first invalid
    /// field found.
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(PrismError::InvalidConfig(
                "frontend queue_capacity must be non-zero".into(),
            ));
        }
        if self.max_coalesce == 0 {
            return Err(PrismError::InvalidConfig(
                "frontend max_coalesce must be non-zero".into(),
            ));
        }
        if self.executors > 64 {
            return Err(PrismError::InvalidConfig(
                "more than 64 frontend executors is not supported".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_auto_size() {
        let options = FrontendOptions::default();
        options.validate().unwrap();
        assert_eq!(options.resolved_executors(1), 1);
        assert_eq!(options.resolved_executors(8), DEFAULT_EXECUTOR_CLAMP);
        assert_eq!(options.resolved_executors(3), 3);
    }

    #[test]
    fn explicit_executors_are_clamped_to_shards() {
        let options = FrontendOptions {
            executors: 8,
            ..FrontendOptions::default()
        };
        assert_eq!(options.resolved_executors(2), 2);
        assert_eq!(options.resolved_executors(16), 8);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let bad = FrontendOptions {
            queue_capacity: 0,
            ..FrontendOptions::default()
        };
        assert!(bad.validate().is_err());
        let bad = FrontendOptions {
            max_coalesce: 0,
            ..FrontendOptions::default()
        };
        assert!(bad.validate().is_err());
        let bad = FrontendOptions {
            executors: 65,
            ..FrontendOptions::default()
        };
        assert!(bad.validate().is_err());
    }
}
