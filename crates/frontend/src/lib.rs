//! Async submission front-end: per-partition request queues with
//! group-commit coalescing.
//!
//! PrismDB's tiering machinery (pinning, demotion, promotion) assumes a
//! server front-end that keeps many client requests in flight, so the
//! storage engine — not client scheduling — is the bottleneck. Driving
//! [`prism_types::ConcurrentKvStore`] directly burns one OS thread per
//! in-flight client; this crate multiplexes hundreds of *logical* clients
//! onto a small pool of executor threads instead:
//!
//! * Clients enqueue requests onto **bounded per-partition MPSC queues**
//!   ([`Frontend::submit_put`] and friends) and receive a
//!   [`prism_types::Ticket`] they can [`poll`](prism_types::Ticket::poll)
//!   (non-blocking, multiplexed) or [`wait`](prism_types::Ticket::wait)
//!   (park until done) on. [`Frontend::try_submit_put`] is the
//!   non-blocking variant that reports back-pressure
//!   ([`prism_types::PrismError::Backpressure`]) instead of waiting for
//!   queue space — with the queue capacity shrunk while the engine's
//!   per-shard watermark pressure hint
//!   ([`prism_types::ConcurrentKvStore::shard_write_pressure`]) is high.
//! * A pool of **executor threads** ([`FrontendOptions::executors`],
//!   default = the engine's shard count clamped to 4) drains the queues.
//!   Each drain coalesces *every pending write of that partition* into
//!   one [`prism_types::WriteBatch`] installed via the engine's
//!   group-commit [`apply_batch`](prism_types::ConcurrentKvStore::apply_batch)
//!   path, then answers the drained reads under the engine's read locks.
//!   Write coalescing therefore **emerges from queue pressure**: the more
//!   logical clients are in flight, the wider the groups — no client-side
//!   buffering required.
//! * Executors **steal work**: partitions have owning executors (partition
//!   *p* belongs to executor *p mod E*) for locality, but an executor
//!   whose own partitions are empty sweeps everyone else's queues before
//!   parking, and an enqueue that finds a deep backlog
//!   ([`FrontendOptions::steal_help_depth`]) wakes a rotating peer to
//!   help. A skew-hot partition (Zipfian/latest workloads) is therefore
//!   served by the whole pool, not throttled by one owner. A per-partition
//!   drain lock serialises whole drains (swap + service), so stealing
//!   cannot reorder a partition's requests;
//!   [`prism_types::FrontendStats::stolen_drains`] counts stolen drains.
//!
//! # Ordering and durability contract
//!
//! Requests on one partition are serviced in submission order *within
//! each class*: writes apply in submission order, and a drained read
//! executes after the writes drained with it. A read is guaranteed to
//! observe every write that was **acked** (ticket completed) before the
//! read was submitted; it may additionally observe writes submitted
//! concurrently (reads are never stale, only fresh). Ops that were
//! submitted but not yet acked live only in the queue: a crash may lose
//! them, while **acked ops are durable** — they were installed through
//! `apply_batch`, which PrismDB persists to NVM synchronously, so they
//! survive `crash_and_recover`.
//!
//! Write errors are *group-scoped only on retry*: a failing coalesced
//! group is re-applied part by part, so only the requests that actually
//! fail see the error.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use prism_frontend::{Frontend, FrontendOptions};
//! use prism_types::{Key, MemStore, MutexKv, Value};
//!
//! let engine = Arc::new(MutexKv::new(MemStore::default()));
//! let mut frontend = Frontend::start(engine, FrontendOptions::default())?;
//! let write = frontend.submit_put(Key::from_id(1), Value::filled(64, 7))?;
//! write.wait()?; // acked: durable and visible from here on
//! let read = frontend.submit_get(&Key::from_id(1))?;
//! assert!(read.wait()?.value.is_some());
//! frontend.shutdown();
//! # Ok::<(), prism_types::PrismError>(())
//! ```

mod frontend;
mod options;

pub use frontend::{Frontend, ReadTicket, ScanTicket, WriteTicket};
pub use options::FrontendOptions;
