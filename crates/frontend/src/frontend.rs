//! The submission subsystem: bounded per-partition queues, the executor
//! pool, and the coalescing drain loop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use prism_obs::{LatencyHistogram, ObsHub};
use prism_types::{
    completion_pair_gauged, BatchOp, Completion, ConcurrentKvStore, FrontendStats, Key, Lookup,
    Nanos, PrismError, Result, ScanResult, Ticket, TicketGauge, Value, WriteBatch,
};

use crate::options::FrontendOptions;

/// Request class a per-stage histogram is keyed by. Writes with one op
/// are `put`, multi-op writes are `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Get = 0,
    Put = 1,
    Batch = 2,
    Scan = 3,
}

const OP_CLASSES: [(&str, OpClass); 4] = [
    ("get", OpClass::Get),
    ("put", OpClass::Put),
    ("batch", OpClass::Batch),
    ("scan", OpClass::Scan),
];

/// Wall-clock per-stage histograms the front-end records into: for each
/// op class, the time a request waited in its partition queue
/// (`frontend_queue_wait_*_ns`), the wall time the engine call took
/// (`frontend_service_*_ns`), and the end-to-end submission→completion
/// latency (`frontend_e2e_*_ns`); plus the steal-latency histogram (age
/// of the oldest request in a stolen drain) and whole-drain durations.
/// All instruments live in the shared [`ObsHub`] registry, so the admin
/// plane serves them by name.
struct FrontendObs {
    hub: Arc<ObsHub>,
    queue_wait: [Arc<LatencyHistogram>; 4],
    service: [Arc<LatencyHistogram>; 4],
    e2e: [Arc<LatencyHistogram>; 4],
    steal_latency: Arc<LatencyHistogram>,
    drain: Arc<LatencyHistogram>,
}

impl FrontendObs {
    fn new(hub: Arc<ObsHub>) -> Self {
        let stage = |stage: &str| -> [Arc<LatencyHistogram>; 4] {
            OP_CLASSES.map(|(class, _)| {
                hub.registry
                    .histogram(&format!("frontend_{stage}_{class}_ns"))
            })
        };
        FrontendObs {
            queue_wait: stage("queue_wait"),
            service: stage("service"),
            e2e: stage("e2e"),
            steal_latency: hub.registry.histogram("frontend_steal_latency_ns"),
            drain: hub.registry.histogram("frontend_drain_ns"),
            hub,
        }
    }

    #[inline]
    fn record_stage(&self, stage: &[Arc<LatencyHistogram>; 4], class: OpClass, ns: u128) {
        stage[class as usize].record(clamp_u64(ns));
    }
}

#[inline]
fn clamp_u64(ns: u128) -> u64 {
    ns.min(u64::MAX as u128) as u64
}

/// Ticket for a submitted write (put, delete or batch): resolves to the
/// simulated latency of the group(s) that installed it.
pub type WriteTicket = Ticket<Result<Nanos>>;
/// Ticket for a submitted point read.
pub type ReadTicket = Ticket<Result<Lookup>>;
/// Ticket for a submitted scan.
pub type ScanTicket = Ticket<Result<ScanResult>>;

/// Aggregates the per-partition parts of one write submission: a single
/// put/delete has one part, a cross-partition batch one part per touched
/// partition. The last part to finish completes the client's ticket with
/// the slowest part's latency (parts install on different partitions in
/// parallel) or the first error observed.
struct WriteAgg {
    remaining: AtomicUsize,
    latency: Mutex<Nanos>,
    error: Mutex<Option<PrismError>>,
    completion: Mutex<Option<Completion<Result<Nanos>>>>,
}

impl WriteAgg {
    fn new(parts: usize, gauge: &TicketGauge) -> (Arc<Self>, WriteTicket) {
        let (completion, ticket) = completion_pair_gauged(gauge);
        (
            Arc::new(WriteAgg {
                remaining: AtomicUsize::new(parts),
                latency: Mutex::new(Nanos::ZERO),
                error: Mutex::new(None),
                completion: Mutex::new(Some(completion)),
            }),
            ticket,
        )
    }

    fn finish(&self, result: Result<Nanos>) {
        match result {
            Ok(latency) => {
                let mut slowest = lock(&self.latency);
                *slowest = (*slowest).max(latency);
            }
            Err(err) => {
                lock(&self.error).get_or_insert(err);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let completion = lock(&self.completion)
                .take()
                .expect("a write aggregate completes exactly once");
            let result = match lock(&self.error).take() {
                Some(err) => Err(err),
                None => Ok(*lock(&self.latency)),
            };
            completion.complete(result);
        }
    }
}

/// One queued request. Every variant carries its enqueue instant so the
/// drain can decompose latency into queue-wait / service / end-to-end.
enum Request {
    /// Coalescable write work: the ops of one part, in submission order.
    Write(Vec<BatchOp>, Arc<WriteAgg>, Instant),
    Get(Key, Completion<Result<Lookup>>, Instant),
    Scan(Key, usize, Completion<Result<ScanResult>>, Instant),
}

impl Request {
    fn enqueued_at(&self) -> Instant {
        match self {
            Request::Write(_, _, at) | Request::Get(_, _, at) | Request::Scan(_, _, _, at) => *at,
        }
    }

    fn class(&self) -> OpClass {
        match self {
            Request::Write(ops, ..) if ops.len() == 1 => OpClass::Put,
            Request::Write(..) => OpClass::Batch,
            Request::Get(..) => OpClass::Get,
            Request::Scan(..) => OpClass::Scan,
        }
    }
}

struct PartitionQueue {
    items: Mutex<VecDeque<Request>>,
    /// Signalled after a drain frees queue space, for blocked submitters.
    not_full: Condvar,
    /// Serialises whole drains (swap + service) of this partition, so a
    /// stealing executor and the owner can never interleave two drained
    /// batches — the per-partition submission-order contract survives
    /// work stealing. Always `try_lock`ed: a held lock means someone is
    /// already servicing the partition, so the contender moves on.
    drain_lock: Mutex<()>,
}

/// Wake-up channel of one executor thread.
struct ExecSignal {
    pending: Mutex<bool>,
    cv: Condvar,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

struct Shared<E> {
    engine: Arc<E>,
    queue_capacity: usize,
    max_coalesce: usize,
    /// Queue depth at which an enqueue also wakes a helper executor (see
    /// [`FrontendOptions::steal_help_depth`]; `0` disables).
    steal_help_depth: usize,
    queues: Vec<PartitionQueue>,
    signals: Vec<ExecSignal>,
    shutdown: AtomicBool,
    concurrent_reads: bool,
    /// Counts tickets handed out but not yet completed/abandoned; every
    /// completion pair this front-end creates is gauged on it, so a zero
    /// reading after a drain proves no client request was stranded.
    gauge: TicketGauge,
    /// Cached per-partition watermark hint, refreshed by the executor at
    /// the end of each drain (writes only enter the engine through
    /// drains, so that is exactly when pressure rises; a background
    /// compaction lowering it is picked up one drain later). Submitters
    /// read this flag instead of querying the engine, keeping
    /// `try_submit` free of engine-lock traffic.
    pressured: Vec<AtomicBool>,
    // Statistics (see `prism_types::FrontendStats`).
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    coalesced_groups: AtomicU64,
    coalesced_entries: AtomicU64,
    wakeups: AtomicU64,
    steals: AtomicU64,
    /// Rotates which peer a helper wake-up targets, so one hot partition
    /// spreads its overflow across every other executor instead of
    /// pinning a single neighbour.
    help_rr: AtomicUsize,
    /// Rotates the start index of the idle steal sweep, so contending
    /// idle executors fan out across the foreign queues instead of all
    /// scanning from partition 0 and colliding on the same drain locks.
    steal_rr: AtomicUsize,
    depth: AtomicU64,
    max_queue_depth: AtomicU64,
    /// High-water mark of the *total* queued-request count (all
    /// partition queues combined).
    max_total_depth: AtomicU64,
    /// Per-stage wall-clock histograms and the shared observability hub.
    obs: FrontendObs,
    /// Virtual-time accounting for the benchmark harness: simulated time
    /// each executor spent servicing requests, and the serial (write)
    /// work charged to each engine shard.
    exec_clocks: Vec<AtomicU64>,
    shard_serial: Vec<AtomicU64>,
}

impl<E: ConcurrentKvStore> Shared<E> {
    fn executor_of(&self, partition: usize) -> usize {
        partition % self.signals.len()
    }

    fn signal(&self, partition: usize) {
        self.signal_executor(self.executor_of(partition));
    }

    fn signal_executor(&self, exec_id: usize) {
        let signal = &self.signals[exec_id];
        *lock(&signal.pending) = true;
        signal.cv.notify_one();
    }

    /// Wake one executor that does *not* own `partition`, rotating the
    /// choice, so an idle peer steal-sweeps its backlog. No-op with a
    /// single executor.
    fn signal_helper(&self, partition: usize) {
        let executors = self.signals.len();
        if executors < 2 {
            return;
        }
        let owner = self.executor_of(partition);
        let offset = self.help_rr.fetch_add(1, Ordering::Relaxed) % (executors - 1);
        self.signal_executor((owner + 1 + offset) % executors);
    }

    fn signal_all(&self) {
        for signal in &self.signals {
            *lock(&signal.pending) = true;
            signal.cv.notify_all();
        }
        for queue in &self.queues {
            queue.not_full.notify_all();
        }
    }

    /// Enqueue onto a partition queue, blocking while it is full.
    fn enqueue(&self, partition: usize, request: Request) -> Result<()> {
        let queue = &self.queues[partition];
        let depth;
        {
            let mut items = lock(&queue.items);
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    return Err(PrismError::ShuttingDown);
                }
                if items.len() < self.queue_capacity {
                    break;
                }
                items = queue
                    .not_full
                    .wait(items)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            items.push_back(request);
            // Count while still holding the queue lock: a drain that can
            // already see the item must never decrement `depth` (or
            // complete the request) before these increments land.
            depth = items.len();
            self.note_enqueued(depth);
        }
        self.signal(partition);
        if self.steal_help_depth != 0 && depth >= self.steal_help_depth {
            self.signal_helper(partition);
        }
        Ok(())
    }

    /// Enqueue without blocking; reports back-pressure when the queue is
    /// at `effective_capacity` (shrunk by the engine's watermark hint for
    /// writes).
    fn try_enqueue(
        &self,
        partition: usize,
        effective_capacity: usize,
        request: Request,
    ) -> Result<()> {
        let queue = &self.queues[partition];
        let help_depth;
        {
            let mut items = lock(&queue.items);
            if self.shutdown.load(Ordering::Acquire) {
                return Err(PrismError::ShuttingDown);
            }
            if items.len() >= effective_capacity {
                let depth = items.len();
                drop(items);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(PrismError::Backpressure { partition, depth });
            }
            items.push_back(request);
            // See `enqueue`: counters move under the queue lock.
            help_depth = items.len();
            self.note_enqueued(help_depth);
        }
        self.signal(partition);
        if self.steal_help_depth != 0 && help_depth >= self.steal_help_depth {
            self.signal_helper(partition);
        }
        Ok(())
    }

    /// Caller holds the partition's queue lock with the request pushed.
    fn note_enqueued(&self, partition_depth: usize) {
        let total = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_total_depth.fetch_max(total, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(partition_depth as u64, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// The queue bound `try_submit` enforces for writes: halved while the
    /// partition's cached watermark hint reports it at or past its
    /// compaction high watermark, so admission slows down *before* writes
    /// start stalling inside the engine. Reads the per-drain cache, never
    /// the engine, so the submit path stays non-blocking.
    fn effective_write_capacity(&self, partition: usize) -> usize {
        if self.pressured[partition].load(Ordering::Relaxed) {
            (self.queue_capacity / 2).max(1)
        } else {
            self.queue_capacity
        }
    }

    /// Install pending write parts as coalesced groups of at most
    /// `max_coalesce` entries (whole parts are never split). On a group
    /// error the group is retried part by part so only the failing
    /// requests observe the error. Returns the summed simulated latency
    /// of the installed groups (the executor's serial work).
    fn flush_writes(
        &self,
        partition: usize,
        parts: &mut Vec<(Vec<BatchOp>, Arc<WriteAgg>, Instant)>,
    ) -> Nanos {
        let mut total = Nanos::ZERO;
        while !parts.is_empty() {
            let mut take = 0;
            let mut entries = 0;
            for (ops, _, _) in parts.iter() {
                if take > 0 && entries + ops.len() > self.max_coalesce {
                    break;
                }
                take += 1;
                entries += ops.len();
            }
            let mut group: Vec<(Vec<BatchOp>, Arc<WriteAgg>, Instant)> =
                parts.drain(..take).collect();
            self.coalesced_groups.fetch_add(1, Ordering::Relaxed);
            self.coalesced_entries
                .fetch_add(entries as u64, Ordering::Relaxed);
            // Count before completing: a client that just saw its ticket
            // resolve must never observe `completed < submitted` for it.
            self.completed
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            if group.len() == 1 {
                // The common light-pressure case: a per-part retry cannot
                // differ from the group, so move the payload instead of
                // cloning it.
                let (ops, agg, enqueued_at) = group.pop().expect("one part");
                let class = if ops.len() == 1 {
                    OpClass::Put
                } else {
                    OpClass::Batch
                };
                let mut batch = WriteBatch::with_capacity(ops.len());
                batch.extend(ops);
                let service_start = Instant::now();
                let result = self.engine.apply_batch(batch);
                let service = service_start.elapsed();
                if let Ok(latency) = result {
                    self.charge_write(partition, latency);
                    total += latency;
                }
                agg.finish(result);
                self.obs
                    .record_stage(&self.obs.service, class, service.as_nanos());
                self.obs
                    .record_stage(&self.obs.e2e, class, enqueued_at.elapsed().as_nanos());
                continue;
            }
            let mut batch = WriteBatch::with_capacity(entries);
            for (ops, _, _) in &group {
                batch.extend(ops.iter().cloned());
            }
            let service_start = Instant::now();
            match self.engine.apply_batch(batch) {
                Ok(latency) => {
                    // The group installed as one engine call; every part
                    // shares the group's wall-clock service time.
                    let service = service_start.elapsed();
                    self.charge_write(partition, latency);
                    total += latency;
                    for (ops, agg, enqueued_at) in group {
                        let class = if ops.len() == 1 {
                            OpClass::Put
                        } else {
                            OpClass::Batch
                        };
                        agg.finish(Ok(latency));
                        self.obs
                            .record_stage(&self.obs.service, class, service.as_nanos());
                        self.obs.record_stage(
                            &self.obs.e2e,
                            class,
                            enqueued_at.elapsed().as_nanos(),
                        );
                    }
                }
                Err(_) => {
                    // Shared fate would fail innocent bystanders (e.g. one
                    // client's oversized value rejecting the whole group):
                    // retry each part alone.
                    for (ops, agg, enqueued_at) in group {
                        let class = if ops.len() == 1 {
                            OpClass::Put
                        } else {
                            OpClass::Batch
                        };
                        let mut batch = WriteBatch::with_capacity(ops.len());
                        batch.extend(ops);
                        let service_start = Instant::now();
                        let result = self.engine.apply_batch(batch);
                        let service = service_start.elapsed();
                        if let Ok(latency) = result {
                            self.charge_write(partition, latency);
                            total += latency;
                        }
                        agg.finish(result);
                        self.obs
                            .record_stage(&self.obs.service, class, service.as_nanos());
                        self.obs.record_stage(
                            &self.obs.e2e,
                            class,
                            enqueued_at.elapsed().as_nanos(),
                        );
                    }
                }
            }
        }
        total
    }

    fn charge_write(&self, partition: usize, latency: Nanos) {
        self.shard_serial[partition].fetch_add(latency.as_nanos(), Ordering::Relaxed);
    }

    /// Drain and service one partition queue. Writes install first (all
    /// coalesced), then the drained reads run against the resulting state
    /// — see the crate-level ordering contract. `stolen` marks a drain by
    /// an executor that does not own the partition (statistics only; the
    /// drain lock is what keeps stealing safe).
    fn drain_partition(&self, exec_id: usize, partition: usize, stolen: bool) -> bool {
        // Hold the drain lock across swap *and* service: two executors
        // interleaving "swap batch A / swap batch B / service B / service
        // A" would reorder writes across drains. `try_lock` because a
        // held lock means the partition is already being serviced.
        let _draining = match self.queues[partition].drain_lock.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poison)) => poison.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return false,
        };
        let drained = {
            let mut items = lock(&self.queues[partition].items);
            if items.is_empty() {
                return false;
            }
            std::mem::take(&mut *items)
        };
        if stolen {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        self.queues[partition].not_full.notify_all();
        self.depth
            .fetch_sub(drained.len() as u64, Ordering::Relaxed);
        // Queue-wait ends here for everything in this batch: each request
        // waited from its enqueue instant to the moment the drain picked
        // it up. A stolen drain additionally records the age of its
        // oldest request as the steal latency — how stale a foreign
        // backlog was before an idle peer got to it.
        let drain_start = Instant::now();
        let mut oldest_wait_ns: u128 = 0;
        for request in &drained {
            let waited = drain_start
                .saturating_duration_since(request.enqueued_at())
                .as_nanos();
            oldest_wait_ns = oldest_wait_ns.max(waited);
            self.obs
                .record_stage(&self.obs.queue_wait, request.class(), waited);
        }
        if stolen {
            self.obs.steal_latency.record(clamp_u64(oldest_wait_ns));
        }
        let mut exec_time = Nanos::ZERO;
        let mut writes: Vec<(Vec<BatchOp>, Arc<WriteAgg>, Instant)> = Vec::new();
        let mut reads: Vec<Request> = Vec::new();
        for request in drained {
            match request {
                Request::Write(ops, agg, at) => writes.push((ops, agg, at)),
                read => reads.push(read),
            }
        }
        exec_time += self.flush_writes(partition, &mut writes);
        for request in reads {
            match request {
                Request::Write(..) => unreachable!("writes were split off above"),
                Request::Get(key, completion, enqueued_at) => {
                    let service_start = Instant::now();
                    let result = self.engine.get(&key);
                    let service = service_start.elapsed();
                    if let Ok(lookup) = &result {
                        exec_time += lookup.latency;
                        if !self.concurrent_reads {
                            self.charge_write(partition, lookup.latency);
                        }
                    }
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    completion.complete(result);
                    self.obs
                        .record_stage(&self.obs.service, OpClass::Get, service.as_nanos());
                    self.obs.record_stage(
                        &self.obs.e2e,
                        OpClass::Get,
                        enqueued_at.elapsed().as_nanos(),
                    );
                }
                Request::Scan(start, count, completion, enqueued_at) => {
                    let service_start = Instant::now();
                    let result = self.engine.scan(&start, count);
                    let service = service_start.elapsed();
                    if let Ok(scan) = &result {
                        exec_time += scan.latency;
                        if !self.concurrent_reads {
                            // A scan may hold several shard locks at once.
                            for shard in self.engine.shards_for_scan(&start) {
                                self.shard_serial[shard]
                                    .fetch_add(scan.latency.as_nanos(), Ordering::Relaxed);
                            }
                        }
                    }
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    completion.complete(result);
                    self.obs
                        .record_stage(&self.obs.service, OpClass::Scan, service.as_nanos());
                    self.obs.record_stage(
                        &self.obs.e2e,
                        OpClass::Scan,
                        enqueued_at.elapsed().as_nanos(),
                    );
                }
            }
        }
        self.obs
            .drain
            .record(clamp_u64(drain_start.elapsed().as_nanos()));
        self.exec_clocks[exec_id].fetch_add(exec_time.as_nanos(), Ordering::Relaxed);
        // Refresh the partition's watermark hint now that this drain's
        // writes are installed (the executor may briefly take the
        // engine's read lock here — the submitters never do).
        self.pressured[partition].store(
            self.engine.shard_write_pressure(partition) >= 1.0,
            Ordering::Relaxed,
        );
        // Release the drain lock *before* re-arming: requests enqueued
        // while we serviced did signal the owner, but the owner may have
        // bounced off the held drain lock and parked again — re-signal so
        // nothing strands until the next enqueue.
        drop(_draining);
        if !lock(&self.queues[partition].items).is_empty() {
            self.signal(partition);
        }
        true
    }

    /// Main loop of one executor thread: sweep the owned partitions,
    /// steal-sweep everyone else's when the owned sweep found nothing,
    /// and park on the wake-up signal only when the whole pool's queues
    /// look empty. Stealing means a Zipfian-hot partition is served by
    /// every idle executor, not just its owner — the drain lock in
    /// [`Shared::drain_partition`] keeps per-partition ordering intact.
    fn executor_loop(&self, exec_id: usize) {
        let executors = self.signals.len();
        loop {
            let mut busy = false;
            let mut partition = exec_id;
            while partition < self.queues.len() {
                busy |= self.drain_partition(exec_id, partition, false);
                partition += executors;
            }
            if !busy && executors > 1 {
                // Rotate the sweep's start index so simultaneously idle
                // executors fan out over the foreign queues instead of
                // all contending for partition 0's drain lock first.
                let partitions = self.queues.len();
                let start = self.steal_rr.fetch_add(1, Ordering::Relaxed) % partitions;
                for i in 0..partitions {
                    let partition = (start + i) % partitions;
                    if partition % executors != exec_id {
                        busy |= self.drain_partition(exec_id, partition, true);
                    }
                }
            }
            if busy {
                continue;
            }
            let signal = &self.signals[exec_id];
            let mut pending = lock(&signal.pending);
            if !*pending {
                if self.shutdown.load(Ordering::Acquire) {
                    // Queues were empty on the last sweep and no new
                    // signal arrived: drained.
                    return;
                }
                pending = signal
                    .cv
                    .wait(pending)
                    .unwrap_or_else(|poison| poison.into_inner());
                self.wakeups.fetch_add(1, Ordering::Relaxed);
            }
            *pending = false;
        }
    }

    /// Snapshot of the cumulative statistics (also served through the
    /// registry's frontend source, so `GET /stats.json` and
    /// [`Frontend::stats`] read the same numbers).
    fn stats_snapshot(&self) -> FrontendStats {
        FrontendStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            coalesced_groups: self.coalesced_groups.load(Ordering::Relaxed),
            coalesced_entries: self.coalesced_entries.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            stolen_drains: self.steals.load(Ordering::Relaxed),
            queue_depth: self.depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            max_total_queue_depth: self.max_total_depth.load(Ordering::Relaxed),
            outstanding_tickets: self.gauge.outstanding(),
            max_outstanding_tickets: self.gauge.high_water(),
        }
    }

    /// Fail every request still queued (used after the executors exited:
    /// requests that raced shutdown must not strand their clients).
    fn fail_stragglers(&self) {
        for queue in &self.queues {
            let stragglers = std::mem::take(&mut *lock(&queue.items));
            self.depth
                .fetch_sub(stragglers.len() as u64, Ordering::Relaxed);
            for request in stragglers {
                self.completed.fetch_add(1, Ordering::Relaxed);
                match request {
                    Request::Write(_, agg, _) => agg.finish(Err(PrismError::ShuttingDown)),
                    Request::Get(_, completion, _) => {
                        completion.complete(Err(PrismError::ShuttingDown));
                    }
                    Request::Scan(_, _, completion, _) => {
                        completion.complete(Err(PrismError::ShuttingDown));
                    }
                }
            }
        }
    }
}

/// The async submission front-end over a shared engine. See the crate
/// docs for the full contract; construct with [`Frontend::start`].
pub struct Frontend<E: ConcurrentKvStore + 'static> {
    shared: Arc<Shared<E>>,
    executors: Vec<std::thread::JoinHandle<()>>,
}

impl<E: ConcurrentKvStore + 'static> Frontend<E> {
    /// Spawn the executor pool over `engine`.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if `options` fail validation.
    pub fn start(engine: Arc<E>, options: FrontendOptions) -> Result<Self> {
        Frontend::start_with_obs(engine, options, None)
    }

    /// [`Frontend::start`] recording into a shared observability hub: the
    /// per-stage latency histograms land in `obs.registry` and the hub's
    /// frontend stats source is installed (over a weak handle, so the
    /// hub never keeps a stopped front-end alive). With `None` a private
    /// hub is created — instrumentation always runs, it is just not
    /// externally visible.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::InvalidConfig`] if `options` fail validation.
    pub fn start_with_obs(
        engine: Arc<E>,
        options: FrontendOptions,
        obs: Option<Arc<ObsHub>>,
    ) -> Result<Self> {
        options.validate()?;
        let hub = obs.unwrap_or_default();
        let partitions = engine.shard_count().max(1);
        let executors = options.resolved_executors(partitions);
        let concurrent_reads = engine.concurrent_reads();
        let shared = Arc::new(Shared {
            engine,
            queue_capacity: options.queue_capacity,
            max_coalesce: options.max_coalesce,
            steal_help_depth: options.steal_help_depth,
            queues: (0..partitions)
                .map(|_| PartitionQueue {
                    items: Mutex::new(VecDeque::new()),
                    not_full: Condvar::new(),
                    drain_lock: Mutex::new(()),
                })
                .collect(),
            signals: (0..executors)
                .map(|_| ExecSignal {
                    pending: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            concurrent_reads,
            gauge: TicketGauge::new(),
            pressured: (0..partitions).map(|_| AtomicBool::new(false)).collect(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            coalesced_groups: AtomicU64::new(0),
            coalesced_entries: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            help_rr: AtomicUsize::new(0),
            steal_rr: AtomicUsize::new(0),
            depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            max_total_depth: AtomicU64::new(0),
            obs: FrontendObs::new(Arc::clone(&hub)),
            exec_clocks: (0..executors).map(|_| AtomicU64::new(0)).collect(),
            shard_serial: (0..partitions).map(|_| AtomicU64::new(0)).collect(),
        });
        let weak = Arc::downgrade(&shared);
        hub.registry.set_frontend_source(Box::new(move || {
            weak.upgrade().map(|shared| shared.stats_snapshot())
        }));
        let handles = (0..executors)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("prism-frontend-{id}"))
                    .spawn(move || shared.executor_loop(id))
                    .expect("spawning a frontend executor thread")
            })
            .collect();
        Ok(Frontend {
            shared,
            executors: handles,
        })
    }

    /// The engine behind this front-end.
    pub fn engine(&self) -> &Arc<E> {
        &self.shared.engine
    }

    /// Number of executor threads.
    pub fn executor_count(&self) -> usize {
        self.shared.signals.len()
    }

    fn partition_of(&self, key: &Key) -> usize {
        self.shared.engine.shard_of(key)
    }

    /// Submit an insert/update; blocks only while the partition's queue
    /// is full.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::ShuttingDown`] after [`Frontend::shutdown`].
    pub fn submit_put(&self, key: Key, value: Value) -> Result<WriteTicket> {
        let partition = self.partition_of(&key);
        let (agg, ticket) = WriteAgg::new(1, &self.shared.gauge);
        self.shared.enqueue(
            partition,
            Request::Write(vec![BatchOp::Put(key, value)], agg, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Submit a delete; blocks only while the partition's queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::ShuttingDown`] after [`Frontend::shutdown`].
    pub fn submit_delete(&self, key: &Key) -> Result<WriteTicket> {
        let partition = self.partition_of(key);
        let (agg, ticket) = WriteAgg::new(1, &self.shared.gauge);
        self.shared.enqueue(
            partition,
            Request::Write(vec![BatchOp::Delete(key.clone())], agg, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Submit a pre-built [`WriteBatch`].
    ///
    /// A batch confined to one partition is enqueued on that partition's
    /// queue. A batch that spans partitions is enqueued *whole* on the
    /// first touched partition's queue: the engine's cross-partition
    /// commit protocol makes the installation all-or-nothing, so splitting
    /// it into independently-installed per-partition parts (the old
    /// behaviour) would forfeit exactly the atomicity the engine now
    /// guarantees. The ticket resolves once the batch has installed.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::ShuttingDown`] after [`Frontend::shutdown`].
    pub fn submit_batch(&self, batch: WriteBatch) -> Result<WriteTicket> {
        let home = batch
            .entries()
            .first()
            .map(|op| self.shared.engine.shard_of(op.key()));
        let (agg, ticket) = WriteAgg::new(1, &self.shared.gauge);
        let Some(home) = home else {
            agg.finish(Ok(Nanos::ZERO));
            return Ok(ticket);
        };
        self.shared.enqueue(
            home,
            Request::Write(batch.into_entries(), agg, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Submit a point read; blocks only while the partition's queue is
    /// full. The read observes at least every write acked before this
    /// call (see the crate-level ordering contract).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::ShuttingDown`] after [`Frontend::shutdown`].
    pub fn submit_get(&self, key: &Key) -> Result<ReadTicket> {
        let partition = self.partition_of(key);
        let (completion, ticket) = completion_pair_gauged(&self.shared.gauge);
        self.shared.enqueue(
            partition,
            Request::Get(key.clone(), completion, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Submit a range scan (routed to the start key's partition queue).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::ShuttingDown`] after [`Frontend::shutdown`].
    pub fn submit_scan(&self, start: &Key, count: usize) -> Result<ScanTicket> {
        let partition = self.partition_of(start);
        let (completion, ticket) = completion_pair_gauged(&self.shared.gauge);
        self.shared.enqueue(
            partition,
            Request::Scan(start.clone(), count, completion, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Non-blocking [`Frontend::submit_put`]: never waits for queue
    /// space. The caller keeps ownership of its data (arguments are
    /// borrowed and only cloned on acceptance), so a rejected submission
    /// can simply be retried.
    ///
    /// # Errors
    ///
    /// [`PrismError::Backpressure`] if the partition's queue is at its
    /// effective capacity — the configured bound, *halved* while the
    /// engine's [`ConcurrentKvStore::shard_write_pressure`] reported the
    /// partition at or past its compaction high watermark (the hint is
    /// sampled at the end of each drain, so it may lag the engine by one
    /// drain); [`PrismError::ShuttingDown`] after [`Frontend::shutdown`].
    pub fn try_submit_put(&self, key: &Key, value: &Value) -> Result<WriteTicket> {
        let partition = self.partition_of(key);
        let capacity = self.shared.effective_write_capacity(partition);
        let (agg, ticket) = WriteAgg::new(1, &self.shared.gauge);
        self.shared.try_enqueue(
            partition,
            capacity,
            Request::Write(
                vec![BatchOp::Put(key.clone(), value.clone())],
                agg,
                Instant::now(),
            ),
        )?;
        Ok(ticket)
    }

    /// Non-blocking [`Frontend::submit_delete`] (same back-pressure
    /// contract as [`Frontend::try_submit_put`]).
    ///
    /// # Errors
    ///
    /// [`PrismError::Backpressure`] or [`PrismError::ShuttingDown`].
    pub fn try_submit_delete(&self, key: &Key) -> Result<WriteTicket> {
        let partition = self.partition_of(key);
        let capacity = self.shared.effective_write_capacity(partition);
        let (agg, ticket) = WriteAgg::new(1, &self.shared.gauge);
        self.shared.try_enqueue(
            partition,
            capacity,
            Request::Write(vec![BatchOp::Delete(key.clone())], agg, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Non-blocking [`Frontend::submit_get`]. Reads are not subject to
    /// the watermark hint: only the queue bound itself rejects.
    ///
    /// # Errors
    ///
    /// [`PrismError::Backpressure`] or [`PrismError::ShuttingDown`].
    pub fn try_submit_get(&self, key: &Key) -> Result<ReadTicket> {
        let partition = self.partition_of(key);
        let (completion, ticket) = completion_pair_gauged(&self.shared.gauge);
        self.shared.try_enqueue(
            partition,
            self.shared.queue_capacity,
            Request::Get(key.clone(), completion, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Non-blocking [`Frontend::submit_scan`]. Like reads, scans are not
    /// subject to the watermark hint.
    ///
    /// # Errors
    ///
    /// [`PrismError::Backpressure`] or [`PrismError::ShuttingDown`].
    pub fn try_submit_scan(&self, start: &Key, count: usize) -> Result<ScanTicket> {
        let partition = self.partition_of(start);
        let (completion, ticket) = completion_pair_gauged(&self.shared.gauge);
        self.shared.try_enqueue(
            partition,
            self.shared.queue_capacity,
            Request::Scan(start.clone(), count, completion, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Non-blocking [`Frontend::submit_batch`]: the batch is routed whole
    /// to its home (first touched) partition with the same back-pressure
    /// contract as [`Frontend::try_submit_put`]. The batch is borrowed and
    /// only cloned on acceptance so a rejected submission can be retried.
    ///
    /// # Errors
    ///
    /// [`PrismError::Backpressure`] or [`PrismError::ShuttingDown`].
    pub fn try_submit_batch(&self, batch: &WriteBatch) -> Result<WriteTicket> {
        let home = batch
            .entries()
            .first()
            .map(|op| self.shared.engine.shard_of(op.key()));
        let (agg, ticket) = WriteAgg::new(1, &self.shared.gauge);
        let Some(home) = home else {
            agg.finish(Ok(Nanos::ZERO));
            return Ok(ticket);
        };
        let capacity = self.shared.effective_write_capacity(home);
        self.shared.try_enqueue(
            home,
            capacity,
            Request::Write(batch.entries().to_vec(), agg, Instant::now()),
        )?;
        Ok(ticket)
    }

    /// Reset the per-partition queue-depth high-water mark to the current
    /// total depth. `FrontendStats::max_queue_depth` is a cumulative
    /// `fetch_max` gauge, so a measurement harness that wants a
    /// *phase-scoped* high-water (e.g. excluding warm-up pressure) calls
    /// this at the phase boundary.
    pub fn reset_max_queue_depth(&self) {
        // The gauge tracks the highest *single-partition* depth, so the
        // reset floor is the deepest queue right now, not the global sum.
        let deepest = self
            .shared
            .queues
            .iter()
            .map(|queue| lock(&queue.items).len() as u64)
            .max()
            .unwrap_or(0);
        self.shared
            .max_queue_depth
            .store(deepest, Ordering::Relaxed);
    }

    /// Snapshot of the front-end's cumulative statistics.
    pub fn stats(&self) -> FrontendStats {
        self.shared.stats_snapshot()
    }

    /// The observability hub this front-end records into (the one passed
    /// to [`Frontend::start_with_obs`], or a private hub for
    /// [`Frontend::start`]).
    pub fn obs_hub(&self) -> &Arc<ObsHub> {
        &self.shared.obs.hub
    }

    /// Number of tickets handed out by this front-end that are neither
    /// completed nor abandoned yet. Zero once every client request has
    /// been answered (or its ticket dropped) — the disconnect tests use
    /// this to prove a vanished client strands nothing.
    pub fn outstanding_tickets(&self) -> u64 {
        self.shared.gauge.outstanding()
    }

    /// The gauge behind [`Frontend::outstanding_tickets`], for callers
    /// (e.g. a network server) that want to count their own wrappers on
    /// the same meter.
    pub fn ticket_gauge(&self) -> &TicketGauge {
        &self.shared.gauge
    }

    /// Block until every queued request has been serviced and every
    /// handed-out ticket completed (or abandoned by its holder). Unlike
    /// [`Frontend::shutdown`] this keeps the front-end open for new
    /// submissions — it is a quiesce point, not a teardown: a server
    /// calls it between "stop reading new frames" and "ack what is in
    /// flight, then exit".
    pub fn drain(&self) {
        loop {
            let idle = self.shared.depth.load(Ordering::Relaxed) == 0
                && self.shared.gauge.outstanding() == 0;
            if idle {
                return;
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Cumulative simulated time each executor thread spent servicing
    /// requests (group installs and reads). The busiest executor bounds
    /// the front-end's makespan exactly like a busiest client does in the
    /// thread-per-client model.
    pub fn executor_times(&self) -> Vec<Nanos> {
        self.shared
            .exec_clocks
            .iter()
            .map(|clock| Nanos::from_nanos(clock.load(Ordering::Relaxed)))
            .collect()
    }

    /// Cumulative serial work charged to each engine shard by this
    /// front-end: installed write groups always, plus reads/scans for
    /// engines without concurrent reads.
    pub fn shard_serial_times(&self) -> Vec<Nanos> {
        self.shared
            .shard_serial
            .iter()
            .map(|shard| Nanos::from_nanos(shard.load(Ordering::Relaxed)))
            .collect()
    }

    /// Graceful shutdown: new submissions fail with
    /// [`PrismError::ShuttingDown`], executors drain what is already
    /// queued, and any request that raced past them is failed (never
    /// stranded). Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.signal_all();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        self.shared.fail_stragglers();
    }
}

impl<E: ConcurrentKvStore + 'static> Drop for Frontend<E> {
    fn drop(&mut self) {
        self.shutdown();
    }
}
