//! Frontend subsystem tests: coalescing, back-pressure, shutdown and the
//! ack/durability contract against a real PrismDB engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use prism_db::{Options, PrismDb};
use prism_frontend::{Frontend, FrontendOptions};
use prism_types::{
    ConcurrentKvStore, EngineStats, Key, Lookup, MemStore, Nanos, PrismError, Result, ScanResult,
    Value, WriteBatch,
};

/// A single-shard engine whose `apply_batch` can be blocked by holding
/// [`GatedEngine::hold`]: while the gate is held the executor is stuck
/// mid-install, so subsequent submissions pile up in the partition queue
/// — a deterministic way to create queue pressure. A settable pressure
/// flag drives the watermark back-pressure hint.
struct GatedEngine {
    inner: Mutex<MemStore>,
    gate: Mutex<()>,
    pressured: AtomicBool,
}

impl GatedEngine {
    fn new() -> Self {
        GatedEngine {
            inner: Mutex::new(MemStore::default()),
            gate: Mutex::new(()),
            pressured: AtomicBool::new(false),
        }
    }

    /// Hold the install gate: every `apply_batch` blocks until the guard
    /// drops.
    fn hold(&self) -> MutexGuard<'_, ()> {
        self.gate.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn set_pressure(&self, on: bool) {
        self.pressured.store(on, Ordering::Relaxed);
    }

    fn store(&self) -> MutexGuard<'_, MemStore> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl ConcurrentKvStore for GatedEngine {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        prism_types::KvStore::put(&mut *self.store(), key, value)
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        prism_types::KvStore::get(&mut *self.store(), key)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        prism_types::KvStore::delete(&mut *self.store(), key)
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        prism_types::KvStore::scan(&mut *self.store(), start, count)
    }

    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        let _gate = self.hold();
        // Whole-batch pre-validation, like PrismDB's batched path: one
        // oversized value rejects the group before anything applies.
        for op in batch.entries() {
            if let prism_types::BatchOp::Put(_, value) = op {
                if value.len() > 4096 {
                    return Err(PrismError::ObjectTooLarge {
                        size: value.len(),
                        max: 4096,
                    });
                }
            }
        }
        prism_types::KvStore::apply_batch(&mut *self.store(), batch)
    }

    fn stats(&self) -> EngineStats {
        prism_types::KvStore::stats(&*self.store())
    }

    fn elapsed(&self) -> Nanos {
        prism_types::KvStore::elapsed(&*self.store())
    }

    fn engine_name(&self) -> &str {
        "gated-memstore"
    }

    fn shard_write_pressure(&self, _shard: usize) -> f64 {
        if self.pressured.load(Ordering::Relaxed) {
            1.5
        } else {
            0.0
        }
    }
}

fn prism_frontend(keys: u64, executors: usize) -> Frontend<PrismDb> {
    let mut options = Options::scaled_default(keys);
    options.num_partitions = 4;
    let engine = Arc::new(PrismDb::open(options).expect("valid options"));
    Frontend::start(
        engine,
        FrontendOptions {
            executors,
            ..FrontendOptions::default()
        },
    )
    .expect("valid frontend options")
}

#[test]
fn submissions_round_trip_through_the_queue() {
    let frontend = prism_frontend(1_000, 2);
    assert_eq!(frontend.executor_count(), 2);
    let mut writes = Vec::new();
    for id in 0..200u64 {
        writes.push(
            frontend
                .submit_put(Key::from_id(id), Value::filled(128, id as u8))
                .expect("submit"),
        );
    }
    for ticket in writes {
        assert!(ticket.wait().expect("write acked") >= Nanos::ZERO);
    }
    let lookup = frontend
        .submit_get(&Key::from_id(7))
        .expect("submit")
        .wait()
        .expect("read");
    assert_eq!(lookup.value.expect("key 7 present").as_bytes()[0], 7);
    let scan = frontend
        .submit_scan(&Key::from_id(0), 50)
        .expect("submit")
        .wait()
        .expect("scan");
    assert_eq!(scan.entries.len(), 50);
    assert!(scan.entries.windows(2).all(|w| w[0].0 < w[1].0));
    frontend
        .submit_delete(&Key::from_id(7))
        .expect("submit")
        .wait()
        .expect("delete acked");
    let lookup = frontend
        .submit_get(&Key::from_id(7))
        .expect("submit")
        .wait()
        .expect("read");
    assert!(lookup.value.is_none());
    let stats = frontend.stats();
    assert_eq!(stats.submitted, stats.completed);
    assert_eq!(stats.submitted, 204);
    assert!(stats.coalesced_entries >= 201);
}

#[test]
fn queue_pressure_produces_write_coalescing() {
    let engine = Arc::new(GatedEngine::new());
    let frontend = Frontend::start(Arc::clone(&engine), FrontendOptions::default())
        .expect("valid frontend options");
    let mut tickets = Vec::new();
    {
        // While the gate is held the executor is stuck installing the
        // first group, so the remaining writes pile up and must coalesce
        // into at most one more group (plus chunking).
        let _gate = engine.hold();
        for id in 0..17u64 {
            tickets.push(
                frontend
                    .submit_put(Key::from_id(id), Value::filled(64, id as u8))
                    .expect("submit"),
            );
        }
    }
    for ticket in tickets {
        ticket.wait().expect("write acked");
    }
    let stats = frontend.stats();
    assert_eq!(stats.coalesced_entries, 17);
    assert!(
        stats.coalesced_groups <= 2,
        "blocked executor must coalesce the backlog into at most two \
         groups, got {}",
        stats.coalesced_groups
    );
    assert!(stats.mean_coalesce_width() > 1.0);
    // All writes really landed.
    for id in 0..17u64 {
        assert!(engine.get(&Key::from_id(id)).expect("get").value.is_some());
    }
}

#[test]
fn try_submit_reports_backpressure_on_a_full_queue() {
    let engine = Arc::new(GatedEngine::new());
    let frontend = Frontend::start(
        Arc::clone(&engine),
        FrontendOptions {
            queue_capacity: 2,
            ..FrontendOptions::default()
        },
    )
    .expect("valid frontend options");
    let gate = engine.hold();
    let first = frontend
        .submit_put(Key::from_id(0), Value::filled(8, 0))
        .expect("submit");
    // Wait until the executor has drained the first write (and is now
    // blocked on the gate), so the queue bound below is exact.
    while frontend.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    let second = frontend
        .submit_put(Key::from_id(1), Value::filled(8, 1))
        .expect("submit");
    let third = frontend
        .submit_put(Key::from_id(2), Value::filled(8, 2))
        .expect("submit");
    let err = frontend
        .try_submit_put(&Key::from_id(3), &Value::filled(8, 3))
        .expect_err("full queue must reject");
    assert!(matches!(
        err,
        PrismError::Backpressure {
            partition: 0,
            depth: 2
        }
    ));
    assert_eq!(frontend.stats().rejected, 1);
    drop(gate);
    for ticket in [first, second, third] {
        ticket.wait().expect("write acked");
    }
    // With space available again the retry goes through.
    frontend
        .try_submit_put(&Key::from_id(3), &Value::filled(8, 3))
        .expect("retry accepted")
        .wait()
        .expect("write acked");
}

#[test]
fn watermark_pressure_hint_shrinks_the_effective_capacity() {
    let engine = Arc::new(GatedEngine::new());
    let frontend = Frontend::start(
        Arc::clone(&engine),
        FrontendOptions {
            queue_capacity: 8,
            ..FrontendOptions::default()
        },
    )
    .expect("valid frontend options");
    // The hint is sampled at the end of each drain: raise the engine's
    // pressure, then let one write drain so the executor caches it.
    engine.set_pressure(true);
    frontend
        .submit_put(Key::from_id(0), Value::filled(8, 0))
        .expect("submit")
        .wait()
        .expect("write acked");
    // Block the executor and pile writes up to the *halved* bound (4 of
    // 8): the fifth try_submit bounces while a read still gets the full
    // bound.
    let gate = engine.hold();
    let mut tickets = vec![frontend
        .submit_put(Key::from_id(1), Value::filled(8, 1))
        .expect("submit")];
    while frontend.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    for id in 2..=4u64 {
        tickets.push(
            frontend
                .try_submit_put(&Key::from_id(id), &Value::filled(8, id as u8))
                .expect("below the halved bound"),
        );
    }
    tickets.push(
        frontend
            .try_submit_put(&Key::from_id(5), &Value::filled(8, 5))
            .expect("fills the halved bound"),
    );
    let err = frontend
        .try_submit_put(&Key::from_id(6), &Value::filled(8, 6))
        .expect_err("pressured partition must reject early");
    assert!(matches!(err, PrismError::Backpressure { depth: 4, .. }));
    let read = frontend
        .try_submit_get(&Key::from_id(0))
        .expect("reads keep the full bound");
    // Drop the pressure and release the executor: the next drain
    // refreshes the cached hint, restoring the full write bound.
    engine.set_pressure(false);
    drop(gate);
    for ticket in tickets {
        ticket.wait().expect("write acked");
    }
    read.wait().expect("read served");
    // One synchronous round-trip: it is serviced by a *later* drain,
    // which only starts after the previous drain's end-of-drain refresh
    // stored the lifted pressure — so the halved bound is
    // deterministically gone before the submissions below.
    frontend
        .submit_put(Key::from_id(20), Value::filled(8, 0))
        .expect("submit")
        .wait()
        .expect("write acked");
    tickets = Vec::new();
    for id in 6..=11u64 {
        tickets.push(
            frontend
                .try_submit_put(&Key::from_id(id), &Value::filled(8, id as u8))
                .expect("full bound restored after the refreshing drain"),
        );
    }
    for ticket in tickets {
        ticket.wait().expect("write acked");
    }
}

#[test]
fn shutdown_drains_queued_requests_and_errors_stragglers() {
    let engine = Arc::new(GatedEngine::new());
    let mut frontend = Frontend::start(Arc::clone(&engine), FrontendOptions::default())
        .expect("valid frontend options");
    let mut tickets = Vec::new();
    {
        let gate = engine.hold();
        for id in 0..12u64 {
            tickets.push(
                frontend
                    .submit_put(Key::from_id(id), Value::filled(16, id as u8))
                    .expect("submit"),
            );
        }
        // Start shutdown on another thread while the executor is still
        // blocked mid-install, then release the gate: shutdown really
        // overlaps in-flight work and must drain the backlog.
        std::thread::scope(|scope| {
            let frontend = &mut frontend;
            scope.spawn(move || frontend.shutdown());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(gate);
        });
    }
    // Everything queued before shutdown was drained, not dropped.
    for ticket in tickets {
        ticket.wait().expect("queued write must drain on shutdown");
    }
    for id in 0..12u64 {
        assert!(engine.get(&Key::from_id(id)).expect("get").value.is_some());
    }
    // Stragglers after shutdown are refused.
    let err = frontend
        .submit_put(Key::from_id(99), Value::filled(8, 9))
        .expect_err("straggler must be refused");
    assert!(matches!(err, PrismError::ShuttingDown));
    let err = frontend
        .try_submit_get(&Key::from_id(0))
        .expect_err("straggler read must be refused");
    assert!(matches!(err, PrismError::ShuttingDown));
}

#[test]
fn cross_partition_batches_resolve_with_one_ticket() {
    let frontend = prism_frontend(2_000, 2);
    let mut batch = WriteBatch::new();
    for id in 0..100u64 {
        batch.put(Key::from_id(id * 17 % 2_000), Value::filled(64, id as u8));
    }
    batch.delete(Key::from_id(17));
    let latency = frontend
        .submit_batch(batch)
        .expect("submit")
        .wait()
        .expect("batch acked");
    assert!(latency > Nanos::ZERO);
    let miss = frontend
        .submit_get(&Key::from_id(17))
        .expect("submit")
        .wait()
        .expect("read");
    assert!(miss.value.is_none());
    let hit = frontend
        .submit_get(&Key::from_id(34))
        .expect("submit")
        .wait()
        .expect("read");
    assert!(hit.value.is_some());
    // An empty batch resolves immediately.
    assert_eq!(
        frontend
            .submit_batch(WriteBatch::new())
            .expect("submit")
            .wait()
            .expect("empty batch"),
        Nanos::ZERO
    );
}

#[test]
fn write_errors_stay_scoped_to_the_failing_request() {
    let engine = Arc::new(GatedEngine::new());
    let frontend = Frontend::start(Arc::clone(&engine), FrontendOptions::default())
        .expect("valid frontend options");
    // Pile up a good write and an oversized one behind the gate so they
    // coalesce into one group; the group fails wholesale, the retry
    // isolates the offender.
    let (good, bad) = {
        let _gate = engine.hold();
        let good = frontend
            .submit_put(Key::from_id(1), Value::filled(64, 1))
            .expect("submit");
        let bad = frontend
            .submit_put(Key::from_id(2), Value::filled(8192, 2))
            .expect("submit");
        (good, bad)
    };
    good.wait().expect("the innocent write must succeed");
    let err = bad.wait().expect_err("the oversized write must fail");
    assert!(matches!(err, PrismError::ObjectTooLarge { .. }));
    assert!(engine.get(&Key::from_id(1)).expect("get").value.is_some());
    assert!(engine.get(&Key::from_id(2)).expect("get").value.is_none());
}

/// The durability half of the crash contract: an *acked* op was installed
/// through `apply_batch` (PrismDB persists to NVM synchronously), so it
/// must survive `crash_and_recover`. The in-queue-but-unacked half is
/// exercised by the differential suite's racing crash column.
#[test]
fn acked_ops_survive_crash_and_recover() {
    let frontend = prism_frontend(2_000, 2);
    let mut tickets = Vec::new();
    for id in 0..500u64 {
        tickets.push(
            frontend
                .submit_put(Key::from_id(id), Value::filled(256, (id % 251) as u8))
                .expect("submit"),
        );
    }
    tickets.push(frontend.submit_delete(&Key::from_id(123)).expect("submit"));
    for ticket in tickets {
        ticket.wait().expect("acked");
    }
    frontend.engine().crash_and_recover();
    for id in 0..500u64 {
        let lookup = frontend
            .submit_get(&Key::from_id(id))
            .expect("submit")
            .wait()
            .expect("read");
        if id == 123 {
            assert!(lookup.value.is_none(), "acked delete must survive");
        } else {
            let value = lookup
                .value
                .unwrap_or_else(|| panic!("acked put of key {id} lost by crash"));
            assert_eq!(value.as_bytes()[0], (id % 251) as u8);
        }
    }
}

#[test]
fn many_logical_clients_multiplex_on_one_submitter_thread() {
    let frontend = prism_frontend(4_000, 2);
    const CLIENTS: usize = 128;
    const OPS_PER_CLIENT: usize = 40;
    // Each logical client keeps one op in flight; one OS thread (this
    // one) round-robins over the outstanding tickets.
    let mut in_flight: Vec<Option<prism_frontend::WriteTicket>> = Vec::new();
    for client in 0..CLIENTS {
        let key = Key::from_id((client * OPS_PER_CLIENT) as u64);
        in_flight.push(Some(
            frontend
                .submit_put(key, Value::filled(64, client as u8))
                .expect("submit"),
        ));
    }
    let mut issued = vec![1usize; CLIENTS];
    let mut done = 0;
    while done < CLIENTS {
        for client in 0..CLIENTS {
            let Some(ticket) = in_flight[client].as_mut() else {
                continue;
            };
            if ticket.poll().is_none() {
                continue;
            }
            if issued[client] == OPS_PER_CLIENT {
                in_flight[client] = None;
                done += 1;
                continue;
            }
            let key = Key::from_id((client * OPS_PER_CLIENT + issued[client]) as u64);
            in_flight[client] = Some(
                frontend
                    .submit_put(key, Value::filled(64, client as u8))
                    .expect("submit"),
            );
            issued[client] += 1;
        }
        std::thread::yield_now();
    }
    let stats = frontend.stats();
    assert_eq!(stats.submitted, (CLIENTS * OPS_PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.submitted);
    for client in (0..CLIENTS).step_by(13) {
        for op in (0..OPS_PER_CLIENT).step_by(7) {
            let key = Key::from_id((client * OPS_PER_CLIENT + op) as u64);
            let lookup = frontend
                .submit_get(&key)
                .expect("submit")
                .wait()
                .expect("read");
            assert_eq!(lookup.value.expect("written").as_bytes()[0], client as u8);
        }
    }
    // Executors did real virtual-time work and report it.
    assert!(frontend.executor_times().iter().any(|t| *t > Nanos::ZERO));
    assert!(frontend
        .shard_serial_times()
        .iter()
        .any(|t| *t > Nanos::ZERO));
}

#[test]
fn gauge_counts_outstanding_tickets_and_drain_quiesces() {
    let frontend = prism_frontend(2_000, 2);
    assert_eq!(frontend.outstanding_tickets(), 0);
    let mut tickets = Vec::new();
    for id in 0..120u64 {
        tickets.push(
            frontend
                .submit_put(Key::from_id(id), Value::filled(32, id as u8))
                .expect("submit"),
        );
    }
    // Quiesce without shutting down: afterwards nothing is queued or
    // outstanding, and the front-end still accepts work.
    frontend.drain();
    assert_eq!(frontend.outstanding_tickets(), 0);
    assert_eq!(frontend.stats().outstanding_tickets, 0);
    assert_eq!(frontend.stats().queue_depth, 0);
    for ticket in tickets {
        ticket.wait().expect("write acked");
    }
    // Dropping an unread ticket must not leak a gauge count: the gauge
    // tracks the completion side, which already fired.
    drop(
        frontend
            .submit_get(&Key::from_id(3))
            .expect("still accepting after drain"),
    );
    frontend.drain();
    assert_eq!(frontend.outstanding_tickets(), 0);
}

/// A four-shard engine (`shard_of = id % 4`) whose `apply_batch` blocks
/// on a gate only for batches touching shard 0 — so one executor can be
/// deterministically wedged on one of its partitions while its *other*
/// partition accumulates a backlog that only a stealing peer can drain.
struct ShardedGatedEngine {
    inner: Mutex<MemStore>,
    gate: Mutex<()>,
}

impl ShardedGatedEngine {
    fn new() -> Self {
        ShardedGatedEngine {
            inner: Mutex::new(MemStore::default()),
            gate: Mutex::new(()),
        }
    }

    fn hold(&self) -> MutexGuard<'_, ()> {
        self.gate.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn store(&self) -> MutexGuard<'_, MemStore> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl ConcurrentKvStore for ShardedGatedEngine {
    fn put(&self, key: Key, value: Value) -> Result<Nanos> {
        prism_types::KvStore::put(&mut *self.store(), key, value)
    }

    fn get(&self, key: &Key) -> Result<Lookup> {
        prism_types::KvStore::get(&mut *self.store(), key)
    }

    fn delete(&self, key: &Key) -> Result<Nanos> {
        prism_types::KvStore::delete(&mut *self.store(), key)
    }

    fn scan(&self, start: &Key, count: usize) -> Result<ScanResult> {
        prism_types::KvStore::scan(&mut *self.store(), start, count)
    }

    fn apply_batch(&self, batch: WriteBatch) -> Result<Nanos> {
        let gated = batch.entries().iter().any(|op| op.key().id() % 4 == 0);
        let _gate = gated.then(|| self.hold());
        prism_types::KvStore::apply_batch(&mut *self.store(), batch)
    }

    fn stats(&self) -> EngineStats {
        prism_types::KvStore::stats(&*self.store())
    }

    fn elapsed(&self) -> Nanos {
        prism_types::KvStore::elapsed(&*self.store())
    }

    fn engine_name(&self) -> &str {
        "sharded-gated-memstore"
    }

    fn shard_count(&self) -> usize {
        4
    }

    fn shard_of(&self, key: &Key) -> usize {
        (key.id() % 4) as usize
    }
}

/// With two executors over four shards, executor 0 owns partitions 0 and
/// 2. Wedge it inside an install on partition 0, then pile writes onto
/// partition 2: only executor 1 *stealing* the foreign partition can
/// complete them while the gate is still held.
#[test]
fn idle_executors_steal_a_blocked_owners_backlog() {
    let engine = Arc::new(ShardedGatedEngine::new());
    let frontend = Frontend::start(
        Arc::clone(&engine),
        FrontendOptions {
            executors: 2,
            steal_help_depth: 1,
            ..FrontendOptions::default()
        },
    )
    .expect("valid frontend options");
    let gate = engine.hold();
    let wedged = frontend
        .submit_put(Key::from_id(0), Value::filled(16, 0))
        .expect("submit");
    // Wait until executor 0 has drained the write and is blocked inside
    // apply_batch on the held gate.
    while frontend.stats().queue_depth > 0 {
        std::thread::yield_now();
    }
    // Backlog on executor 0's *other* partition. The enqueues wake a
    // helper (steal_help_depth = 1) and executor 1's own partitions are
    // empty, so it must steal partition 2's drains.
    let mut stolen_work = Vec::new();
    for i in 0..50u64 {
        stolen_work.push(
            frontend
                .submit_put(Key::from_id(2 + i * 4), Value::filled(16, i as u8))
                .expect("submit"),
        );
    }
    for ticket in stolen_work {
        ticket
            .wait()
            .expect("a stolen drain must service the backlog");
    }
    // The gate is still held: the owner cannot have serviced these.
    assert!(frontend.stats().stolen_drains >= 1);
    assert!(
        engine.get(&Key::from_id(2)).expect("get").value.is_some(),
        "stolen writes must really land"
    );
    drop(gate);
    wedged.wait().expect("wedged write completes once released");
    frontend.drain();
    assert_eq!(frontend.outstanding_tickets(), 0);
    // Per-partition order survived stealing: a read after the drain sees
    // every acked write.
    for i in 0..50u64 {
        assert!(frontend
            .submit_get(&Key::from_id(2 + i * 4))
            .expect("submit")
            .wait()
            .expect("read")
            .value
            .is_some());
    }
}

#[test]
fn try_submit_scan_and_batch_round_trip() {
    let frontend = prism_frontend(2_000, 2);
    let mut batch = WriteBatch::new();
    for id in 300..340u64 {
        batch.put(Key::from_id(id), Value::filled(16, id as u8));
    }
    frontend
        .try_submit_batch(&batch)
        .expect("submit")
        .wait()
        .expect("batch acked");
    // An empty batch resolves immediately with zero latency.
    assert_eq!(
        frontend
            .try_submit_batch(&WriteBatch::new())
            .expect("submit")
            .wait()
            .expect("empty batch"),
        Nanos::ZERO
    );
    let scan = frontend
        .try_submit_scan(&Key::from_id(300), 25)
        .expect("submit")
        .wait()
        .expect("scan");
    assert_eq!(scan.entries.len(), 25);
    assert!(scan.entries.iter().all(|(k, _)| k.id() >= 300));
    frontend.drain();
    assert_eq!(frontend.outstanding_tickets(), 0);
}
