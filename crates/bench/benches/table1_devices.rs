//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::table1_devices`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::table1_devices::run(&scale);
    assert!(!tables.is_empty());
}
