//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig2_lsm_breakdown`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig2_lsm_breakdown::run(&scale);
    assert!(!tables.is_empty());
}
