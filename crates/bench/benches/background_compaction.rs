//! Inline vs background compaction sweep (stall time off the foreground
//! path), emitting `BENCH_background_compaction.json`.

use prism_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    experiments::background_compaction::run(&scale);
}
