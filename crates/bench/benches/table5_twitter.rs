//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::table5_twitter`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::table5_twitter::run(&scale);
    assert!(!tables.is_empty());
}
