//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::table2_single_vs_multi`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::table2_single_vs_multi::run(&scale);
    assert!(!tables.is_empty());
}
