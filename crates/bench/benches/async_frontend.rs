//! Async submission front-end sweep (logical clients × executors ×
//! workload, plus raw OS-thread baselines), emitting
//! `BENCH_async_frontend.json`.

use prism_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    experiments::async_frontend::run(&scale);
}
