//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig11_skew_sweep`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig11_skew_sweep::run(&scale);
    assert!(!tables.is_empty());
}
