//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig14_components::promotions`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let table = prism_bench::experiments::fig14_components::promotions(&scale);
    assert!(table.row_count() > 0);
}
