//! Criterion microbenchmarks for the data structures on PrismDB's critical
//! path: B-tree lookups, bloom filter probes, clock tracker accesses and
//! MSC scoring.

use criterion::{criterion_group, criterion_main, Criterion};

use prism_compaction::{msc_score, BucketMap};
use prism_flash::BloomFilter;
use prism_index::BTreeIndex;
use prism_tracker::ClockTracker;
use prism_types::Key;

fn bench_btree(c: &mut Criterion) {
    let mut index: BTreeIndex<u64, u64> = BTreeIndex::new();
    for id in 0..100_000u64 {
        index.insert(id, id);
    }
    let mut probe = 0u64;
    c.bench_function("btree_get_100k", |b| {
        b.iter(|| {
            probe = (probe + 7919) % 100_000;
            std::hint::black_box(index.get(&probe));
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut bloom = BloomFilter::new(100_000, 10);
    for id in 0..100_000u64 {
        bloom.add(&Key::from_id(id));
    }
    let mut probe = 0u64;
    c.bench_function("bloom_probe_100k", |b| {
        b.iter(|| {
            probe = (probe + 6151) % 200_000;
            std::hint::black_box(bloom.may_contain(&Key::from_id(probe)));
        })
    });
}

fn bench_tracker(c: &mut Criterion) {
    let mut tracker = ClockTracker::new(50_000);
    let mut id = 0u64;
    c.bench_function("clock_tracker_access", |b| {
        b.iter(|| {
            id = (id + 31) % 200_000;
            std::hint::black_box(tracker.access(&Key::from_id(id), false));
        })
    });
}

fn bench_msc(c: &mut Criterion) {
    let mut buckets = BucketMap::new(4_096);
    for id in 0..200_000u64 {
        buckets.on_nvm_insert(id);
        if id % 7 == 0 {
            buckets.on_access(id);
        }
        if id % 3 == 0 {
            buckets.on_flash_insert(id);
        }
    }
    let mut start = 0u64;
    c.bench_function("approx_msc_range_estimate", |b| {
        b.iter(|| {
            start = (start + 8_192) % 150_000;
            let stats = buckets.estimate(start, start + 16_384, 0.25);
            std::hint::black_box(msc_score(&stats));
        })
    });
}

criterion_group!(benches, bench_btree, bench_bloom, bench_tracker, bench_msc);
criterion_main!(benches);
