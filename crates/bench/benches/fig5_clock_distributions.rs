//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig5_clock_distributions`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig5_clock_distributions::run(&scale);
    assert!(!tables.is_empty());
}
