//! Bench target for the MSC parameter ablation (not a paper figure; see
//! `prism_bench::experiments::ablation_msc_parameters`).

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::ablation_msc_parameters::run(&scale);
    assert!(!tables.is_empty());
}
