//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig12_endurance`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig12_endurance::run(&scale);
    assert!(!tables.is_empty());
}
