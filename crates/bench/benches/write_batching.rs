//! Write batching / group commit sweep (client batch size × workload ×
//! threads), emitting `BENCH_write_batching.json`.

use prism_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    experiments::write_batching::run(&scale);
}
