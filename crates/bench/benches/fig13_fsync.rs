//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig13_fsync`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig13_fsync::run(&scale);
    assert!(!tables.is_empty());
}
