//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig14_components::latency_cdf`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let table = prism_bench::experiments::fig14_components::latency_cdf(&scale);
    assert!(table.row_count() > 0);
}
