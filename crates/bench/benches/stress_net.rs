//! Network serving layer stress driver (connections × pipeline windows
//! over the duplex transport, plus a real-TCP loopback row where the
//! environment allows binding), emitting `BENCH_net.json`.

use prism_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_env();
    experiments::net_stress::run(&scale);
}
