//! Bench target regenerating the thread-sweep scalability tables; see
//! `prism_bench::experiments::scalability`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::scalability::run(&scale);
    assert!(tables.iter().all(|t| t.row_count() > 0));
}
