//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig10_ycsb_sweep`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig10_ycsb_sweep::run(&scale);
    assert!(!tables.is_empty());
}
