//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig9_cost_throughput`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig9_cost_throughput::run(&scale);
    assert!(!tables.is_empty());
}
