//! Bench target regenerating the paper artefact; see
//! `prism_bench::experiments::fig6_msc_policies`.

fn main() {
    let scale = prism_bench::Scale::from_env();
    let tables = prism_bench::experiments::fig6_msc_policies::run(&scale);
    assert!(!tables.is_empty());
}
