//! Plain-text tables printed by the experiments, plus a machine-readable
//! JSON emitter so the performance trajectory can be tracked across PRs.

use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// A simple fixed-width table with a title, matching one table or one data
/// series of a paper figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title, e.g. `"Table 2: single-tier vs multi-tier"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Find a cell by row label (first column) and column header.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(row_label))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{self}");
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{c:<width$}",
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Table {
    /// Serialise the table as a JSON object (`title`, `headers`, `rows`).
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self
            .headers
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row
                    .iter()
                    .map(|c| format!("\"{}\"", json_escape(c)))
                    .collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
            json_escape(&self.title),
            headers.join(","),
            rows.join(",")
        )
    }
}

/// Directory benchmark JSON files are written to: `$PRISM_BENCH_OUT` if
/// set, otherwise the workspace root (so results land next to the code
/// they measure regardless of the invoking working directory).
pub fn bench_output_dir() -> PathBuf {
    match std::env::var("PRISM_BENCH_OUT") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Write `tables` as `BENCH_<name>.json` (machine-readable: ops/s and
/// stall columns stay exactly as printed) into [`bench_output_dir`].
/// Returns the path written, or `None` if the write failed (benchmarks
/// must not abort because the output directory is read-only).
pub fn write_bench_json(name: &str, tables: &[Table]) -> Option<PathBuf> {
    let path = bench_output_dir().join(format!("BENCH_{name}.json"));
    let body: Vec<String> = tables.iter().map(Table::to_json).collect();
    let doc = format!(
        "{{\"benchmark\":\"{}\",\"tables\":[{}]}}\n",
        json_escape(name),
        body.join(",")
    );
    let result = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
    match result {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            None
        }
    }
}

/// Format a float with a sensible number of decimals for tables.
pub fn fmt_f64(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else if value >= 1.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_and_lookup() {
        let mut table = Table::new("Demo", &["engine", "tput", "cost"]);
        table.add_row(vec!["prismdb".into(), "184".into(), "0.3".into()]);
        table.add_row(vec!["rocksdb".into(), "93".into(), "0.3".into()]);
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.cell("prismdb", "tput"), Some("184"));
        assert_eq!(table.cell("rocksdb", "cost"), Some("0.3"));
        assert_eq!(table.cell("nope", "tput"), None);
        assert_eq!(table.cell("prismdb", "nope"), None);
        let rendered = format!("{table}");
        assert!(rendered.contains("=== Demo ==="));
        assert!(rendered.contains("prismdb"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(0.1234), "0.123");
    }
}
