//! Plain-text tables printed by the experiments, plus a machine-readable
//! JSON emitter so the performance trajectory can be tracked across PRs.

use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// A simple fixed-width table with a title, matching one table or one data
/// series of a paper figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title, e.g. `"Table 2: single-tier vs multi-tier"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Find a cell by row label (first column) and column header.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(row_label))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{self}");
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{c:<width$}",
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Table {
    /// Serialise the table as a JSON object (`title`, `headers`, `rows`).
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self
            .headers
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row
                    .iter()
                    .map(|c| format!("\"{}\"", json_escape(c)))
                    .collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
            json_escape(&self.title),
            headers.join(","),
            rows.join(",")
        )
    }
}

/// Directory benchmark JSON files are written to: `$PRISM_BENCH_OUT` if
/// set, otherwise the workspace root (so results land next to the code
/// they measure regardless of the invoking working directory).
pub fn bench_output_dir() -> PathBuf {
    match std::env::var("PRISM_BENCH_OUT") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Write `tables` as `BENCH_<name>.json` (machine-readable: ops/s and
/// stall columns stay exactly as printed) into [`bench_output_dir`].
/// Returns the path written, or `None` if the write failed (benchmarks
/// must not abort because the output directory is read-only).
pub fn write_bench_json(name: &str, tables: &[Table]) -> Option<PathBuf> {
    let path = bench_output_dir().join(format!("BENCH_{name}.json"));
    let body: Vec<String> = tables.iter().map(Table::to_json).collect();
    let doc = format!(
        "{{\"benchmark\":\"{}\",\"tables\":[{}]}}\n",
        json_escape(name),
        body.join(",")
    );
    let result = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
    match result {
        Ok(()) => {
            println!("wrote {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            None
        }
    }
}

/// One line of the consolidated cross-sweep summary: the best
/// configuration of one sweep and its throughput. Every sweep appends its
/// entry to `BENCH_summary.json` via [`update_bench_summary`], so the
/// perf trajectory is machine-readable across PRs without knowing each
/// sweep's own table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryEntry {
    /// Sweep name (the `BENCH_<name>.json` stem).
    pub sweep: String,
    /// Row label of the best configuration.
    pub best_config: String,
    /// Its throughput in thousands of operations per simulated second.
    pub throughput_kops: f64,
    /// Keys loaded for the sweep (the `Scale::record_count`). Entries
    /// regenerated at different scales (e.g. a CI quick run refreshing
    /// one sweep of a default-scale file) stay comparable because each
    /// line records the scale it was measured at.
    pub record_count: u64,
}

impl SummaryEntry {
    /// The best row of a sweep table: the row whose `kops_column` cell
    /// parses to the highest value, labelled by its first column.
    /// `None` if no row has a parseable throughput.
    pub fn best_of(
        sweep: &str,
        table: &Table,
        kops_column: &str,
        record_count: u64,
    ) -> Option<SummaryEntry> {
        let col = table.headers.iter().position(|h| h == kops_column)?;
        let mut best: Option<(f64, &str)> = None;
        for row in &table.rows {
            let (Some(label), Some(cell)) = (row.first(), row.get(col)) else {
                continue;
            };
            let Ok(kops) = cell.parse::<f64>() else {
                continue;
            };
            if best.map_or(true, |(b, _)| kops > b) {
                best = Some((kops, label));
            }
        }
        best.map(|(kops, label)| SummaryEntry {
            sweep: sweep.to_string(),
            best_config: label.to_string(),
            throughput_kops: kops,
            record_count,
        })
    }

    fn to_json_line(&self) -> String {
        format!(
            "{{\"sweep\":\"{}\",\"best_config\":\"{}\",\"throughput_kops\":{:.3},\"record_count\":{}}}",
            json_escape(&self.sweep),
            json_escape(&self.best_config),
            self.throughput_kops,
            self.record_count
        )
    }
}

/// Read-modify-write `BENCH_summary.json` in `dir`: replace the entry of
/// `entry.sweep` (each sweep owns one line) and keep every other sweep's
/// line, so independently-run bench targets build up one consolidated
/// file. The file is deliberately line-structured — one entry object per
/// line inside the `summary` array — so this update needs no JSON parser.
/// Returns the path written, or `None` if the write failed.
pub fn update_bench_summary_in(dir: &std::path::Path, entry: &SummaryEntry) -> Option<PathBuf> {
    let path = dir.join("BENCH_summary.json");
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        let owned_prefix = format!("{{\"sweep\":\"{}\"", json_escape(&entry.sweep));
        for line in existing.lines() {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed.starts_with("{\"sweep\":") && !trimmed.starts_with(&owned_prefix) {
                lines.push(trimmed.to_string());
            }
        }
    }
    lines.push(entry.to_json_line());
    lines.sort();
    let doc = format!("{{\"summary\":[\n{}\n]}}\n", lines.join(",\n"));
    let result = std::fs::File::create(&path).and_then(|mut f| f.write_all(doc.as_bytes()));
    match result {
        Ok(()) => {
            println!("updated {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("could not write {}: {err}", path.display());
            None
        }
    }
}

/// [`update_bench_summary_in`] on [`bench_output_dir`].
pub fn update_bench_summary(entry: &SummaryEntry) -> Option<PathBuf> {
    update_bench_summary_in(&bench_output_dir(), entry)
}

/// Format a float with a sensible number of decimals for tables.
pub fn fmt_f64(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else if value >= 1.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout_and_lookup() {
        let mut table = Table::new("Demo", &["engine", "tput", "cost"]);
        table.add_row(vec!["prismdb".into(), "184".into(), "0.3".into()]);
        table.add_row(vec!["rocksdb".into(), "93".into(), "0.3".into()]);
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.cell("prismdb", "tput"), Some("184"));
        assert_eq!(table.cell("rocksdb", "cost"), Some("0.3"));
        assert_eq!(table.cell("nope", "tput"), None);
        assert_eq!(table.cell("prismdb", "nope"), None);
        let rendered = format!("{table}");
        assert!(rendered.contains("=== Demo ==="));
        assert!(rendered.contains("prismdb"));
    }

    #[test]
    fn summary_best_of_picks_the_fastest_row() {
        let mut table = Table::new("Sweep", &["config", "Kops/s"]);
        table.add_row(vec!["a/t1".into(), "10.5".into()]);
        table.add_row(vec!["a/t4".into(), "41.2".into()]);
        table.add_row(vec!["broken".into(), "n/a".into()]);
        let entry = SummaryEntry::best_of("demo", &table, "Kops/s", 8_000).unwrap();
        assert_eq!(entry.best_config, "a/t4");
        assert!((entry.throughput_kops - 41.2).abs() < 1e-9);
        assert_eq!(entry.record_count, 8_000);
        assert!(SummaryEntry::best_of("demo", &table, "missing", 8_000).is_none());
    }

    #[test]
    fn summary_updates_merge_across_sweeps() {
        let dir = std::env::temp_dir().join(format!("prism-summary-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |sweep: &str, config: &str, kops: f64| {
            update_bench_summary_in(
                &dir,
                &SummaryEntry {
                    sweep: sweep.into(),
                    best_config: config.into(),
                    throughput_kops: kops,
                    record_count: 8_000,
                },
            )
            .expect("summary written")
        };
        let path = write("write_batching", "ycsb-a/t4/b64", 132.0);
        write("scalability", "8", 111.0);
        // Re-running a sweep replaces only its own entry.
        let path2 = write("write_batching", "ycsb-a/t4/b8", 140.5);
        assert_eq!(path, path2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"summary\":["));
        assert!(body.contains("\"sweep\":\"scalability\""));
        assert!(body.contains("\"best_config\":\"ycsb-a/t4/b8\""));
        assert!(body.contains("\"record_count\":8000"));
        assert!(
            !body.contains("ycsb-a/t4/b64"),
            "a sweep's old entry must be replaced, not duplicated"
        );
        assert_eq!(
            body.lines()
                .filter(|l| l.trim().starts_with("{\"sweep\":"))
                .count(),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(0.1234), "0.123");
    }
}
