//! Factories for every engine configuration used in the evaluation.

use prism_compaction::CompactionPolicy;
use prism_db::{Options, PrismDb};
use prism_lsm::{LsmConfig, LsmTree};
use prism_storage::DeviceProfile;

/// PrismDB with the paper's default configuration (1:5 NVM:QLC, 20 %
/// tracker, 70 % pinning threshold, approx-MSC).
pub fn prismdb(record_count: u64) -> PrismDb {
    PrismDb::open(prism_options(record_count)).expect("valid default options")
}

/// The default PrismDB options at this scale.
pub fn prism_options(record_count: u64) -> Options {
    Options::scaled_default(record_count)
}

/// PrismDB with the NVM tier sized to `nvm_fraction` of total capacity.
pub fn prismdb_with_nvm_fraction(record_count: u64, nvm_fraction: f64) -> PrismDb {
    let mut options = prism_options(record_count);
    let total = options.nvm_capacity_bytes + options.flash_capacity_bytes;
    let nvm = ((total as f64 * nvm_fraction) as u64).max(64 * 1024);
    options.nvm_capacity_bytes = nvm;
    options.nvm_profile = DeviceProfile::optane_nvm(nvm);
    options.flash_capacity_bytes = total - nvm;
    options.flash_profile.capacity_bytes = total - nvm;
    PrismDb::open(options).expect("valid options")
}

/// PrismDB with a specific compaction range-selection policy (Figure 6).
pub fn prismdb_with_policy(record_count: u64, policy: CompactionPolicy) -> PrismDb {
    let mut options = prism_options(record_count);
    options.compaction.policy = policy;
    PrismDb::open(options).expect("valid options")
}

/// PrismDB with promotions (and read-triggered compactions) disabled
/// (Figure 14b).
pub fn prismdb_without_promotions(record_count: u64) -> PrismDb {
    let mut options = prism_options(record_count);
    options.promotions_enabled = false;
    options.read_trigger = None;
    PrismDb::open(options).expect("valid options")
}

/// PrismDB with a specific pinning threshold (Figure 14c).
pub fn prismdb_with_pinning_threshold(record_count: u64, threshold: f64) -> PrismDb {
    let mut options = prism_options(record_count);
    options.pinning_threshold = threshold;
    PrismDb::open(options).expect("valid options")
}

/// PrismDB with a specific partition count (Figure 14d).
pub fn prismdb_with_partitions(record_count: u64, partitions: usize) -> PrismDb {
    let mut options = prism_options(record_count);
    options.num_partitions = partitions;
    PrismDb::open(options).expect("valid options")
}

/// PrismDB behind a shared handle, for multi-threaded clients. The engine
/// is the same as [`prismdb`]; only the ownership changes.
pub fn prismdb_shared(record_count: u64) -> std::sync::Arc<PrismDb> {
    std::sync::Arc::new(prismdb(record_count))
}

/// Options for the read-path (cache-sharding) sweep: a configuration
/// where the DRAM cache's lock is the *only* scaling obstacle left on the
/// read path, so sharding it (or not) is what the sweep measures.
///
/// - **Range partitioning** so that a latest-style key distribution lands
///   on one hot partition — the "Zipfian-hot partition" case the sharded
///   cache exists for. The default hash partitioning would scatter the
///   hot keys and hide the per-partition lock entirely.
/// - **NVM sized for the whole dataset** so no read pays a flash access.
///   At a ~65x flash:NVM latency gap a handful of flash reads would
///   dominate the makespan and mask any lock contention.
/// - **DRAM cache sized for the hot set** (per-partition share covers the
///   partition's whole key range) so both the sharded and the mutexed
///   variant converge to the same hit rate and the comparison isolates
///   lock contention rather than capacity-split effects.
pub fn read_path_options(record_count: u64) -> Options {
    let mut options = prism_options(record_count);
    options.partitioning = prism_db::Partitioning::Range;
    // NVM is split evenly across partitions, but range partitioning over
    // a half-full id space leaves the upper partitions empty — each *live*
    // partition owns 2/num_partitions of the dataset, so the total must be
    // several times the dataset for the live partitions' shares to hold
    // their whole range without demoting the tail to flash.
    let nvm = (record_count * 1024 * 6).max(64 * 1024);
    options.nvm_capacity_bytes = nvm;
    options.nvm_profile = DeviceProfile::optane_nvm(nvm);
    options.dram_cache_bytes = record_count * 1024 * 2 * options.num_partitions as u64;
    options
}

/// PrismDB configured for the read-path sweep (see [`read_path_options`])
/// with the default sharded DRAM cache, behind a shared handle.
pub fn prismdb_read_path(record_count: u64) -> std::sync::Arc<PrismDb> {
    std::sync::Arc::new(PrismDb::open(read_path_options(record_count)).expect("valid options"))
}

/// PrismDB with the per-partition DRAM cache collapsed to a single
/// sub-shard (one mutex): the baseline the read-path scalability sweep
/// compares the sharded cache against. Every cache probe on a partition
/// serialises on the same lock, so the serial read residue reported via
/// `ConcurrentKvStore::shard_read_serial_times` grows with the read rate
/// instead of dividing across sub-shards. Everything else matches
/// [`prismdb_read_path`].
pub fn prismdb_mutexed_cache(record_count: u64) -> std::sync::Arc<PrismDb> {
    let mut options = read_path_options(record_count);
    options.cache_shards = 1;
    std::sync::Arc::new(PrismDb::open(options).expect("valid options"))
}

/// PrismDB with `workers` background compaction worker threads (demotions
/// and promotions run off the foreground path; writes only stall at the
/// back-pressure ceiling), behind a shared handle.
pub fn prismdb_background(record_count: u64, workers: usize) -> std::sync::Arc<PrismDb> {
    let mut options = prism_options(record_count);
    options.compaction_workers = workers;
    std::sync::Arc::new(PrismDb::open(options).expect("valid options"))
}

/// PrismDB sized so sustained writes keep demotion compactions running in
/// steady state: NVM holds roughly a third of the logical dataset instead
/// of the default 60 %. This is the configuration the background-
/// compaction sweep uses for *all* its engines (`workers == 0` is inline
/// compaction), because its signal is how compaction work interacts with
/// the foreground — with the default sizing the measured window sees too
/// few compactions to compare anything.
pub fn prismdb_write_pressured(record_count: u64, workers: usize) -> std::sync::Arc<PrismDb> {
    let mut options = prism_options(record_count);
    let nvm = (record_count * 1024 / 3).max(64 * 1024);
    options.nvm_capacity_bytes = nvm;
    options.nvm_profile = DeviceProfile::optane_nvm(nvm);
    options.compaction_workers = workers;
    // A wider watermark band than the paper default (98 %/95 %): at these
    // scaled-down capacities the default band is only a couple of objects
    // per partition, so a background worker has no runway before the
    // foreground climbs from the high watermark to the ceiling.
    options.high_watermark = 0.95;
    options.low_watermark = 0.88;
    std::sync::Arc::new(PrismDb::open(options).expect("valid options"))
}

/// The multi-tier RocksDB baseline behind one global lock, for
/// multi-threaded clients (see `prism_lsm::LockedLsmTree`): the
/// coarse-locked foil the thread-sweep experiment compares PrismDB's
/// per-partition locking against.
pub fn rocksdb_het_locked(record_count: u64) -> std::sync::Arc<prism_lsm::LockedLsmTree> {
    std::sync::Arc::new(rocksdb_het(record_count).into_concurrent())
}

/// RocksDB-like LSM on a single NVM (Optane-class) device.
pub fn rocksdb_nvm(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::single_tier(
        record_count,
        DeviceProfile::optane_nvm(1),
    ))
    .expect("valid config")
}

/// RocksDB-like LSM on a single TLC NAND device (the datacenter default the
/// paper compares against).
pub fn rocksdb_tlc(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::single_tier(
        record_count,
        DeviceProfile::tlc_flash(1),
    ))
    .expect("valid config")
}

/// RocksDB-like LSM on a single QLC NAND device.
pub fn rocksdb_qlc(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::single_tier(
        record_count,
        DeviceProfile::qlc_flash(1),
    ))
    .expect("valid config")
}

/// Multi-tier RocksDB with the paper's default 1:5 NVM:QLC split.
pub fn rocksdb_het(record_count: u64) -> LsmTree {
    rocksdb_het_fraction(record_count, 1.0 / 6.0)
}

/// Multi-tier RocksDB with the NVM tier sized to `nvm_fraction` of total
/// capacity.
pub fn rocksdb_het_fraction(record_count: u64, nvm_fraction: f64) -> LsmTree {
    LsmTree::open(LsmConfig::het(record_count, nvm_fraction)).expect("valid config")
}

/// RocksDB with NVM used as a second-level read cache.
pub fn rocksdb_l2c(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::l2_cache(record_count, 1.0 / 6.0)).expect("valid config")
}

/// The paper's read-aware RocksDB prototype (pinned compactions).
pub fn rocksdb_read_aware(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::read_aware(record_count, 1.0 / 6.0)).expect("valid config")
}

/// Mutant: file-granularity placement across tiers.
pub fn mutant(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::mutant(record_count, 1.0 / 6.0)).expect("valid config")
}

/// SpanDB: NVM WAL via an SPDK-style path plus top LSM levels on NVM.
pub fn spandb(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::spandb(record_count, 1.0 / 6.0)).expect("valid config")
}

/// Multi-tier RocksDB with fsync-on-every-write enabled (Figure 13).
pub fn rocksdb_het_fsync(record_count: u64) -> LsmTree {
    LsmTree::open(LsmConfig::het(record_count, 1.0 / 6.0).with_fsync(true)).expect("valid config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_types::{Key, KvStore, Value};

    #[test]
    fn every_factory_builds_a_working_engine() {
        let keys = 500u64;
        let mut engines: Vec<Box<dyn KvStore>> = vec![
            Box::new(prismdb(keys)),
            Box::new(prismdb_with_nvm_fraction(keys, 0.1)),
            Box::new(prismdb_with_policy(keys, CompactionPolicy::Random)),
            Box::new(prismdb_without_promotions(keys)),
            Box::new(prismdb_with_pinning_threshold(keys, 0.25)),
            Box::new(prismdb_with_partitions(keys, 2)),
            Box::new(rocksdb_nvm(keys)),
            Box::new(rocksdb_tlc(keys)),
            Box::new(rocksdb_qlc(keys)),
            Box::new(rocksdb_het(keys)),
            Box::new(rocksdb_l2c(keys)),
            Box::new(rocksdb_read_aware(keys)),
            Box::new(mutant(keys)),
            Box::new(spandb(keys)),
            Box::new(rocksdb_het_fsync(keys)),
        ];
        for engine in engines.iter_mut() {
            engine
                .put(Key::from_id(1), Value::filled(128, 1))
                .unwrap_or_else(|e| panic!("{} put failed: {e}", engine.engine_name()));
            let got = engine.get(&Key::from_id(1)).unwrap();
            assert!(got.value.is_some(), "{} lost a key", engine.engine_name());
        }
    }

    #[test]
    fn costs_reflect_tiering() {
        let keys = 500u64;
        let nvm_cost = rocksdb_nvm(keys).cost_per_gb();
        let qlc_cost = rocksdb_qlc(keys).cost_per_gb();
        let het_cost = rocksdb_het(keys).cost_per_gb();
        let prism_cost = prismdb(keys).cost_per_gb();
        assert!(nvm_cost > het_cost && het_cost > qlc_cost);
        assert!(prism_cost < nvm_cost && prism_cost > qlc_cost);
    }
}
