//! Experiment sizing.

/// How large the experiments run.
///
/// The paper uses 100 M keys × 1 KB objects on real hardware; the simulator
/// preserves the capacity *ratios* (1:5 NVM:flash, 20 % tracker, 70 %
/// pinning threshold) while scaling the key count down so a full
/// `cargo bench --workspace` finishes in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of keys loaded before measurement.
    pub record_count: u64,
    /// Operations issued during warm-up (not measured).
    pub warmup_ops: u64,
    /// Operations measured.
    pub measure_ops: u64,
}

impl Scale {
    /// The default benchmark scale.
    pub fn default_bench() -> Self {
        Scale {
            record_count: 8_000,
            warmup_ops: 8_000,
            measure_ops: 16_000,
        }
    }

    /// A small scale for unit/integration tests of the experiment code.
    ///
    /// This is intentionally large enough that the fast tier cannot hold
    /// the whole dataset — otherwise tiering has nothing to do and the
    /// paper's comparisons degenerate.
    pub fn quick() -> Self {
        Scale {
            record_count: 4_000,
            warmup_ops: 3_000,
            measure_ops: 6_000,
        }
    }

    /// A larger scale closer to the paper's run lengths (still simulated).
    pub fn paperish() -> Self {
        Scale {
            record_count: 60_000,
            warmup_ops: 60_000,
            measure_ops: 120_000,
        }
    }

    /// Client thread counts exercised by the thread-sweep scalability
    /// experiment. Doubling stops at 8: the default engine configuration
    /// has 8 partitions, so extra client threads past that can only queue
    /// on partition locks.
    pub fn thread_sweep(&self) -> &'static [usize] {
        &[1, 2, 4, 8]
    }

    /// Pick the scale from the `PRISM_BENCH_SCALE` environment variable:
    /// `quick`, `default` (default) or `paperish`.
    pub fn from_env() -> Self {
        match std::env::var("PRISM_BENCH_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            Ok("paperish") => Scale::paperish(),
            _ => Scale::default_bench(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().record_count < Scale::default_bench().record_count);
        assert!(Scale::default_bench().record_count < Scale::paperish().record_count);
    }

    #[test]
    fn from_env_defaults_without_variable() {
        std::env::remove_var("PRISM_BENCH_SCALE");
        assert_eq!(Scale::from_env(), Scale::default_bench());
    }
}
