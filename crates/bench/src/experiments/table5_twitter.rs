//! Table 5: performance on the Twitter production-trace workloads.

use prism_types::OpKind;
use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Run the three Twitter cluster synthetics against RocksDB-het and PrismDB,
/// reporting throughput and average put latency.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;

    let workloads = vec![
        ("write-heavy (cluster39)", Workload::twitter_cluster39(keys)),
        ("mixed (cluster19)", Workload::twitter_cluster19(keys)),
        ("read-heavy (cluster51)", Workload::twitter_cluster51(keys)),
    ];

    let mut table = Table::new(
        "Table 5: Twitter production workloads",
        &[
            "trace",
            "rocksdb tput (Kops/s)",
            "prismdb tput (Kops/s)",
            "rocksdb avg put (us)",
            "prismdb avg put (us)",
        ],
    );

    for (label, workload) in workloads {
        let mut rocks = engines::rocksdb_het(keys);
        let rocks_cost = rocks.cost_per_gb();
        let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);
        let mut prism = engines::prismdb(keys);
        let prism_cost = prism.cost_per_gb();
        let prism_result = runner.run(&mut prism, &workload, prism_cost);
        let put_latency = |result: &crate::RunResult| {
            let update = result.kind(OpKind::Update);
            let insert = result.kind(OpKind::Insert);
            let total = update.count + insert.count;
            if total == 0 {
                0.0
            } else {
                (update.mean_us * update.count as f64 + insert.mean_us * insert.count as f64)
                    / total as f64
            }
        };
        table.add_row(vec![
            label.to_string(),
            fmt_f64(rocks_result.throughput_kops),
            fmt_f64(prism_result.throughput_kops),
            fmt_f64(put_latency(&rocks_result)),
            fmt_f64(put_latency(&prism_result)),
        ]);
    }

    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_prism_wins_the_skewed_read_heavy_trace() {
        let tables = run(&Scale::quick());
        let t = &tables[0];
        let rocks: f64 = t
            .cell("read-heavy (cluster51)", "rocksdb tput (Kops/s)")
            .unwrap()
            .parse()
            .unwrap();
        let prism: f64 = t
            .cell("read-heavy (cluster51)", "prismdb tput (Kops/s)")
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            prism > rocks,
            "prism {prism} vs rocksdb {rocks} on cluster51"
        );
        assert_eq!(t.row_count(), 3);
    }
}
