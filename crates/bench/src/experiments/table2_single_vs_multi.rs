//! Table 2: single-tier vs multi-tier throughput and cost (YCSB-A, Zipf 0.8).

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Run RocksDB on single-tier NVM and QLC, multi-tier RocksDB, and PrismDB
/// on the heterogeneous setup, reporting throughput and blended cost.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let workload = Workload::ycsb_a(scale.record_count).with_zipf(0.8);

    let mut table = Table::new(
        "Table 2: single-tier vs multi-tier (YCSB-A, Zipf 0.8)",
        &["config", "throughput (Kops/s)", "cost ($/GB)"],
    );

    let mut nvm = engines::rocksdb_nvm(scale.record_count);
    let nvm_cost = nvm.cost_per_gb();
    let nvm_result = runner.run(&mut nvm, &workload, nvm_cost);
    table.add_row(vec![
        "rocksdb-nvm".into(),
        fmt_f64(nvm_result.throughput_kops),
        fmt_f64(nvm_cost),
    ]);

    let mut qlc = engines::rocksdb_qlc(scale.record_count);
    let qlc_cost = qlc.cost_per_gb();
    let qlc_result = runner.run(&mut qlc, &workload, qlc_cost);
    table.add_row(vec![
        "rocksdb-qlc".into(),
        fmt_f64(qlc_result.throughput_kops),
        fmt_f64(qlc_cost),
    ]);

    let mut het = engines::rocksdb_het(scale.record_count);
    let het_cost = het.cost_per_gb();
    let het_result = runner.run(&mut het, &workload, het_cost);
    table.add_row(vec![
        "rocksdb-het".into(),
        fmt_f64(het_result.throughput_kops),
        fmt_f64(het_cost),
    ]);

    let mut prism = engines::prismdb(scale.record_count);
    let prism_cost = prism.cost_per_gb();
    let prism_result = runner.run(&mut prism, &workload, prism_cost);
    table.add_row(vec![
        "prismdb-het".into(),
        fmt_f64(prism_result.throughput_kops),
        fmt_f64(prism_cost),
    ]);

    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let tables = run(&Scale::quick());
        let t = &tables[0];
        let tput =
            |row: &str| -> f64 { t.cell(row, "throughput (Kops/s)").unwrap().parse().unwrap() };
        // NVM single-tier beats QLC single-tier; PrismDB beats multi-tier
        // RocksDB on equivalent hardware.
        assert!(tput("rocksdb-nvm") > tput("rocksdb-qlc"));
        assert!(tput("prismdb-het") > tput("rocksdb-het"));
        let cost = |row: &str| -> f64 { t.cell(row, "cost ($/GB)").unwrap().parse().unwrap() };
        assert!(cost("rocksdb-nvm") > cost("rocksdb-het"));
        assert!(cost("rocksdb-het") > cost("rocksdb-qlc"));
    }
}
