//! Table 1: characteristics of the simulated storage devices.

use prism_storage::DeviceProfile;

use crate::report::{fmt_f64, Table};
use crate::Scale;

/// Print the device characteristics used by every other experiment.
pub fn run(_scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Table 1: NVM vs dense flash device characteristics",
        &[
            "device",
            "lifetime (DWPD)",
            "cost ($/GB)",
            "4KB rand read (us)",
            "4KB rand write (us)",
            "seq write (MB/s)",
        ],
    );
    for profile in [
        DeviceProfile::optane_nvm(1 << 30),
        DeviceProfile::tlc_flash(1 << 30),
        DeviceProfile::qlc_flash(1 << 30),
    ] {
        table.add_row(vec![
            profile.kind.label().to_string(),
            fmt_f64(profile.dwpd),
            fmt_f64(profile.cost_per_gb),
            fmt_f64(profile.read_latency_4k.as_micros_f64()),
            fmt_f64(profile.write_latency_4k.as_micros_f64()),
            profile.seq_write_mbps.to_string(),
        ]);
    }
    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_preserves_paper_gaps() {
        let tables = run(&Scale::quick());
        let table = &tables[0];
        assert_eq!(table.row_count(), 3);
        let nvm_read: f64 = table
            .cell("nvm", "4KB rand read (us)")
            .unwrap()
            .parse()
            .unwrap();
        let qlc_read: f64 = table
            .cell("qlc", "4KB rand read (us)")
            .unwrap()
            .parse()
            .unwrap();
        assert!(qlc_read / nvm_read > 50.0, "read gap must stay ~65x");
    }
}
