//! Figure 11: YCSB-A performance across Zipfian skew levels.

use prism_types::OpKind;
use prism_workloads::{Distribution, Workload};

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Sweep the key-skew parameter for YCSB-A, comparing PrismDB with the
/// multi-tier LSM on throughput and read/update latency percentiles.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let distributions = vec![
        ("unif".to_string(), Distribution::Uniform),
        ("0.4".to_string(), Distribution::Zipfian(0.4)),
        ("0.6".to_string(), Distribution::Zipfian(0.6)),
        ("0.8".to_string(), Distribution::Zipfian(0.8)),
        ("0.99".to_string(), Distribution::Zipfian(0.99)),
        ("1.2".to_string(), Distribution::Zipfian(1.2)),
        ("1.4".to_string(), Distribution::Zipfian(1.4)),
    ];

    let mut table = Table::new(
        "Figure 11: YCSB-A across Zipfian parameters",
        &[
            "distribution",
            "rocksdb tput (Kops/s)",
            "prismdb tput (Kops/s)",
            "rocksdb read p99 (us)",
            "prismdb read p99 (us)",
            "rocksdb update p99 (us)",
            "prismdb update p99 (us)",
        ],
    );

    for (label, distribution) in distributions {
        let workload = Workload::ycsb_a(keys).with_distribution(distribution);
        let mut rocks = engines::rocksdb_het(keys);
        let rocks_cost = rocks.cost_per_gb();
        let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);
        let mut prism = engines::prismdb(keys);
        let prism_cost = prism.cost_per_gb();
        let prism_result = runner.run(&mut prism, &workload, prism_cost);
        table.add_row(vec![
            label,
            fmt_f64(rocks_result.throughput_kops),
            fmt_f64(prism_result.throughput_kops),
            fmt_f64(rocks_result.kind(OpKind::Read).p99_us),
            fmt_f64(prism_result.kind(OpKind::Read).p99_us),
            fmt_f64(rocks_result.kind(OpKind::Update).p99_us),
            fmt_f64(prism_result.kind(OpKind::Update).p99_us),
        ]);
    }
    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_prism_provides_benefit_at_high_skew() {
        let mut scale = Scale::quick();
        scale.measure_ops = 1_500;
        let tables = run(&scale);
        let t = &tables[0];
        let rocks: f64 = t
            .cell("0.99", "rocksdb tput (Kops/s)")
            .unwrap()
            .parse()
            .unwrap();
        let prism: f64 = t
            .cell("0.99", "prismdb tput (Kops/s)")
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            prism > rocks,
            "prism {prism} should beat rocksdb {rocks} at zipf 0.99"
        );
        assert_eq!(t.row_count(), 7);
    }
}
