//! Async submission front-end: logical clients multiplexed on a few
//! executor threads vs one OS thread per client.
//!
//! The ROADMAP's async-runtime item: [`prism_frontend::Frontend`] queues
//! requests per partition and a small executor pool drains each queue,
//! coalescing all pending writes of a partition into one
//! group-committed `WriteBatch` — so coalescing width *emerges from
//! queue pressure* (more in-flight clients → wider groups) instead of
//! from client-side buffering. This sweep drives the same engine
//! configuration with 16/64/256 logical clients on 1/2/4 executors
//! (via [`crate::Runner::run_async_frontend`], makespan =
//! `max(busiest executor, busiest shard, busiest background worker)`)
//! on a write-heavy (YCSB-A) and a read-only (YCSB-C) mix, next to raw
//! thread-per-client baselines ([`crate::Runner::run_threaded`]) at
//! 1/2/4 OS threads.

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, write_bench_json, SummaryEntry, Table};
use crate::{Runner, Scale};

/// Logical-client population sweep.
pub const CLIENT_SWEEP: [usize; 3] = [16, 64, 256];
/// Executor-thread sweep.
pub const EXECUTOR_SWEEP: [usize; 3] = [1, 2, 4];

/// Run one workload set through every client count × executor count,
/// plus a raw OS-thread baseline row per thread count. Row labels are
/// `"<workload>/c<clients>/e<executors>"` and `"<workload>/t<threads>/raw"`.
pub fn sweep_with(
    scale: &Scale,
    workloads: &[Workload],
    clients: &[usize],
    executors: &[usize],
    raw_threads: &[usize],
) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let mut table = Table::new(
        "Async front-end: N logical clients on E executors vs raw OS threads",
        &[
            "config",
            "Kops/s",
            "coalesce width",
            "groups",
            "rejected",
            "wakeups",
            "max queue",
        ],
    );
    for workload in workloads {
        for &t in raw_threads {
            // Baseline: one OS thread per client, per-op submission on
            // the same engine configuration.
            let db = engines::prismdb_shared(keys);
            let result = runner.run_threaded(&db, workload, t);
            table.add_row(vec![
                format!("{}/t{}/raw", workload.name, t),
                fmt_f64(result.throughput_kops),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        for &c in clients {
            for &e in executors {
                let db = engines::prismdb_shared(keys);
                let result = runner.run_async_frontend(db, workload, c, e);
                table.add_row(vec![
                    format!("{}/c{}/e{}", workload.name, c, e),
                    fmt_f64(result.throughput_kops),
                    fmt_f64(result.frontend.mean_coalesce_width()),
                    result.frontend.coalesced_groups.to_string(),
                    result.frontend.rejected.to_string(),
                    result.frontend.wakeups.to_string(),
                    result.frontend.max_queue_depth.to_string(),
                ]);
            }
        }
    }
    table.print();
    table
}

/// The full sweep: YCSB-A and YCSB-C × 16/64/256 logical clients ×
/// 1/2/4 executors, with raw 1/2/4-OS-thread baselines.
pub fn sweep(scale: &Scale) -> Table {
    let keys = scale.record_count;
    sweep_with(
        scale,
        &[Workload::ycsb_a(keys), Workload::ycsb_c(keys)],
        &CLIENT_SWEEP,
        &EXECUTOR_SWEEP,
        &[1, 2, 4],
    )
}

/// Run the sweep and emit `BENCH_async_frontend.json` plus the sweep's
/// `BENCH_summary.json` entry.
pub fn run(scale: &Scale) -> Vec<Table> {
    let table = sweep(scale);
    write_bench_json("async_frontend", std::slice::from_ref(&table));
    // The summary entry must describe the *front-end*: drop the raw
    // thread-per-client baseline rows before picking the best config, or
    // a mix where the baseline wins (e.g. read-only) would record a
    // configuration that never used the front-end at all.
    let mut frontend_only = table.clone();
    frontend_only
        .rows
        .retain(|row| row.first().is_some_and(|label| !label.ends_with("/raw")));
    if let Some(entry) = SummaryEntry::best_of(
        "async_frontend",
        &frontend_only,
        "Kops/s",
        scale.record_count,
    ) {
        crate::report::update_bench_summary(&entry);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_f64(table: &Table, row: &str, col: &str) -> f64 {
        table
            .cell(row, col)
            .unwrap_or_else(|| panic!("missing cell {row}/{col}"))
            .parse()
            .unwrap()
    }

    /// The acceptance bar for this PR: 256 multiplexed logical clients
    /// on 4 executor threads must match or beat 4 raw OS threads on the
    /// write-heavy mix — the coalescing that queue pressure produces has
    /// to pay for the front-end. Real thread interleaving perturbs
    /// shared engine state between runs, so each configuration is
    /// measured three times and the medians are compared.
    #[test]
    fn frontend_with_256_clients_on_4_executors_beats_4_raw_threads() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let mut raw_runs = Vec::new();
        let mut async_runs = Vec::new();
        let mut last = None;
        for _ in 0..3 {
            let table = sweep_with(&scale, &[Workload::ycsb_a(keys)], &[256], &[4], &[4]);
            raw_runs.push(cell_f64(&table, "ycsb-a/t4/raw", "Kops/s"));
            async_runs.push(cell_f64(&table, "ycsb-a/c256/e4", "Kops/s"));
            last = Some(table);
        }
        let median = |runs: &mut Vec<f64>| {
            runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            runs[runs.len() / 2]
        };
        let raw = median(&mut raw_runs);
        let multiplexed = median(&mut async_runs);
        assert!(
            multiplexed >= raw,
            "256 clients / 4 executors ({multiplexed:.1} Kops/s) must be at \
             least as fast as 4 raw OS threads ({raw:.1} Kops/s) \
             ({async_runs:?} vs {raw_runs:?})"
        );
        // The coalescing that makes this possible must really have
        // happened: mean group width > 1 under queue pressure.
        let table = last.expect("three sweeps ran");
        let width = cell_f64(&table, "ycsb-a/c256/e4", "coalesce width");
        assert!(
            width > 1.0,
            "256 clients on 4 executors must coalesce writes (width {width})"
        );
    }

    /// More in-flight clients mean more queued writes per drain: the
    /// mean coalesce width must grow with the client population.
    #[test]
    fn coalesce_width_grows_with_queue_pressure() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let table = sweep_with(&scale, &[Workload::ycsb_a(keys)], &[16, 256], &[2], &[]);
        let narrow = cell_f64(&table, "ycsb-a/c16/e2", "coalesce width");
        let wide = cell_f64(&table, "ycsb-a/c256/e2", "coalesce width");
        assert!(
            wide > narrow,
            "coalesce width must grow with clients (16 clients: {narrow}, \
             256 clients: {wide})"
        );
        assert!(wide > 1.0);
    }

    /// The read-only mix flows through the same queues: every submitted
    /// op completes and throughput is positive on all configurations.
    #[test]
    fn read_only_mix_round_trips_through_the_frontend() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let table = sweep_with(&scale, &[Workload::ycsb_c(keys)], &[64], &[1, 2], &[1]);
        for row in ["ycsb-c/t1/raw", "ycsb-c/c64/e1", "ycsb-c/c64/e2"] {
            assert!(cell_f64(&table, row, "Kops/s") > 0.0, "{row} must run");
        }
    }
}
