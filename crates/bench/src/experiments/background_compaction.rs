//! Inline vs background compaction: stall time and throughput.
//!
//! PrismDB's headline claim is that multi-tiered compaction keeps
//! foreground latency low by moving cold objects to flash *off the
//! critical path*. This experiment measures exactly that: the same
//! write-heavy (YCSB-A) and insert-heavy (YCSB-D) workloads are driven
//! from 1/2/4 client threads against the inline-compaction engine (every
//! watermark trip stalls the triggering client) and against engines with
//! 1/2/4 background compaction workers (watermark trips enqueue a job;
//! clients only stall at the back-pressure ceiling). Makespans come from
//! [`crate::Runner::run_threaded`]'s virtual-time model:
//! `max(busiest client, busiest shard, busiest compaction worker)`.

use prism_workloads::{Distribution, Workload};

use crate::engines;
use crate::report::{fmt_f64, write_bench_json, Table};
use crate::{Runner, Scale};

/// Engine configurations compared: `None` is inline compaction, `Some(n)`
/// uses `n` background workers.
const WORKER_CONFIGS: [Option<usize>; 4] = [None, Some(1), Some(2), Some(4)];

fn config_label(workers: Option<usize>) -> String {
    match workers {
        None => "inline".to_string(),
        Some(n) => format!("bg{n}"),
    }
}

/// The write-heavy pressure mix: YCSB-A's 50/50 read/update op mix, with
/// the *updates* spread uniformly over the key space. Zipfian updates are
/// absorbed in place by the NVM-resident hot set (PrismDB's design point),
/// so they generate almost no compaction to take off the foreground path;
/// uniform updates keep hitting flash-resident cold keys, whose new
/// versions land on NVM and keep demotion compactions running in steady
/// state.
pub fn write_pressure_workload(record_count: u64) -> Workload {
    let mut w = Workload::ycsb_a(record_count);
    w.name = "ycsb-a-wide".to_string();
    w.write_distribution = Some(Distribution::Uniform);
    w
}

/// Run one workload through every thread count × worker configuration.
/// Row labels are `"<workload>/t<threads>/<config>"`.
pub fn sweep_with(
    scale: &Scale,
    workloads: &[Workload],
    threads: &[usize],
    configs: &[Option<usize>],
) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let mut table = Table::new(
        "Background compaction: inline vs N workers (stall time off the foreground path)",
        &[
            "config",
            "Kops/s",
            "stall (ms)",
            "overlap (ms)",
            "bp stalls",
            "compaction jobs",
            "max queue",
        ],
    );
    for workload in workloads {
        for &t in threads {
            for &workers in configs {
                let db = engines::prismdb_write_pressured(keys, workers.unwrap_or(0));
                let result = runner.run_threaded(&db, workload, t);
                table.add_row(vec![
                    format!("{}/t{}/{}", workload.name, t, config_label(workers)),
                    fmt_f64(result.throughput_kops),
                    fmt_f64(result.stats.compaction.stall_time.as_millis() as f64),
                    fmt_f64(result.stats.compaction.overlap_time.as_millis() as f64),
                    result.stats.compaction.backpressure_stalls.to_string(),
                    result.stats.compaction.jobs.to_string(),
                    result.stats.compaction.max_queue_depth.to_string(),
                ]);
            }
        }
    }
    table.print();
    table
}

/// The full sweep: the write-pressure mix, plain YCSB-A and YCSB-D ×
/// 1/2/4 client threads × inline and 1/2/4 background workers.
pub fn sweep(scale: &Scale) -> Table {
    let keys = scale.record_count;
    sweep_with(
        scale,
        &[
            write_pressure_workload(keys),
            Workload::ycsb_a(keys),
            Workload::ycsb_d(keys),
        ],
        &[1, 2, 4],
        &WORKER_CONFIGS,
    )
}

/// Run the sweep and emit `BENCH_background_compaction.json` plus the
/// sweep's `BENCH_summary.json` entry.
pub fn run(scale: &Scale) -> Vec<Table> {
    let table = sweep(scale);
    write_bench_json("background_compaction", std::slice::from_ref(&table));
    if let Some(entry) = crate::report::SummaryEntry::best_of(
        "background_compaction",
        &table,
        "Kops/s",
        scale.record_count,
    ) {
        crate::report::update_bench_summary(&entry);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_f64(table: &Table, row: &str, col: &str) -> f64 {
        table
            .cell(row, col)
            .unwrap_or_else(|| panic!("missing cell {row}/{col}"))
            .parse()
            .unwrap()
    }

    /// The acceptance bar for this PR: on the write-heavy mix, background
    /// workers must cut foreground stall time by at least 2x and push
    /// throughput strictly above the inline configuration at 2 and 4
    /// client threads.
    #[test]
    fn background_workers_beat_inline_compaction_on_write_heavy_mix() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let table = sweep_with(
            &scale,
            &[write_pressure_workload(keys)],
            &[2, 4],
            &[None, Some(2), Some(4)],
        );
        for threads in [2usize, 4] {
            let inline_tput = cell_f64(&table, &format!("ycsb-a-wide/t{threads}/inline"), "Kops/s");
            let inline_stall = cell_f64(
                &table,
                &format!("ycsb-a-wide/t{threads}/inline"),
                "stall (ms)",
            );
            for workers in [2usize, 4] {
                let row = format!("ycsb-a-wide/t{threads}/bg{workers}");
                let bg_tput = cell_f64(&table, &row, "Kops/s");
                let bg_stall = cell_f64(&table, &row, "stall (ms)");
                assert!(
                    bg_tput > inline_tput,
                    "{row}: background throughput {bg_tput:.1} Kops/s must beat \
                     inline {inline_tput:.1} Kops/s"
                );
                assert!(
                    inline_stall >= 2.0 * bg_stall,
                    "{row}: inline stall {inline_stall:.2} ms must be at least 2x \
                     background stall {bg_stall:.2} ms"
                );
            }
        }
    }

    #[test]
    fn background_engines_overlap_compaction_with_foreground() {
        let scale = Scale::quick();
        let keys = scale.record_count;
        let table = sweep_with(
            &scale,
            &[write_pressure_workload(keys)],
            &[2],
            &[None, Some(2)],
        );
        // The cold-key churn keeps demotions running: the background
        // engine must report overlapped compaction time and jobs, the
        // inline engine none.
        let inline_overlap = cell_f64(&table, "ycsb-a-wide/t2/inline", "overlap (ms)");
        let inline_jobs = cell_f64(&table, "ycsb-a-wide/t2/inline", "compaction jobs");
        let bg_overlap = cell_f64(&table, "ycsb-a-wide/t2/bg2", "overlap (ms)");
        let bg_jobs = cell_f64(&table, "ycsb-a-wide/t2/bg2", "compaction jobs");
        assert_eq!(inline_overlap, 0.0, "inline compaction never overlaps");
        assert!(inline_jobs > 0.0, "the pressure mix must compact");
        assert!(bg_overlap > 0.0, "background compaction must overlap");
        assert!(bg_jobs > 0.0, "background workers must run jobs");
    }
}
