//! Figure 10: throughput, median and tail latency across the YCSB suite.

use prism_types::KvStore;
use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{RunResult, Runner, Scale};

fn engines_for(keys: u64) -> Vec<(&'static str, Box<dyn KvStore>)> {
    vec![
        (
            "rocksdb-het",
            Box::new(engines::rocksdb_het(keys)) as Box<dyn KvStore>,
        ),
        ("rocksdb-l2c", Box::new(engines::rocksdb_l2c(keys))),
        ("rocksdb-ra", Box::new(engines::rocksdb_read_aware(keys))),
        ("mutant", Box::new(engines::mutant(keys))),
        ("prismdb", Box::new(engines::prismdb(keys))),
    ]
}

fn cost_of(name: &str, keys: u64) -> f64 {
    match name {
        "prismdb" => engines::prismdb(keys).cost_per_gb(),
        _ => engines::rocksdb_het(keys).cost_per_gb(),
    }
}

/// Run every engine on YCSB A–F, reporting throughput plus median and p99
/// latency normalised to PrismDB (as the paper's Figure 10b/c normalises to
/// the best system).
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;

    let mut throughput = Table::new(
        "Figure 10a: YCSB throughput (Kops/s)",
        &["engine", "A", "B", "C", "D", "E", "F"],
    );
    let mut p50 = Table::new(
        "Figure 10b: median latency normalised to prismdb",
        &["engine", "A", "B", "C", "D", "E", "F"],
    );
    let mut p99 = Table::new(
        "Figure 10c: p99 latency normalised to prismdb",
        &["engine", "A", "B", "C", "D", "E", "F"],
    );

    let letters = ['a', 'b', 'c', 'd', 'e', 'f'];
    let mut results: Vec<(String, Vec<RunResult>)> = Vec::new();
    for (name, mut engine) in engines_for(keys) {
        let cost = cost_of(name, keys);
        let mut per_workload = Vec::new();
        for letter in letters {
            let workload = Workload::ycsb(letter, keys);
            per_workload.push(runner.run(engine.as_mut(), &workload, cost));
        }
        results.push((name.to_string(), per_workload));
    }

    let prism_results = results
        .iter()
        .find(|(name, _)| name == "prismdb")
        .expect("prismdb always runs")
        .1
        .clone();

    for (name, per_workload) in &results {
        let tputs: Vec<String> = per_workload
            .iter()
            .map(|r| fmt_f64(r.throughput_kops))
            .collect();
        throughput.add_row([vec![name.clone()], tputs].concat());
        let p50s: Vec<String> = per_workload
            .iter()
            .zip(prism_results.iter())
            .map(|(r, base)| fmt_f64(r.p50_us / base.p50_us.max(1e-9)))
            .collect();
        p50.add_row([vec![name.clone()], p50s].concat());
        let p99s: Vec<String> = per_workload
            .iter()
            .zip(prism_results.iter())
            .map(|(r, base)| fmt_f64(r.p99_us / base.p99_us.max(1e-9)))
            .collect();
        p99.add_row([vec![name.clone()], p99s].concat());
    }

    throughput.print();
    p50.print();
    p99.print();
    vec![throughput, p50, p99]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_prism_wins_point_query_workloads() {
        let tables = run(&Scale::quick());
        let throughput = &tables[0];
        let get = |engine: &str, col: &str| -> f64 {
            throughput.cell(engine, col).unwrap().parse().unwrap()
        };
        // PrismDB outperforms the multi-tier LSM on the write-heavy and
        // read-heavy point-query workloads (A and B).
        assert!(get("prismdb", "A") > get("rocksdb-het", "A"));
        assert!(get("prismdb", "B") > get("rocksdb-het", "B"));
    }
}
