//! Figure 6: precise-MSC vs approx-MSC vs random range selection.

use prism_compaction::CompactionPolicy;
use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Compare the three compaction range-selection policies on YCSB-A,
/// reporting throughput, flash write I/O per user byte and average
/// compaction time.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let workload = Workload::ycsb_a(scale.record_count).with_zipf(0.99);

    let mut table = Table::new(
        "Figure 6: compaction policy comparison (YCSB-A, Zipf 0.99)",
        &[
            "policy",
            "throughput (Kops/s)",
            "flash write amplification",
            "avg compaction time (ms)",
        ],
    );
    for (label, policy) in [
        ("random", CompactionPolicy::Random),
        ("precise-msc", CompactionPolicy::PreciseMsc),
        ("approx-msc", CompactionPolicy::ApproxMsc),
    ] {
        let mut db = engines::prismdb_with_policy(scale.record_count, policy);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &workload, cost);
        let compaction = result.stats.compaction;
        let avg_compaction_ms = if compaction.jobs == 0 {
            0.0
        } else {
            compaction.total_time.as_nanos() as f64 / compaction.jobs as f64 / 1e6
        };
        table.add_row(vec![
            label.to_string(),
            fmt_f64(result.throughput_kops),
            fmt_f64(result.stats.flash_write_amplification()),
            fmt_f64(avg_compaction_ms),
        ]);
    }
    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msc_policies_reduce_flash_write_amplification() {
        let tables = run(&Scale::quick());
        let t = &tables[0];
        let wa = |row: &str| -> f64 {
            t.cell(row, "flash write amplification")
                .unwrap()
                .parse()
                .unwrap()
        };
        // The MSC metric (approximate or precise) must not write
        // meaningfully more flash per user byte than random range
        // selection. At simulator scale the gap is far smaller than the
        // paper's 2.5x (see EXPERIMENTS.md), so only parity is asserted.
        assert!(wa("approx-msc") <= wa("random") * 1.25);
        assert!(wa("precise-msc") <= wa("random") * 1.25);
    }
}
