//! Figure 9: throughput vs storage cost across single- and multi-tier
//! configurations.

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Sweep single-tier and heterogeneous configurations for RocksDB-like
/// baselines and PrismDB under YCSB-A, reporting throughput and cost per GB.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let workload = Workload::ycsb_a(scale.record_count);
    let keys = scale.record_count;

    let mut table = Table::new(
        "Figure 9: throughput vs storage cost (YCSB-A, Zipf 0.99)",
        &["config", "cost ($/GB)", "throughput (Kops/s)"],
    );

    let mut add = |label: &str, result: crate::RunResult| {
        table.add_row(vec![
            label.to_string(),
            fmt_f64(result.cost_per_gb),
            fmt_f64(result.throughput_kops),
        ]);
    };

    let mut qlc = engines::rocksdb_qlc(keys);
    let c = qlc.cost_per_gb();
    add("rocksdb-qlc", runner.run(&mut qlc, &workload, c));
    let mut tlc = engines::rocksdb_tlc(keys);
    let c = tlc.cost_per_gb();
    add("rocksdb-tlc", runner.run(&mut tlc, &workload, c));
    let mut nvm = engines::rocksdb_nvm(keys);
    let c = nvm.cost_per_gb();
    add("rocksdb-nvm", runner.run(&mut nvm, &workload, c));

    for (label, fraction) in [("het10", 0.10), ("het20", 0.20), ("het33", 0.33)] {
        let mut het = engines::rocksdb_het_fraction(keys, fraction);
        let c = het.cost_per_gb();
        add(
            &format!("rocksdb-{label}"),
            runner.run(&mut het, &workload, c),
        );
    }

    let mut l2c = engines::rocksdb_l2c(keys);
    let c = l2c.cost_per_gb();
    add("rocksdb-l2c", runner.run(&mut l2c, &workload, c));
    let mut ra = engines::rocksdb_read_aware(keys);
    let c = ra.cost_per_gb();
    add("rocksdb-ra", runner.run(&mut ra, &workload, c));
    let mut mutant = engines::mutant(keys);
    let c = mutant.cost_per_gb();
    add("mutant", runner.run(&mut mutant, &workload, c));

    for (label, fraction) in [("het10", 0.10), ("het20", 0.20), ("het33", 0.33)] {
        let mut prism = engines::prismdb_with_nvm_fraction(keys, fraction);
        let c = prism.cost_per_gb();
        add(
            &format!("prismdb-{label}"),
            runner.run(&mut prism, &workload, c),
        );
    }

    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_prism_dominates_het_lsm_at_same_cost_point() {
        let tables = run(&Scale::quick());
        let t = &tables[0];
        let tput =
            |row: &str| -> f64 { t.cell(row, "throughput (Kops/s)").unwrap().parse().unwrap() };
        let cost = |row: &str| -> f64 { t.cell(row, "cost ($/GB)").unwrap().parse().unwrap() };
        assert!(tput("prismdb-het20") > tput("rocksdb-het20"));
        assert!((cost("prismdb-het20") - cost("rocksdb-het20")).abs() < 0.2);
        // More NVM means higher cost for both systems.
        assert!(cost("rocksdb-het33") > cost("rocksdb-het10"));
        assert!(cost("prismdb-het33") > cost("prismdb-het10"));
    }
}
