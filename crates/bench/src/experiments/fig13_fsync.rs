//! Figure 13: performance with synchronous durability (fsync) enabled.

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Compare RocksDB with fsync, SpanDB and PrismDB on YCSB-A and YCSB-B with
/// synchronous durability.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;

    let mut throughput = Table::new(
        "Figure 13a: throughput with fsync enabled (Kops/s)",
        &["engine", "YCSB-A", "YCSB-B"],
    );
    let mut p99 = Table::new(
        "Figure 13b: p99 latency with fsync enabled, normalised to prismdb",
        &["engine", "YCSB-A", "YCSB-B"],
    );

    let workloads = [Workload::ycsb_a(keys), Workload::ycsb_b(keys)];

    let mut prism_results = Vec::new();
    {
        let mut prism = engines::prismdb(keys);
        let cost = prism.cost_per_gb();
        for workload in &workloads {
            prism_results.push(runner.run(&mut prism, workload, cost));
        }
    }

    let mut rows: Vec<(&str, Vec<crate::RunResult>)> = Vec::new();
    let mut rocks = engines::rocksdb_het_fsync(keys);
    let rocks_cost = rocks.cost_per_gb();
    rows.push((
        "rocksdb-fsync",
        workloads
            .iter()
            .map(|w| runner.run(&mut rocks, w, rocks_cost))
            .collect(),
    ));
    let mut span = engines::spandb(keys);
    let span_cost = span.cost_per_gb();
    rows.push((
        "spandb",
        workloads
            .iter()
            .map(|w| runner.run(&mut span, w, span_cost))
            .collect(),
    ));
    rows.push(("prismdb", prism_results.clone()));

    for (name, results) in &rows {
        throughput.add_row(vec![
            name.to_string(),
            fmt_f64(results[0].throughput_kops),
            fmt_f64(results[1].throughput_kops),
        ]);
        p99.add_row(vec![
            name.to_string(),
            fmt_f64(results[0].p99_us / prism_results[0].p99_us.max(1e-9)),
            fmt_f64(results[1].p99_us / prism_results[1].p99_us.max(1e-9)),
        ]);
    }

    throughput.print();
    p99.print();
    vec![throughput, p99]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_prism_beats_fsync_baselines_on_writes() {
        let tables = run(&Scale::quick());
        let t = &tables[0];
        let get = |engine: &str| -> f64 { t.cell(engine, "YCSB-A").unwrap().parse().unwrap() };
        // PrismDB's partitioned, WAL-free design wins under fsync; SpanDB's
        // fast logging beats stock RocksDB with fsync.
        assert!(get("prismdb") > get("spandb"));
        assert!(get("spandb") >= get("rocksdb-fsync") * 0.9);
    }
}
