//! Figure 12: projected QLC lifetime under different workload mixes.

use prism_storage::{DeviceProfile, EnduranceModel};
use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Measure PrismDB's flash write behaviour once, then project the QLC
/// lifetime across read/write ratios and request rates, annotating the
/// production workloads the paper highlights (UP2X, ZippyDB, UDB).
pub fn run(scale: &Scale) -> Vec<Table> {
    // Calibrate how many flash bytes PrismDB writes per client-written byte
    // from a skewed, read-heavy run (most production workloads in Figure 12
    // are read-dominated and Zipfian, so hot updates are absorbed on NVM and
    // only a small fraction of written bytes ever reaches flash).
    let runner = Runner::new(super::run_config(scale));
    let workload = Workload::ycsb_b(scale.record_count).with_zipf(0.99);
    let mut db = engines::prismdb(scale.record_count);
    let cost = db.cost_per_gb();
    let result = runner.run(&mut db, &workload, cost);
    // Clamp to a sane long-horizon range: short measurement windows at
    // simulator scale overstate per-byte flash traffic because a single
    // compaction rewrites ranges that amortise over far more user writes.
    let write_amp = result.stats.flash_write_amplification().clamp(0.05, 1.5);

    let qlc = DeviceProfile::qlc_flash(600 << 30);
    let mut table = Table::new(
        format!(
            "Figure 12: projected QLC lifetime (600 GB DB, measured flash WA = {:.2})",
            write_amp
        ),
        &[
            "workload",
            "request rate (Kops/s)",
            "write %",
            "lifetime (years)",
        ],
    );

    let mut add = |name: &str, rate_kops: f64, write_fraction: f64| {
        let model = EnduranceModel {
            db_size_bytes: 600 << 30,
            request_rate_ops: rate_kops * 1_000.0,
            write_fraction,
            object_size_bytes: 1024,
            flash_write_amplification: write_amp,
            flash_write_fraction: 1.0,
        };
        let lifetime = model.lifetime_years(&qlc);
        table.add_row(vec![
            name.to_string(),
            fmt_f64(rate_kops),
            fmt_f64(write_fraction * 100.0),
            if lifetime.is_infinite() {
                "inf".to_string()
            } else {
                fmt_f64(lifetime)
            },
        ]);
    };

    for write_pct in [1.0, 5.0, 10.0, 25.0, 50.0] {
        add(
            &format!("{write_pct:.0}% writes @10K"),
            10.0,
            write_pct / 100.0,
        );
    }
    // Production workload points (per-server rates) from the RocksDB
    // characterization the paper cites: UP2X is update-heavy, ZippyDB and
    // UDB are read-dominated.
    add("UP2X", 14.0, 0.92);
    add("ZippyDB", 10.0, 0.06);
    add("UDB", 8.0, 0.14);

    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_read_dominated_workloads_meet_lifetime_target() {
        let tables = run(&Scale::quick());
        let t = &tables[0];
        let lifetime = |row: &str| -> f64 {
            let cell = t.cell(row, "lifetime (years)").unwrap();
            if cell == "inf" {
                f64::INFINITY
            } else {
                cell.parse().unwrap()
            }
        };
        assert!(lifetime("ZippyDB") > lifetime("UP2X"));
        assert!(lifetime("1% writes @10K") > lifetime("50% writes @10K"));
        assert!(
            lifetime("ZippyDB") > 3.0,
            "read-heavy production workloads meet 3-5y"
        );
    }
}
