//! Figure 5: clock-value distributions under different YCSB workloads.

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Run PrismDB under YCSB A, B, D and F and report the tracker's clock-value
/// histogram for each.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let mut table = Table::new(
        "Figure 5: clock value distributions by workload (%)",
        &["workload", "clk-0", "clk-1", "clk-2", "clk-3"],
    );
    for letter in ['a', 'b', 'd', 'f'] {
        let workload = Workload::ycsb(letter, scale.record_count);
        let mut db = engines::prismdb(scale.record_count);
        let cost = db.cost_per_gb();
        let _ = runner.run(&mut db, &workload, cost);
        let histogram = db.clock_histogram();
        let total: u64 = histogram.iter().sum();
        let total = total.max(1) as f64;
        table.add_row(vec![
            workload.name.clone(),
            fmt_f64(histogram[0] as f64 / total * 100.0),
            fmt_f64(histogram[1] as f64 / total * 100.0),
            fmt_f64(histogram[2] as f64 / total * 100.0),
            fmt_f64(histogram[3] as f64 / total * 100.0),
        ]);
    }
    table.print();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_distributions_sum_to_one() {
        let tables = run(&Scale::quick());
        let table = &tables[0];
        assert_eq!(table.row_count(), 4);
        for row in &table.rows {
            let sum: f64 = row[1..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((sum - 100.0).abs() < 1.0, "row {row:?} sums to {sum}");
        }
    }
}
