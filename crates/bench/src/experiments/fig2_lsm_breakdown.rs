//! Figure 2: where multi-tier RocksDB spends its time — compaction split
//! between tiers (a) and read distribution across LSM components (b).

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{Runner, Scale};

/// Run the multi-tier LSM on YCSB-A and break down compaction time by tier
/// and reads by source.
pub fn run(scale: &Scale) -> Vec<Table> {
    let runner = Runner::new(super::run_config(scale));
    let workload = Workload::ycsb_a(scale.record_count).with_zipf(0.99);
    let mut het = engines::rocksdb_het(scale.record_count);
    let cost = het.cost_per_gb();
    let result = runner.run(&mut het, &workload, cost);

    let compaction = result.stats.compaction;
    let total = compaction
        .fast_tier_time
        .as_nanos()
        .saturating_add(compaction.slow_tier_time.as_nanos())
        .max(1) as f64;
    let mut fig2a = Table::new(
        "Figure 2a: compaction time split between tiers (rocksdb-het, YCSB-A)",
        &["tier", "compaction time share (%)"],
    );
    fig2a.add_row(vec![
        "nvm".into(),
        fmt_f64(compaction.fast_tier_time.as_nanos() as f64 / total * 100.0),
    ]);
    fig2a.add_row(vec![
        "qlc".into(),
        fmt_f64(compaction.slow_tier_time.as_nanos() as f64 / total * 100.0),
    ]);
    fig2a.print();

    let reads_total = (result.stats.reads_found()).max(1) as f64;
    let mut fig2b = Table::new(
        "Figure 2b: read distribution across LSM components (rocksdb-het, YCSB-A)",
        &["source", "reads (%)"],
    );
    fig2b.add_row(vec![
        "memtable+blockcache".into(),
        fmt_f64(result.stats.reads_from_dram as f64 / reads_total * 100.0),
    ]);
    for level in 0..5 {
        fig2b.add_row(vec![
            format!("L{level}"),
            fmt_f64(result.stats.reads_per_level[level] as f64 / reads_total * 100.0),
        ]);
    }
    fig2b.print();

    vec![fig2a, fig2b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reports_both_tiers_and_flash_reads() {
        let tables = run(&Scale::quick());
        assert_eq!(tables.len(), 2);
        let share: f64 = tables[0]
            .cell("nvm", "compaction time share (%)")
            .unwrap()
            .parse()
            .unwrap();
        assert!((0.0..=100.0).contains(&share));
        assert_eq!(tables[1].row_count(), 6);
    }
}
