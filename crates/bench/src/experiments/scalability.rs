//! Thread-sweep scalability: aggregate throughput as client threads grow.
//!
//! The paper's Figure 3 motivates range-partitioned shared-nothing
//! partitions with exactly this experiment in mind: partitions serve
//! client operations independently, so added client threads should convert
//! into added throughput until they outnumber partitions. The sweep drives
//! the same PrismDB configuration from 1/2/4/8 OS threads (one op stream
//! per thread, closed-loop virtual-time accounting — see
//! [`crate::Runner::run_threaded`]) on a read-heavy YCSB-C style workload,
//! next to the multi-tier RocksDB baseline behind one global lock, whose
//! single shard cannot scale by construction.

use std::sync::atomic::Ordering;

use prism_types::ConcurrentKvStore;
use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, write_bench_json, Table};
use crate::{Runner, Scale};

/// Aggregate YCSB-C throughput for 1/2/4/8 client threads, PrismDB
/// (8 partition locks) vs the coarse-locked multi-tier LSM (1 lock).
pub fn thread_sweep(scale: &Scale) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let workload = Workload::ycsb_c(keys);

    let mut table = Table::new(
        "Scalability: aggregate YCSB-C throughput vs client threads",
        &[
            "threads",
            "prismdb (Kops/s)",
            "prismdb speedup",
            "rocksdb-het+lock (Kops/s)",
            "locked speedup",
        ],
    );
    let mut prism_base = 0.0;
    let mut locked_base = 0.0;
    for &threads in scale.thread_sweep() {
        // Fresh engines per point: every sweep point starts from the same
        // freshly-loaded state, so points differ only in thread count.
        let prism = engines::prismdb_shared(keys);
        let prism_result = runner.run_threaded(&prism, &workload, threads);
        let locked = engines::rocksdb_het_locked(keys);
        let locked_result = runner.run_threaded(&locked, &workload, threads);
        if threads == 1 {
            prism_base = prism_result.throughput_kops;
            locked_base = locked_result.throughput_kops;
        }
        table.add_row(vec![
            threads.to_string(),
            fmt_f64(prism_result.throughput_kops),
            fmt_f64(prism_result.throughput_kops / prism_base.max(f64::MIN_POSITIVE)),
            fmt_f64(locked_result.throughput_kops),
            fmt_f64(locked_result.throughput_kops / locked_base.max(f64::MIN_POSITIVE)),
        ]);
    }
    table.print();
    table
}

/// Read-path lock sharpening (RwLock partitions): on the read-only
/// YCSB-C mix, reads on the same partition overlap with each other, so
/// the makespan is bounded by the busiest *client* rather than the
/// busiest partition. The table compares the measured makespan against
/// what the serialise-everything shard model would have charged
/// ([`crate::ThreadedRunResult::elapsed_serial_reads`]): the gap is the
/// win from taking tracker/clock updates out of the partition critical
/// section.
pub fn read_path_sweep(scale: &Scale) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let workload = Workload::ycsb_c(keys);

    let mut table = Table::new(
        "Read path: YCSB-C throughput, RwLock read overlap vs mutex-serialised reads",
        &[
            "threads",
            "rwlock (Kops/s)",
            "mutex model (Kops/s)",
            "speedup",
        ],
    );
    for &threads in scale.thread_sweep() {
        let db = engines::prismdb_shared(keys);
        let result = runner.run_threaded(&db, &workload, threads);
        let rwlock_kops = result.throughput_kops;
        let serial_kops = if result.elapsed_serial_reads.is_zero() {
            0.0
        } else {
            result.measured_ops as f64 / result.elapsed_serial_reads.as_secs_f64() / 1_000.0
        };
        table.add_row(vec![
            threads.to_string(),
            fmt_f64(rwlock_kops),
            fmt_f64(serial_kops),
            fmt_f64(rwlock_kops / serial_kops.max(f64::MIN_POSITIVE)),
        ]);
    }
    table.print();
    table
}

/// Read-path cache sharding: even with RwLock partitions, every read
/// still serialises briefly inside the partition's DRAM cache. The
/// engine reports that residue per partition
/// ([`prism_types::ConcurrentKvStore::shard_read_serial_times`]) and the
/// harness folds it into the makespan, so the sweep separates three
/// read-path designs:
///
/// * **sharded cache** — the default engine: each partition's cache is
///   split into independently-locked sub-shards, so the residue divides
///   across sub-shards and the makespan stays client-bound past 8
///   threads;
/// * **mutexed cache** — one sub-shard per partition
///   ([`engines::prismdb_mutexed_cache`]): every probe on a partition
///   serialises on the same lock, so the hottest partition's residue
///   caps read throughput as clients grow;
/// * **serialised reads** — the old everything-under-the-mutex model
///   ([`crate::ThreadedRunResult::elapsed_serial_reads`] of the sharded
///   run): whole reads count as serial shard work.
///
/// The workload is the YCSB-C op mix (100 % reads) over YCSB-D's
/// *latest* distribution, on the range-partitioned, NVM-resident
/// configuration of [`engines::read_path_options`]: latest-skewed reads
/// land on the partition holding the newest key range, which is exactly
/// the Zipfian-hot-partition case where a single per-partition cache
/// lock becomes the bottleneck. (Plain YCSB-C *scrambles* its Zipfian
/// ranks across the key space, so hash partitioning spreads the hot
/// keys and no partition's lock ever saturates — a true observation,
/// but not the case this sweep exists to gate.)
pub fn cache_sweep(scale: &Scale) -> Table {
    // A quarter of the sweep's usual key universe: the latest
    // distribution's cold tail (keys only ever read once) can never be
    // cached, and at the full universe those compulsory NVM misses
    // dominate the average read latency, hiding the cache lock this
    // sweep exists to measure. A smaller universe pushes the measured
    // window past the cold-miss regime without touching the op counts.
    // (The runner stamps its own record count onto the workload, so the
    // override has to go through the run config.)
    let keys = (scale.record_count / 4).max(500);
    let mut config = super::run_config(scale);
    config.record_count = keys;
    let runner = Runner::new(config);
    let workload =
        Workload::ycsb_c(keys).with_distribution(prism_workloads::Distribution::Latest(0.99));

    let mut table = Table::new(
        "Read path: YCSB-C throughput, sharded vs mutexed DRAM cache",
        &[
            "threads",
            "sharded cache (Kops/s)",
            "mutexed cache (Kops/s)",
            "serialised reads (Kops/s)",
        ],
    );
    for &threads in scale.thread_sweep() {
        let sharded = engines::prismdb_read_path(keys);
        let sharded_result = runner.run_threaded(&sharded, &workload, threads);
        let mutexed = engines::prismdb_mutexed_cache(keys);
        let mutexed_result = runner.run_threaded(&mutexed, &workload, threads);
        let serial_kops = if sharded_result.elapsed_serial_reads.is_zero() {
            0.0
        } else {
            sharded_result.measured_ops as f64
                / sharded_result.elapsed_serial_reads.as_secs_f64()
                / 1_000.0
        };
        table.add_row(vec![
            threads.to_string(),
            fmt_f64(sharded_result.throughput_kops),
            fmt_f64(mutexed_result.throughput_kops),
            fmt_f64(serial_kops),
        ]);
    }
    table.print();
    table
}

/// Sanity check that concurrent clients really run concurrently: while
/// scanner threads hold cross-partition scans, writer threads keep
/// mutating, and everything terminates (no deadlock).
pub fn scan_liveness(scale: &Scale) -> Table {
    let keys = scale.record_count.min(4_000);
    let db = engines::prismdb_shared(keys);
    for id in 0..keys {
        db.put(
            prism_types::Key::from_id(id),
            prism_types::Value::filled(256, 1),
        )
        .expect("load");
    }
    let scans = std::sync::atomic::AtomicU64::new(0);
    let writes = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for s in 0..2u64 {
            let db = &db;
            let scans = &scans;
            scope.spawn(move || {
                for round in 0..40u64 {
                    let start = (s * 1_733 + round * 97) % keys;
                    db.scan(&prism_types::Key::from_id(start), 100)
                        .expect("scan");
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for t in 0..2u64 {
            let db = &db;
            let writes = &writes;
            scope.spawn(move || {
                for i in 0..400u64 {
                    let id = (t * 2_311 + i * 13) % keys;
                    db.put(
                        prism_types::Key::from_id(id),
                        prism_types::Value::filled(256, 2),
                    )
                    .expect("put");
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let mut table = Table::new(
        "Scalability: scan/write liveness under concurrency",
        &["metric", "count"],
    );
    table.add_row(vec![
        "cross-partition scans".into(),
        scans.load(Ordering::Relaxed).to_string(),
    ]);
    table.add_row(vec![
        "concurrent writes".into(),
        writes.load(Ordering::Relaxed).to_string(),
    ]);
    table.print();
    table
}

/// Run the thread sweep, the read-path sweep, the cache-sharding sweep
/// and the liveness check, and emit `BENCH_scalability.json` plus the
/// sweep's `BENCH_summary.json` entry.
pub fn run(scale: &Scale) -> Vec<Table> {
    let tables = vec![
        thread_sweep(scale),
        read_path_sweep(scale),
        cache_sweep(scale),
        scan_liveness(scale),
    ];
    write_bench_json("scalability", &tables[..3]);
    if let Some(entry) = crate::report::SummaryEntry::best_of(
        "scalability",
        &tables[0],
        "prismdb (Kops/s)",
        scale.record_count,
    ) {
        crate::report::update_bench_summary(&entry);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_threads_for_prismdb_but_not_the_locked_lsm() {
        let table = thread_sweep(&Scale::quick());
        let get = |threads: &str, col: &str| -> f64 {
            table.cell(threads, col).unwrap().parse().unwrap()
        };
        let p1 = get("1", "prismdb (Kops/s)");
        let p2 = get("2", "prismdb (Kops/s)");
        let p4 = get("4", "prismdb (Kops/s)");
        assert!(
            p2 > p1 && p4 > p2,
            "prism throughput must increase 1→2→4 threads: {p1:.1} / {p2:.1} / {p4:.1}"
        );
        let l1 = get("1", "rocksdb-het+lock (Kops/s)");
        let l4 = get("4", "rocksdb-het+lock (Kops/s)");
        assert!(
            l4 < l1 * 1.25,
            "a single global lock cannot scale: {l1:.1} → {l4:.1}"
        );
    }

    #[test]
    fn rwlock_read_path_beats_the_serialised_shard_model() {
        let table = read_path_sweep(&Scale::quick());
        let get = |threads: &str, col: &str| -> f64 {
            table.cell(threads, col).unwrap().parse().unwrap()
        };
        for threads in ["1", "2", "4", "8"] {
            assert!(
                get(threads, "rwlock (Kops/s)") >= get(threads, "mutex model (Kops/s)") - 1e-9,
                "read overlap can never lose to serialised reads (threads {threads})"
            );
        }
        // With 8 zipfian clients on 8 partitions the hottest partition
        // holds well over 1/8 of the reads, so the serialised model is
        // shard-bound while the RwLock model stays client-bound.
        assert!(
            get("8", "rwlock (Kops/s)") > get("8", "mutex model (Kops/s)"),
            "at 8 threads the RwLock read path must win outright"
        );
    }

    /// The read-path gate: the sharded-cache engine keeps converting
    /// threads into read throughput past 4 clients, while collapsing the
    /// cache to one lock per partition (or serialising whole reads) caps
    /// it.
    #[test]
    fn sharded_cache_scales_reads_past_four_threads() {
        let table = cache_sweep(&Scale::quick());
        let get = |threads: &str, col: &str| -> f64 {
            table.cell(threads, col).unwrap().parse().unwrap()
        };
        let s4 = get("4", "sharded cache (Kops/s)");
        let s8 = get("8", "sharded cache (Kops/s)");
        assert!(
            s8 > s4,
            "sharded-cache read throughput must keep growing 4→8 threads: {s4:.1} → {s8:.1}"
        );
        for threads in ["4", "8"] {
            let sharded = get(threads, "sharded cache (Kops/s)");
            let mutexed = get(threads, "mutexed cache (Kops/s)");
            assert!(
                sharded > mutexed,
                "the sharded cache must beat the single-lock cache at {threads} threads: \
                 {sharded:.1} vs {mutexed:.1}"
            );
            let serial = get(threads, "serialised reads (Kops/s)");
            assert!(
                sharded > serial,
                "the sharded cache must beat the serialised-read model at {threads} threads: \
                 {sharded:.1} vs {serial:.1}"
            );
        }
    }

    #[test]
    fn liveness_check_completes_all_scans_and_writes() {
        let table = scan_liveness(&Scale::quick());
        let scans: u64 = table
            .cell("cross-partition scans", "count")
            .unwrap()
            .parse()
            .unwrap();
        let writes: u64 = table
            .cell("concurrent writes", "count")
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(scans, 80);
        assert_eq!(writes, 800);
    }
}
