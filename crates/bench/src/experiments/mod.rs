//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes a `run(&Scale) -> Vec<Table>` entry point that
//! executes the experiment, prints the resulting tables and returns them so
//! integration tests can assert on the shape of the results. The bench
//! targets in `crates/bench/benches/` are thin wrappers around these
//! functions.

pub mod ablation_msc_parameters;
pub mod async_frontend;
pub mod background_compaction;
pub mod fig10_ycsb_sweep;
pub mod fig11_skew_sweep;
pub mod fig12_endurance;
pub mod fig13_fsync;
pub mod fig14_components;
pub mod fig2_lsm_breakdown;
pub mod fig5_clock_distributions;
pub mod fig6_msc_policies;
pub mod fig9_cost_throughput;
pub mod net_stress;
pub mod scalability;
pub mod table1_devices;
pub mod table2_single_vs_multi;
pub mod table5_twitter;
pub mod write_batching;

use crate::{RunConfig, Scale};

/// Translate an experiment [`Scale`] into a [`RunConfig`].
pub(crate) fn run_config(scale: &Scale) -> RunConfig {
    RunConfig {
        record_count: scale.record_count,
        warmup_ops: scale.warmup_ops,
        measure_ops: scale.measure_ops,
        seed: 42,
        windows: 1,
    }
}

/// Run every experiment at the given scale (used by `examples/` and for a
/// one-shot regeneration of all paper artefacts).
pub fn run_all(scale: &Scale) -> Vec<crate::Table> {
    let mut tables = Vec::new();
    tables.extend(table1_devices::run(scale));
    tables.extend(table2_single_vs_multi::run(scale));
    tables.extend(fig2_lsm_breakdown::run(scale));
    tables.extend(fig5_clock_distributions::run(scale));
    tables.extend(fig6_msc_policies::run(scale));
    tables.extend(fig9_cost_throughput::run(scale));
    tables.extend(fig10_ycsb_sweep::run(scale));
    tables.extend(fig11_skew_sweep::run(scale));
    tables.extend(fig12_endurance::run(scale));
    tables.extend(fig13_fsync::run(scale));
    tables.extend(fig14_components::run(scale));
    tables.extend(table5_twitter::run(scale));
    tables.extend(scalability::run(scale));
    tables.extend(background_compaction::run(scale));
    tables.extend(write_batching::run(scale));
    tables.extend(async_frontend::run(scale));
    tables.extend(net_stress::run(scale));
    tables
}
