//! Figure 14: evaluating PrismDB's individual components.
//!
//! * (a) read latency CDF of PrismDB vs the multi-tier LSM on YCSB-B,
//! * (b) effect of promotions on a read-only workload,
//! * (c) throughput as a function of the pinning threshold,
//! * (d) scalability with the number of partitions.

use prism_workloads::Workload;

use crate::engines;
use crate::report::{fmt_f64, Table};
use crate::{RunConfig, Runner, Scale};

/// Figure 14a: read latency CDF on YCSB-B.
pub fn latency_cdf(scale: &Scale) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let workload = Workload::ycsb_b(keys);

    let mut prism = engines::prismdb(keys);
    let prism_cost = prism.cost_per_gb();
    let prism_result = runner.run(&mut prism, &workload, prism_cost);
    let mut rocks = engines::rocksdb_het(keys);
    let rocks_cost = rocks.cost_per_gb();
    let rocks_result = runner.run(&mut rocks, &workload, rocks_cost);

    let mut table = Table::new(
        "Figure 14a: read latency CDF on YCSB-B (us)",
        &["percentile", "rocksdb-het", "prismdb"],
    );
    for p in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999] {
        table.add_row(vec![
            format!("p{:.1}", p * 100.0),
            fmt_f64(rocks_result.latency_percentile_us(p)),
            fmt_f64(prism_result.latency_percentile_us(p)),
        ]);
    }
    table.print();
    table
}

/// Figure 14b: promotions on a read-only workload (YCSB-C): throughput and
/// NVM read ratio over time, with and without promotions.
pub fn promotions(scale: &Scale) -> Table {
    let keys = scale.record_count;
    let config = RunConfig {
        record_count: keys,
        warmup_ops: scale.warmup_ops,
        measure_ops: scale.measure_ops,
        seed: 42,
        windows: 4,
    };
    let runner = Runner::new(config);
    let workload = Workload::ycsb_c(keys);

    let mut with = engines::prismdb(keys);
    let with_cost = with.cost_per_gb();
    let with_result = runner.run(&mut with, &workload, with_cost);
    let mut without = engines::prismdb_without_promotions(keys);
    let without_cost = without.cost_per_gb();
    let without_result = runner.run(&mut without, &workload, without_cost);

    let mut table = Table::new(
        "Figure 14b: promotions under read-only YCSB-C",
        &[
            "window",
            "tput prom (Kops/s)",
            "tput noprom (Kops/s)",
            "fast read ratio prom",
            "fast read ratio noprom",
        ],
    );
    for (i, (w_with, w_without)) in with_result
        .windows
        .iter()
        .zip(without_result.windows.iter())
        .enumerate()
    {
        table.add_row(vec![
            format!("{i}"),
            fmt_f64(w_with.throughput_kops),
            fmt_f64(w_without.throughput_kops),
            fmt_f64(w_with.fast_read_ratio),
            fmt_f64(w_without.fast_read_ratio),
        ]);
    }
    table.print();
    table
}

/// Figure 14c: throughput as a function of the pinning threshold for
/// read-heavy, balanced and write-heavy mixes.
pub fn pinning_threshold(scale: &Scale) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let mixes = [
        ("ycsb 5/95", 0.05),
        ("ycsb 50/50", 0.5),
        ("ycsb 95/5", 0.95),
    ];
    let thresholds = [0.0, 0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(
        "Figure 14c: throughput (Kops/s) vs pinning threshold",
        &["threshold (%)", "ycsb 5/95", "ycsb 50/50", "ycsb 95/5"],
    );
    for threshold in thresholds {
        let mut row = vec![fmt_f64(threshold * 100.0)];
        for (name, read_fraction) in mixes {
            let workload = Workload::read_update_mix(name, keys, read_fraction);
            let mut db = engines::prismdb_with_pinning_threshold(keys, threshold);
            let cost = db.cost_per_gb();
            let result = runner.run(&mut db, &workload, cost);
            row.push(fmt_f64(result.throughput_kops));
        }
        table.add_row(row);
    }
    table.print();
    table
}

/// Figure 14d: throughput as a function of the number of partitions.
pub fn scalability(scale: &Scale) -> Table {
    let runner = Runner::new(super::run_config(scale));
    let keys = scale.record_count;
    let workload = Workload::ycsb_a(keys);
    let mut table = Table::new(
        "Figure 14d: throughput vs number of partitions (YCSB-A)",
        &["partitions", "throughput (Kops/s)"],
    );
    for partitions in [1usize, 2, 4, 8, 12] {
        let mut db = engines::prismdb_with_partitions(keys, partitions);
        let cost = db.cost_per_gb();
        let result = runner.run(&mut db, &workload, cost);
        table.add_row(vec![
            partitions.to_string(),
            fmt_f64(result.throughput_kops),
        ]);
    }
    table.print();
    table
}

/// Run all four component studies.
pub fn run(scale: &Scale) -> Vec<Table> {
    vec![
        latency_cdf(scale),
        promotions(scale),
        pinning_threshold(scale),
        scalability(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14d_more_partitions_do_not_hurt_throughput() {
        let table = scalability(&Scale::quick());
        let get = |p: &str| -> f64 {
            table
                .cell(p, "throughput (Kops/s)")
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(get("8") > get("1"), "8 partitions should outrun 1");
    }

    #[test]
    fn fig14c_produces_full_grid() {
        let table = pinning_threshold(&Scale::quick());
        assert_eq!(table.row_count(), 5);
    }
}
